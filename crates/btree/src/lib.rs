//! Update-in-place B+Tree — the InnoDB stand-in baseline (§2.2, §5).
//!
//! The paper's cost model for update-in-place storage:
//!
//! * point lookup: one seek for an uncached leaf (index nodes fit in RAM);
//! * update: read the old page, modify it, write it back asynchronously —
//!   *two* seeks when the leaf is cold (§2.2), giving hard-disk write
//!   amplifications around 1000 for 1 KB tuples;
//! * short scans on an unfragmented tree: one seek (§3.3);
//! * long scans on a fragmented tree: up to one seek per leaf, because
//!   splits scatter leaves across the device (§5.6).
//!
//! All four behaviours emerge naturally here: the tree runs over the same
//! buffer pool and devices as bLSM, leaves are updated in place and
//! written back on eviction (random writes), and splits allocate new pages
//! at the end of the device, fragmenting the leaf chain exactly the way
//! the §5.6 experiment requires. [`BTree::bulk_load`] provides the
//! pre-sorted fast path the paper had to use to load InnoDB at a
//! reasonable rate (§5.2).
//!
//! This baseline is performance-faithful, not crash-safe: like InnoDB it
//! would need a physiological redo log for recovery, which the paper's
//! experiments explicitly disable ("none of the systems sync their logs
//! at commit", §5.1). `flush` writes back all dirty pages.

use std::sync::Arc;

use bytes::Bytes;

use blsm_storage::codec::{self, Reader};
use blsm_storage::page::{Page, PageType, PAGE_PAYLOAD_LEN};
use blsm_storage::{BufferPool, PageId, Result, StorageError};

/// Leaf payload header: `count(2) | next_leaf(8)`.
const LEAF_HEADER: usize = 10;
/// Internal payload header: `count(2) | child0(8)`.
const INTERNAL_HEADER: usize = 10;
/// Reject cells that cannot share a page with at least one sibling.
const MAX_CELL: usize = (PAGE_PAYLOAD_LEN - LEAF_HEADER) / 2 - 16;

/// Fill fraction targeted by [`BTree::bulk_load`] (leaves are left with
/// headroom so subsequent inserts do not split immediately).
const BULK_FILL: f64 = 0.9;

#[derive(Debug, Clone)]
struct Leaf {
    entries: Vec<(Bytes, Bytes)>,
    next: Option<PageId>,
}

#[derive(Debug, Clone)]
struct Internal {
    /// `children[0]` covers keys < `keys[0]`; `children[i+1]` covers keys
    /// ≥ `keys[i]`.
    keys: Vec<Bytes>,
    children: Vec<PageId>,
}

/// An update-in-place B+Tree over a buffer pool.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: PageId,
    next_page: u64,
    height: u32,
    entry_count: u64,
}

/// Surfaces a violated internal invariant as a recoverable error instead
/// of a panic.
fn invariant_err(what: &str) -> StorageError {
    StorageError::corruption(
        blsm_storage::ComponentId::Tree,
        None,
        format!("internal invariant violated: {what}"),
    )
}

impl std::fmt::Debug for BTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTree")
            .field("root", &self.root)
            .field("height", &self.height)
            .field("entry_count", &self.entry_count)
            .finish_non_exhaustive()
    }
}

impl BTree {
    /// Creates an empty tree. Page 0 of the device is reserved for the
    /// caller (e.g. a meta page); the tree allocates from page 1 upward.
    pub fn create(pool: Arc<BufferPool>) -> Result<BTree> {
        let tree = BTree {
            pool,
            root: PageId(1),
            next_page: 2,
            height: 1,
            entry_count: 0,
        };
        tree.write_leaf(
            PageId(1),
            &Leaf {
                entries: Vec::new(),
                next: None,
            },
        )?;
        Ok(tree)
    }

    /// Number of entries stored.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pages allocated so far.
    pub fn pages_allocated(&self) -> u64 {
        self.next_page
    }

    /// The buffer pool (for statistics and flushing).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Writes back every dirty page.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush()
    }

    fn alloc(&mut self) -> PageId {
        let pid = PageId(self.next_page);
        self.next_page += 1;
        pid
    }

    // -- page codecs ---------------------------------------------------

    fn read_leaf(&self, pid: PageId) -> Result<Leaf> {
        let page = self.pool.read(pid)?;
        if page.page_type()? != PageType::BTreeLeaf {
            return Err(StorageError::InvalidFormat(format!(
                "page {pid} is not a leaf"
            )));
        }
        let payload = page.payload();
        let count = codec::le_u16(&payload[..2]);
        let next = codec::le_u64(&payload[2..10]);
        let mut r = Reader::new(&payload[LEAF_HEADER..]);
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let k = Bytes::copy_from_slice(r.bytes()?);
            let v = Bytes::copy_from_slice(r.bytes()?);
            entries.push((k, v));
        }
        Ok(Leaf {
            entries,
            next: if next == 0 { None } else { Some(PageId(next)) },
        })
    }

    fn write_leaf(&self, pid: PageId, leaf: &Leaf) -> Result<()> {
        let mut page = Page::new(PageType::BTreeLeaf);
        let payload = page.payload_mut();
        payload[..2].copy_from_slice(&(leaf.entries.len() as u16).to_le_bytes());
        payload[2..10].copy_from_slice(&leaf.next.map_or(0, |p| p.0).to_le_bytes());
        let mut body = Vec::with_capacity(PAGE_PAYLOAD_LEN - LEAF_HEADER);
        for (k, v) in &leaf.entries {
            codec::put_bytes(&mut body, k);
            codec::put_bytes(&mut body, v);
        }
        assert!(
            body.len() <= PAGE_PAYLOAD_LEN - LEAF_HEADER,
            "leaf overflow"
        );
        payload[LEAF_HEADER..LEAF_HEADER + body.len()].copy_from_slice(&body);
        self.pool.write(pid, page)
    }

    fn read_internal(&self, pid: PageId) -> Result<Internal> {
        let page = self.pool.read(pid)?;
        if page.page_type()? != PageType::BTreeInternal {
            return Err(StorageError::InvalidFormat(format!(
                "page {pid} is not an internal node"
            )));
        }
        let payload = page.payload();
        let count = codec::le_u16(&payload[..2]);
        let child0 = codec::le_u64(&payload[2..10]);
        let mut r = Reader::new(&payload[INTERNAL_HEADER..]);
        let mut keys = Vec::with_capacity(count as usize);
        let mut children = Vec::with_capacity(count as usize + 1);
        children.push(PageId(child0));
        for _ in 0..count {
            keys.push(Bytes::copy_from_slice(r.bytes()?));
            children.push(PageId(r.u64()?));
        }
        Ok(Internal { keys, children })
    }

    fn write_internal(&self, pid: PageId, node: &Internal) -> Result<()> {
        let mut page = Page::new(PageType::BTreeInternal);
        let payload = page.payload_mut();
        payload[..2].copy_from_slice(&(node.keys.len() as u16).to_le_bytes());
        payload[2..10].copy_from_slice(&node.children[0].0.to_le_bytes());
        let mut body = Vec::new();
        for (k, child) in node.keys.iter().zip(node.children.iter().skip(1)) {
            codec::put_bytes(&mut body, k);
            codec::put_u64(&mut body, child.0);
        }
        assert!(
            body.len() <= PAGE_PAYLOAD_LEN - INTERNAL_HEADER,
            "internal overflow"
        );
        payload[INTERNAL_HEADER..INTERNAL_HEADER + body.len()].copy_from_slice(&body);
        self.pool.write(pid, page)
    }

    fn leaf_bytes(entries: &[(Bytes, Bytes)]) -> usize {
        entries.iter().map(|(k, v)| k.len() + v.len() + 6).sum()
    }

    fn internal_bytes(node: &Internal) -> usize {
        node.keys.iter().map(|k| k.len() + 11).sum()
    }

    // -- lookup ---------------------------------------------------------

    fn descend_to_leaf(&self, key: &[u8]) -> Result<(PageId, Vec<(PageId, usize)>)> {
        let mut path = Vec::with_capacity(self.height as usize);
        let mut pid = self.root;
        for _ in 1..self.height {
            let node = self.read_internal(pid)?;
            let idx = node.keys.partition_point(|k| k.as_ref() <= key);
            path.push((pid, idx));
            pid = node.children[idx];
        }
        Ok((pid, path))
    }

    /// Point lookup: one uncached leaf read once the index is hot (§2.2).
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let (pid, _) = self.descend_to_leaf(key)?;
        let leaf = self.read_leaf(pid)?;
        Ok(leaf
            .entries
            .iter()
            .find(|(k, _)| k.as_ref() == key)
            .map(|(_, v)| v.clone()))
    }

    // -- insert ----------------------------------------------------------

    /// Inserts or overwrites. Reads and rewrites the leaf (the paper's
    /// two-seek update when cold), splitting upward as needed.
    pub fn insert(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        let value = value.into();
        assert!(
            key.len() + value.len() <= MAX_CELL,
            "cell of {} bytes exceeds page capacity",
            key.len() + value.len()
        );
        let (pid, path) = self.descend_to_leaf(&key)?;
        let mut leaf = self.read_leaf(pid)?;
        match leaf
            .entries
            .binary_search_by(|(k, _)| k.as_ref().cmp(key.as_ref()))
        {
            Ok(i) => leaf.entries[i] = (key, value),
            Err(i) => {
                leaf.entries.insert(i, (key, value));
                self.entry_count += 1;
            }
        }
        if Self::leaf_bytes(&leaf.entries) <= PAGE_PAYLOAD_LEN - LEAF_HEADER {
            return self.write_leaf(pid, &leaf);
        }
        // Split: right half moves to a fresh page at the end of the file —
        // this is what fragments the leaf chain over time (§5.6).
        let mid = leaf.entries.len() / 2;
        let right_entries = leaf.entries.split_off(mid);
        let sep = right_entries[0].0.clone();
        let right_pid = self.alloc();
        let right = Leaf {
            entries: right_entries,
            next: leaf.next,
        };
        leaf.next = Some(right_pid);
        self.write_leaf(right_pid, &right)?;
        self.write_leaf(pid, &leaf)?;
        self.insert_into_parent(path, sep, right_pid)
    }

    fn insert_into_parent(
        &mut self,
        mut path: Vec<(PageId, usize)>,
        mut sep: Bytes,
        mut new_child: PageId,
    ) -> Result<()> {
        loop {
            let Some((pid, idx)) = path.pop() else {
                // Split reached the root: grow the tree.
                let old_root = self.root;
                let new_root = self.alloc();
                let node = Internal {
                    keys: vec![sep],
                    children: vec![old_root, new_child],
                };
                self.write_internal(new_root, &node)?;
                self.root = new_root;
                self.height += 1;
                return Ok(());
            };
            let mut node = self.read_internal(pid)?;
            node.keys.insert(idx, sep);
            node.children.insert(idx + 1, new_child);
            if Self::internal_bytes(&node) <= PAGE_PAYLOAD_LEN - INTERNAL_HEADER {
                return self.write_internal(pid, &node);
            }
            let mid = node.keys.len() / 2;
            let up_key = node.keys[mid].clone();
            let right_keys = node.keys.split_off(mid + 1);
            node.keys.pop(); // `up_key` moves up, not right
            let right_children = node.children.split_off(mid + 1);
            let right_pid = self.alloc();
            self.write_internal(
                right_pid,
                &Internal {
                    keys: right_keys,
                    children: right_children,
                },
            )?;
            self.write_internal(pid, &node)?;
            sep = up_key;
            new_child = right_pid;
        }
    }

    /// The B-Tree's "insert if not exists": it must *read* before writing
    /// — the seek the paper's §3.1.2 is about avoiding.
    pub fn insert_if_not_exists(
        &mut self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Result<bool> {
        let key = key.into();
        if self.get(&key)?.is_some() {
            return Ok(false);
        }
        self.insert(key, value)?;
        Ok(true)
    }

    /// Read-modify-write: the descend + leaf rewrite cost two cold seeks
    /// (§2.2; Table 1 row 2).
    pub fn read_modify_write(
        &mut self,
        key: impl Into<Bytes>,
        f: impl FnOnce(Option<&[u8]>) -> Option<Vec<u8>>,
    ) -> Result<()> {
        let key = key.into();
        let old = self.get(&key)?;
        match f(old.as_deref()) {
            Some(new) => self.insert(key, new),
            None => {
                self.delete(&key)?;
                Ok(())
            }
        }
    }

    /// Deletes a key; returns whether it was present. (No rebalancing —
    /// underfull pages persist, as in most production trees.)
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let (pid, _) = self.descend_to_leaf(key)?;
        let mut leaf = self.read_leaf(pid)?;
        match leaf.entries.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
            Ok(i) => {
                leaf.entries.remove(i);
                self.entry_count -= 1;
                self.write_leaf(pid, &leaf)?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    // -- scans -----------------------------------------------------------

    /// Ordered scan from `from`, up to `limit` rows, following the leaf
    /// chain. On a fragmented tree every hop can be a seek (§5.6).
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<(Bytes, Bytes)>> {
        let (mut pid, _) = self.descend_to_leaf(from)?;
        let mut out = Vec::with_capacity(limit);
        loop {
            let leaf = self.read_leaf(pid)?;
            for (k, v) in &leaf.entries {
                if k.as_ref() < from {
                    continue;
                }
                out.push((k.clone(), v.clone()));
                if out.len() >= limit {
                    return Ok(out);
                }
            }
            match leaf.next {
                Some(next) => pid = next,
                None => return Ok(out),
            }
        }
    }

    // -- bulk load --------------------------------------------------------

    /// Builds a tree from a *sorted* stream, packing leaves sequentially —
    /// the pre-sorted load path InnoDB needed in §5.2. Keys must be
    /// strictly increasing.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        sorted: impl Iterator<Item = (Bytes, Bytes)>,
    ) -> Result<BTree> {
        let mut tree = BTree {
            pool,
            root: PageId(1),
            next_page: 1,
            height: 1,
            entry_count: 0,
        };
        let leaf_cap = ((PAGE_PAYLOAD_LEN - LEAF_HEADER) as f64 * BULK_FILL) as usize;

        // Pack leaves.
        let mut leaves: Vec<(Bytes, PageId)> = Vec::new(); // (first_key, page)
        let mut current: Vec<(Bytes, Bytes)> = Vec::new();
        let mut current_bytes = 0usize;
        let mut pending: Option<(PageId, Leaf)> = None;
        let mut last_key: Option<Bytes> = None;
        for (k, v) in sorted {
            if let Some(last) = &last_key {
                assert!(k > last, "bulk_load requires strictly increasing keys");
            }
            last_key = Some(k.clone());
            let cell = k.len() + v.len() + 6;
            if current_bytes + cell > leaf_cap && !current.is_empty() {
                let pid = tree.alloc();
                let leaf = Leaf {
                    entries: std::mem::take(&mut current),
                    next: Some(PageId(0)), // patched below
                };
                if let Some((prev_pid, mut prev)) = pending.take() {
                    prev.next = Some(pid);
                    tree.write_leaf(prev_pid, &prev)?;
                    leaves.push((prev.entries[0].0.clone(), prev_pid));
                }
                pending = Some((pid, leaf));
                current_bytes = 0;
            }
            current_bytes += cell;
            tree.entry_count += 1;
            current.push((k, v));
        }
        // Final leaves.
        let pid = tree.alloc();
        let leaf = Leaf {
            entries: current,
            next: None,
        };
        if let Some((prev_pid, mut prev)) = pending.take() {
            prev.next = Some(pid);
            tree.write_leaf(prev_pid, &prev)?;
            leaves.push((prev.entries[0].0.clone(), prev_pid));
        }
        tree.write_leaf(pid, &leaf)?;
        let first = leaf
            .entries
            .first()
            .map(|(k, _)| k.clone())
            .unwrap_or_default();
        leaves.push((first, pid));

        // Build internal levels bottom-up.
        let internal_cap = ((PAGE_PAYLOAD_LEN - INTERNAL_HEADER) as f64 * BULK_FILL) as usize;
        let mut level = leaves;
        while level.len() > 1 {
            let mut next_level: Vec<(Bytes, PageId)> = Vec::new();
            let mut node = Internal {
                keys: Vec::new(),
                children: Vec::new(),
            };
            let mut node_bytes = 0usize;
            let mut node_first: Option<Bytes> = None;
            for (first_key, child) in level {
                if node.children.is_empty() {
                    node.children.push(child);
                    node_first = Some(first_key);
                    continue;
                }
                let cell = first_key.len() + 11;
                if node_bytes + cell > internal_cap {
                    let pid = tree.alloc();
                    tree.write_internal(pid, &node)?;
                    let first = node_first
                        .take()
                        .ok_or_else(|| invariant_err("internal node built without children"))?;
                    next_level.push((first, pid));
                    node = Internal {
                        keys: Vec::new(),
                        children: vec![child],
                    };
                    node_first = Some(first_key);
                    node_bytes = 0;
                    continue;
                }
                node_bytes += cell;
                node.keys.push(first_key);
                node.children.push(child);
            }
            let pid = tree.alloc();
            tree.write_internal(pid, &node)?;
            let first =
                node_first.ok_or_else(|| invariant_err("internal node built without children"))?;
            next_level.push((first, pid));
            tree.height += 1;
            level = next_level;
        }
        tree.root = level[0].1;
        if tree.height == 1 {
            // Single leaf: root is that leaf.
            tree.root = level[0].1;
        }
        tree.flush()?;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use blsm_storage::device::Device;
    use blsm_storage::MemDevice;

    fn pool(pages: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDevice::new()), pages))
    }

    fn key(i: u32) -> Bytes {
        Bytes::from(format!("user{i:08}"))
    }

    #[test]
    fn insert_get_small() {
        let mut t = BTree::create(pool(256)).unwrap();
        for i in [5u32, 1, 9, 3, 7] {
            t.insert(key(i), Bytes::from(format!("v{i}"))).unwrap();
        }
        for i in [1u32, 3, 5, 7, 9] {
            assert_eq!(
                t.get(&key(i)).unwrap().unwrap(),
                Bytes::from(format!("v{i}"))
            );
        }
        assert!(t.get(&key(2)).unwrap().is_none());
        assert_eq!(t.entry_count(), 5);
    }

    #[test]
    fn random_inserts_with_splits() {
        let mut t = BTree::create(pool(4096)).unwrap();
        // Insert in pseudo-random order with 100-byte values: thousands of
        // splits, multiple levels.
        let n = 20_000u32;
        let mut order: Vec<u32> = (0..n).collect();
        // Deterministic shuffle.
        let mut state = 12345u64;
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &i in &order {
            t.insert(key(i), Bytes::from(vec![i as u8; 100])).unwrap();
        }
        assert!(t.height() >= 3, "height {}", t.height());
        assert_eq!(t.entry_count(), u64::from(n));
        for i in (0..n).step_by(371) {
            assert_eq!(
                t.get(&key(i)).unwrap().unwrap(),
                Bytes::from(vec![i as u8; 100])
            );
        }
    }

    #[test]
    fn overwrite_in_place() {
        let mut t = BTree::create(pool(256)).unwrap();
        t.insert(key(1), Bytes::from_static(b"a")).unwrap();
        t.insert(key(1), Bytes::from_static(b"b")).unwrap();
        assert_eq!(t.get(&key(1)).unwrap().unwrap().as_ref(), b"b");
        assert_eq!(t.entry_count(), 1);
    }

    #[test]
    fn delete_removes() {
        let mut t = BTree::create(pool(256)).unwrap();
        for i in 0..100u32 {
            t.insert(key(i), Bytes::from_static(b"v")).unwrap();
        }
        assert!(t.delete(&key(50)).unwrap());
        assert!(!t.delete(&key(50)).unwrap());
        assert!(t.get(&key(50)).unwrap().is_none());
        assert_eq!(t.entry_count(), 99);
    }

    #[test]
    fn scan_follows_leaf_chain() {
        let mut t = BTree::create(pool(4096)).unwrap();
        for i in 0..5000u32 {
            t.insert(key(i), Bytes::from(vec![0u8; 64])).unwrap();
        }
        let rows = t.scan(&key(1234), 100).unwrap();
        assert_eq!(rows.len(), 100);
        for (j, (k, _)) in rows.iter().enumerate() {
            assert_eq!(k, &key(1234 + j as u32));
        }
        // Scan off the end.
        let rows = t.scan(&key(4990), 100).unwrap();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn bulk_load_builds_equivalent_tree() {
        let p = pool(4096);
        let t = BTree::bulk_load(
            p,
            (0..10_000u32).map(|i| (key(i), Bytes::from(vec![i as u8; 80]))),
        )
        .unwrap();
        assert_eq!(t.entry_count(), 10_000);
        assert!(t.height() >= 2);
        for i in (0..10_000u32).step_by(487) {
            assert_eq!(
                t.get(&key(i)).unwrap().unwrap(),
                Bytes::from(vec![i as u8; 80])
            );
        }
        let rows = t.scan(&key(42), 50).unwrap();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[0].0, key(42));
    }

    #[test]
    fn bulk_load_is_sequential_io() {
        let dev = Arc::new(MemDevice::new());
        let p = Arc::new(BufferPool::new(dev.clone(), 8192));
        let _t = BTree::bulk_load(
            p,
            (0..20_000u32).map(|i| (key(i), Bytes::from(vec![0u8; 80]))),
        )
        .unwrap();
        let s = dev.stats();
        // Flush writes pages in pid order: overwhelmingly sequential.
        assert!(
            s.sequential_writes > s.random_writes * 10,
            "seq={} rand={}",
            s.sequential_writes,
            s.random_writes
        );
    }

    #[test]
    fn cold_get_is_one_leaf_read_when_index_cached() {
        let dev = Arc::new(MemDevice::new());
        let p = Arc::new(BufferPool::new(dev.clone(), 8192));
        let t = BTree::bulk_load(
            p.clone(),
            (0..20_000u32).map(|i| (key(i), Bytes::from(vec![0u8; 80]))),
        )
        .unwrap();
        // Warm the internal nodes with one probe, then drop only... the
        // pool cannot selectively keep internals, so instead: measure that
        // a repeated-key get after warming costs zero reads, and a cold
        // get costs height() reads at most, with exactly 1 leaf.
        p.drop_clean();
        let before = dev.stats();
        t.get(&key(10_000)).unwrap().unwrap();
        let d = dev.stats().delta_since(&before);
        assert_eq!(d.bytes_read as usize / 4096, t.height() as usize);
        // Hot probe: zero device reads.
        let before = dev.stats();
        t.get(&key(10_000)).unwrap().unwrap();
        let d = dev.stats().delta_since(&before);
        assert_eq!(d.bytes_read, 0);
    }

    #[test]
    fn fragmentation_scatters_leaf_chain() {
        // Random inserts: consecutive leaves end up far apart on disk.
        let mut t = BTree::create(pool(16_384)).unwrap();
        let mut state = 9u64;
        for _ in 0..30_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (state >> 33) as u32 % 1_000_000;
            t.insert(key(i), Bytes::from(vec![0u8; 100])).unwrap();
        }
        // Walk the first 100 leaves and measure adjacency.
        let (mut pid, _) = t.descend_to_leaf(b"").unwrap();
        let mut adjacent = 0u32;
        let mut hops = 0u32;
        for _ in 0..100 {
            let leaf = t.read_leaf(pid).unwrap();
            let Some(next) = leaf.next else { break };
            if next.0 == pid.0 + 1 {
                adjacent += 1;
            }
            hops += 1;
            pid = next;
        }
        assert!(hops > 50);
        assert!(
            adjacent < hops / 2,
            "leaf chain unexpectedly contiguous: {adjacent}/{hops}"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_cell_rejected() {
        let mut t = BTree::create(pool(64)).unwrap();
        t.insert(Bytes::from_static(b"k"), Bytes::from(vec![0u8; 4000]))
            .unwrap();
    }

    #[test]
    fn rmw_and_insert_if_not_exists() {
        let mut t = BTree::create(pool(256)).unwrap();
        assert!(t
            .insert_if_not_exists(key(1), Bytes::from_static(b"a"))
            .unwrap());
        assert!(!t
            .insert_if_not_exists(key(1), Bytes::from_static(b"b"))
            .unwrap());
        t.read_modify_write(key(1), |old| {
            let mut v = old.unwrap().to_vec();
            v.push(b'!');
            Some(v)
        })
        .unwrap();
        assert_eq!(t.get(&key(1)).unwrap().unwrap().as_ref(), b"a!");
    }
}
