//! Background merge-thread driver.
//!
//! The paper's implementation runs merges on dedicated threads (§4.4.1);
//! our engine exposes merges as an incremental state machine so the
//! simulated-device experiments stay deterministic. [`ThreadedBLsm`] puts
//! the thread back for real deployments: a merge thread repeatedly asks
//! the engine for maintenance work, backing off when there is none, while
//! application threads write to the tree *directly* — `put`, `delete` and
//! `apply_delta` are `&self` on [`BLsmTree`] and scale across threads, so
//! this wrapper adds no mutex around them.
//!
//! §4.4.1 notes the concurrency pitfalls of merge threads ("it is
//! prohibitively expensive to acquire a coarse-grained mutex for each
//! merged tuple or page ... each merge thread must take action based upon
//! stale statistics"). The split here matches: writers contend only on
//! their `C0` key-range shard (plus the log mutex when durability is on),
//! the merge thread serializes on the tree's internal merge state for one
//! bounded quantum at a time, and reads never take any of those locks —
//! [`ThreadedBLsm::get`], [`scan`](ThreadedBLsm::scan),
//! [`exists`](ThreadedBLsm::exists) and [`stats`](ThreadedBLsm::stats) go
//! through the tree's lock-free [`ReadView`], which pins the `C0` shards
//! and the catalog snapshot behind a publish epoch (see `catalog.rs`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use blsm_storage::{Result, StorageError};

use crate::read::{ReadView, ScanItem};
use crate::stats::TreeStatsSnapshot;
use crate::tree::BLsmTree;

struct Shared {
    /// The tree itself — writes and reads are `&self`, so no wrapper
    /// mutex: application threads call straight into it while the merge
    /// thread drives `maintenance`.
    tree: BLsmTree,
    /// Signalled by writers when merge work may be pending.
    work_cv: Condvar,
    work_pending: Mutex<bool>,
    // ordering: SeqCst — shutdown flag checked against the condvar
    // handshake; SeqCst keeps the store totally ordered with the
    // `work_pending` notifies so the merge loop cannot miss it
    // (model-checked in crates/modelcheck).
    shutdown: AtomicBool,
}

/// A [`BLsmTree`] with a background merge thread, parallel `&self`
/// writes, and a lock-free read path.
pub struct ThreadedBLsm {
    /// `Some` until `shutdown` hands the tree back.
    shared: Option<Arc<Shared>>,
    /// Lock-free reads; valid for the tree's whole life.
    view: ReadView,
    merge_thread: Option<std::thread::JoinHandle<()>>,
    /// Merge input bytes processed per background quantum.
    quantum: u64,
}

impl std::fmt::Debug for ThreadedBLsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedBLsm")
            .field("quantum", &self.quantum)
            .field("running", &self.shared.is_some())
            .finish_non_exhaustive()
    }
}

impl ThreadedBLsm {
    /// Wraps a tree and starts the merge thread. `quantum` bounds merge
    /// bytes processed per background quantum (and therefore the time any
    /// application *write* can wait behind the merge thread at the hard
    /// `C0` cap; reads never wait).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] if the merge thread cannot be
    /// spawned (e.g. the process hit its thread limit); the tree itself
    /// is dropped in that case, so reopen it from its devices.
    pub fn start(tree: BLsmTree, quantum: u64) -> Result<ThreadedBLsm> {
        let view = tree.read_view();
        let shared = Arc::new(Shared {
            tree,
            work_cv: Condvar::new(),
            work_pending: Mutex::new(true),
            shutdown: AtomicBool::new(false),
        });
        let thread_shared = shared.clone();
        let merge_thread = std::thread::Builder::new()
            .name("blsm-merge".into())
            .spawn(move || merge_loop(&thread_shared, quantum.max(64 << 10)))
            .map_err(StorageError::Io)?;
        Ok(ThreadedBLsm {
            shared: Some(shared),
            view,
            merge_thread: Some(merge_thread),
            quantum,
        })
    }

    fn shared(&self) -> &Arc<Shared> {
        match &self.shared {
            Some(s) => s,
            // Unreachable: `shutdown` consumes `self`, so no method can run
            // on a shut-down handle.
            None => panic!("tree used after shutdown"),
        }
    }

    /// Runs `f` against the tree, then nudges the merge thread (writes
    /// may have created work). The tree's own methods are `&self` and
    /// thread-safe; this adds no extra exclusion.
    pub fn with_tree<T>(&self, f: impl FnOnce(&BLsmTree) -> T) -> T {
        let out = f(&self.shared().tree);
        self.kick();
        out
    }

    /// Wakes the merge thread — unless the tree is idle.
    ///
    /// Below the low watermark no scheduler starts a merge (naive and
    /// spring-and-gear wait for the hard cap resp. high water; gear's
    /// fill unit is at least `low_water * mem_budget`), so waking the
    /// merge thread would buy a futex syscall and a context switch per
    /// write just to find nothing to do. That cost is invisible with one
    /// busy tree (the merge thread is rarely parked) but dominates with
    /// N mostly-idle shards on few cores. Skipped wakes are bounded by
    /// the merge loop's wait timeout (`BLsmConfig::merge_wait_timeout`,
    /// default 10 ms), which runs `maintenance`
    /// regardless; and a merge already in flight keeps the loop in its
    /// busy phase (it only parks once no merge is active), so nothing
    /// can stall behind a skipped kick.
    fn kick(&self) {
        let shared = self.shared();
        if shared.tree.backpressure() == crate::sched::BackpressureLevel::Idle {
            return;
        }
        let mut pending = shared.work_pending.lock();
        *pending = true;
        shared.work_cv.notify_one();
    }

    /// Convenience: blind write. Runs on the caller's thread and scales
    /// with concurrent writers (see [`BLsmTree::put`]).
    pub fn put(&self, key: impl Into<bytes::Bytes>, value: impl Into<bytes::Bytes>) -> Result<()> {
        let out = self.shared().tree.put(key, value);
        self.kick();
        out
    }

    /// Point lookup — lock-free: proceeds even while the merge thread
    /// runs a work quantum.
    pub fn get(&self, key: &[u8]) -> Result<Option<bytes::Bytes>> {
        self.view.get(key)
    }

    /// Existence check — lock-free.
    pub fn exists(&self, key: &[u8]) -> Result<bool> {
        self.view.exists(key)
    }

    /// Ordered scan — lock-free.
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        self.view.scan(from, limit)
    }

    /// A cloneable lock-free read handle, independent of this wrapper's
    /// lifetime bookkeeping (hand these to reader threads).
    pub fn read_view(&self) -> ReadView {
        self.view.clone()
    }

    /// Lock-free snapshot of the engine counters — never waits for the
    /// merge thread.
    pub fn stats(&self) -> TreeStatsSnapshot {
        self.view.stats()
    }

    /// Convenience: delete.
    pub fn delete(&self, key: impl Into<bytes::Bytes>) -> Result<()> {
        let out = self.shared().tree.delete(key);
        self.kick();
        out
    }

    /// Convenience: the paper's zero-seek `insert if not exists`
    /// (§3.1.2). Returns true if the insert happened.
    pub fn insert_if_not_exists(
        &self,
        key: impl Into<bytes::Bytes>,
        value: impl Into<bytes::Bytes>,
    ) -> Result<bool> {
        let out = self.shared().tree.insert_if_not_exists(key, value);
        self.kick();
        out
    }

    /// Convenience: merge-operator delta write.
    pub fn apply_delta(
        &self,
        key: impl Into<bytes::Bytes>,
        delta: impl Into<bytes::Bytes>,
    ) -> Result<()> {
        let out = self.shared().tree.apply_delta(key, delta);
        self.kick();
        out
    }

    /// Ordered scan of `[from, to)` — lock-free.
    pub fn scan_range(&self, from: &[u8], to: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        self.view.scan_range(from, to, limit)
    }

    /// Nowait blind write: applied but not yet durable; the returned
    /// commit target retires via [`commit_group`](Self::commit_group)
    /// (see [`BLsmTree::put_nowait`]).
    pub fn put_nowait(
        &self,
        key: impl Into<bytes::Bytes>,
        value: impl Into<bytes::Bytes>,
    ) -> Result<u64> {
        let out = self.shared().tree.put_nowait(key, value);
        self.kick();
        out
    }

    /// Nowait delete (see [`BLsmTree::delete_nowait`]).
    pub fn delete_nowait(&self, key: impl Into<bytes::Bytes>) -> Result<u64> {
        let out = self.shared().tree.delete_nowait(key);
        self.kick();
        out
    }

    /// Nowait delta write (see [`BLsmTree::apply_delta_nowait`]).
    pub fn apply_delta_nowait(
        &self,
        key: impl Into<bytes::Bytes>,
        delta: impl Into<bytes::Bytes>,
    ) -> Result<u64> {
        let out = self.shared().tree.apply_delta_nowait(key, delta);
        self.kick();
        out
    }

    /// Nowait `insert if not exists` (see
    /// [`BLsmTree::insert_if_not_exists_nowait`]).
    pub fn insert_if_not_exists_nowait(
        &self,
        key: impl Into<bytes::Bytes>,
        value: impl Into<bytes::Bytes>,
    ) -> Result<(bool, u64)> {
        let out = self.shared().tree.insert_if_not_exists_nowait(key, value);
        self.kick();
        out
    }

    /// Nowait replicated apply (see
    /// [`BLsmTree::apply_replicated_nowait`]): lets a follower retire a
    /// whole shipped batch on one commit group.
    pub fn apply_replicated_nowait(&self, payload: &[u8]) -> Result<Option<(u64, u64)>> {
        let out = self.shared().tree.apply_replicated_nowait(payload);
        self.kick();
        out
    }

    /// Forces a commit group covering everything appended so far and
    /// returns the new durable horizon (see [`BLsmTree::commit_group`]).
    pub fn commit_group(&self) -> Result<u64> {
        self.shared().tree.commit_group()
    }

    /// LSN below which the WAL is known device-stable — an atomic read
    /// (see [`BLsmTree::durable_lsn`]).
    pub fn durable_lsn(&self) -> u64 {
        self.shared().tree.durable_lsn()
    }

    /// Applies one replicated WAL record through the normal write path,
    /// keeping the leader's seqno (see [`BLsmTree::apply_replicated`]).
    /// Returns the applied seqno, or `None` for an already-applied
    /// duplicate.
    pub fn apply_replicated(&self, payload: &[u8]) -> Result<Option<u64>> {
        let out = self.shared().tree.apply_replicated(payload);
        self.kick();
        out
    }

    /// The next seqno this tree would allocate — an atomic read, no
    /// locks. A reservation counter: it may run ahead of failed or
    /// in-flight applies, so replication reports
    /// [`applied_seqno`](Self::applied_seqno) instead.
    pub fn next_seqno(&self) -> u64 {
        self.shared().tree.next_seqno()
    }

    /// The highest seqno fully applied on this node — the read horizon
    /// STATS reports and failover elections compare (see
    /// [`BLsmTree::applied_seqno`]).
    pub fn applied_seqno(&self) -> u64 {
        self.shared().tree.applied_seqno()
    }

    /// A cloneable replication-source handle (seqno counter + durable
    /// WAL window) that outlives borrows of this wrapper — what a
    /// leader's shipper threads hold (see [`BLsmTree::repl_source`]).
    pub fn repl_source(&self) -> crate::tree::ReplSource {
        self.shared().tree.repl_source()
    }

    /// The live spring-and-gear backpressure level — the admission
    /// signal the serving layer throttles writes by. Lock-free (atomic
    /// counter reads, no locks at all).
    pub fn backpressure(&self) -> crate::sched::BackpressureLevel {
        self.view.stats().backpressure
    }

    /// Bound on merge bytes per background quantum.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Stops the merge thread, completes all pending merges, and returns
    /// the tree.
    pub fn shutdown(mut self) -> Result<BLsmTree> {
        self.stop_thread();
        let Some(shared) = self.shared.take() else {
            // Unreachable: `shutdown` takes `self` by value.
            return Err(blsm_storage::StorageError::corruption(
                blsm_storage::ComponentId::Tree,
                None,
                "shutdown on an already shut-down tree",
            ));
        };
        let shared =
            Arc::try_unwrap(shared).unwrap_or_else(|_| panic!("merge thread still holds the tree"));
        let tree = shared.tree;
        tree.checkpoint()?;
        Ok(tree)
    }

    fn stop_thread(&mut self) {
        let Some(shared) = self.shared.as_ref() else {
            return;
        };
        shared.shutdown.store(true, Ordering::SeqCst);
        {
            let mut pending = shared.work_pending.lock();
            *pending = true;
            shared.work_cv.notify_one();
        }
        if let Some(h) = self.merge_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedBLsm {
    fn drop(&mut self) {
        if self.merge_thread.is_some() {
            self.stop_thread();
        }
        // Drop-safe shutdown hook: a handle dropped without an explicit
        // `shutdown` (e.g. a server unwinding on error) still checkpoints
        // so the WAL closes cleanly. Best-effort — a checkpoint error
        // cannot propagate out of `drop`, and recovery replays the WAL
        // anyway; `try_unwrap` fails only if another thread still holds
        // the `Arc`, in which case the tree stays live for that thread.
        if let Some(shared) = self.shared.take() {
            if let Ok(shared) = Arc::try_unwrap(shared) {
                let _ = shared.tree.checkpoint();
            }
        }
    }
}

fn merge_loop(shared: &Arc<Shared>, quantum: u64) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Bounded work per quantum; writers and readers proceed
        // concurrently (maintenance serializes only on the tree's
        // internal merge state).
        let had_work = {
            let tree = &shared.tree;
            let active_before = tree.merges_active();
            let _ = tree.maintenance(quantum);
            // Every background quantum is an invariant boundary; a
            // violation here means the merge thread corrupted the tree,
            // which no caller can recover from.
            #[cfg(feature = "strict-invariants")]
            if let Err(e) = tree.check_invariants() {
                panic!("merge-thread quantum violated a tree invariant: {e}");
            }
            let active_after = tree.merges_active();
            active_before.0 || active_before.1 || active_after.0 || active_after.1
        };
        if had_work {
            // Yield briefly so application threads stay ahead of us on
            // the merge state at the hard cap.
            std::thread::yield_now();
            continue;
        }
        // No work: sleep until a writer kicks us (or the configured
        // `merge_wait_timeout`, so paced schedulers still make progress
        // on idle trees — its own knob, independent of the group-commit
        // deadline a sync write may *also* sit out; see `config.rs`).
        // The predicate is re-checked in a loop: a bare `if` would let a
        // kick that lands between a spurious/timeout wakeup and the
        // `*pending = false` store below be silently consumed, stalling
        // that writer's work until the next timeout (the classic
        // lost-wakeup shape).
        let wait_timeout = shared.tree.config().merge_wait_timeout;
        let mut pending = shared.work_pending.lock();
        while !*pending && !shared.shutdown.load(Ordering::SeqCst) {
            let timed_out = shared
                .work_cv
                .wait_for(&mut pending, wait_timeout)
                .timed_out();
            if timed_out {
                break;
            }
        }
        *pending = false;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::config::BLsmConfig;
    use blsm_memtable::AppendOperator;
    use blsm_storage::{MemDevice, SharedDevice};
    use bytes::Bytes;
    use std::time::Duration;

    fn new_threaded() -> ThreadedBLsm {
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        let tree = BLsmTree::open(
            data,
            wal,
            1024,
            BLsmConfig {
                mem_budget: 64 << 10,
                ..Default::default()
            },
            Arc::new(AppendOperator),
        )
        .unwrap();
        ThreadedBLsm::start(tree, 1 << 20).unwrap()
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let db = Arc::new(new_threaded());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u32 {
                    let id = t * 10_000 + i;
                    db.put(
                        format!("user{id:08}").into_bytes(),
                        Bytes::from(vec![t as u8; 64]),
                    )
                    .unwrap();
                    if i % 64 == 0 {
                        // Read-your-writes.
                        let v = db.get(format!("user{id:08}").as_bytes()).unwrap();
                        assert_eq!(v.unwrap(), Bytes::from(vec![t as u8; 64]));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The background thread must have driven merges.
        let stats = db.with_tree(super::super::tree::BLsmTree::stats);
        assert!(stats.merges01 > 0, "merge thread never merged");
        for t in 0..4u32 {
            for i in (0..2_000u32).step_by(191) {
                let id = t * 10_000 + i;
                let v = db.get(format!("user{id:08}").as_bytes()).unwrap();
                assert_eq!(v.unwrap(), Bytes::from(vec![t as u8; 64]), "id {id}");
            }
        }
    }

    #[test]
    fn shutdown_returns_settled_tree() {
        let db = new_threaded();
        for i in 0..3_000u32 {
            db.put(format!("k{i:06}").into_bytes(), Bytes::from_static(b"v"))
                .unwrap();
        }
        let tree = db.shutdown().unwrap();
        assert!(tree.c0_bytes() == 0, "shutdown must checkpoint");
        assert_eq!(
            tree.get(b"k002999").unwrap().unwrap(),
            Bytes::from_static(b"v")
        );
    }

    #[test]
    fn drop_checkpoints_like_shutdown() {
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        let config = BLsmConfig {
            mem_budget: 64 << 10,
            ..Default::default()
        };
        let tree = BLsmTree::open(
            data.clone(),
            wal.clone(),
            1024,
            config.clone(),
            Arc::new(AppendOperator),
        )
        .unwrap();
        let db = ThreadedBLsm::start(tree, 1 << 20).unwrap();
        for i in 0..500u32 {
            db.put(format!("k{i:06}").into_bytes(), Bytes::from_static(b"v"))
                .unwrap();
        }
        drop(db);
        // The Drop hook must have checkpointed: reopening finds every
        // write in the components with an empty C0 (nothing left to
        // replay from the WAL).
        let tree = BLsmTree::open(data, wal, 1024, config, Arc::new(AppendOperator)).unwrap();
        assert_eq!(tree.c0_bytes(), 0, "drop must checkpoint");
        assert_eq!(
            tree.get(b"k000499").unwrap().unwrap(),
            Bytes::from_static(b"v")
        );
    }

    #[test]
    fn kick_hammer_against_shutdown() {
        // Regression test for the lost-wakeup handshake: hammer `kick()`
        // (via `put`) from several threads with a tiny quantum, then tear
        // the merge thread down mid-stream, many times over. A swallowed
        // kick or a missed shutdown notification shows up here as a hang
        // (test timeout) or lost data.
        for round in 0..20u32 {
            let data: SharedDevice = Arc::new(MemDevice::new());
            let wal: SharedDevice = Arc::new(MemDevice::new());
            let tree = BLsmTree::open(
                data,
                wal,
                1024,
                BLsmConfig {
                    mem_budget: 64 << 10,
                    ..Default::default()
                },
                Arc::new(AppendOperator),
            )
            .unwrap();
            // Quantum below the floor: exercises the floor clamp too.
            let db = Arc::new(ThreadedBLsm::start(tree, 1).unwrap());
            let stop = Arc::new(AtomicBool::new(false));
            let mut handles = Vec::new();
            for t in 0..3u32 {
                let db = db.clone();
                let stop = stop.clone();
                handles.push(std::thread::spawn(move || {
                    let mut i = 0u32;
                    while !stop.load(Ordering::SeqCst) || i < 50 {
                        let id = t * 1_000_000 + i;
                        db.put(format!("k{id:08}").into_bytes(), Bytes::from_static(b"v"))
                            .unwrap();
                        i += 1;
                        if i >= 10_000 {
                            break;
                        }
                    }
                    i
                }));
            }
            // Let the writers race the merge thread briefly, then stop.
            std::thread::sleep(Duration::from_millis(2));
            stop.store(true, Ordering::SeqCst);
            let counts: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let db = Arc::try_unwrap(db)
                .unwrap_or_else(|_| panic!("writer threads exited; sole owner expected"));
            let tree = db.shutdown().unwrap();
            // Every acknowledged write must be readable after shutdown.
            for (t, n) in counts.iter().enumerate() {
                for i in (0..*n).step_by(17) {
                    let id = t as u32 * 1_000_000 + i;
                    let v = tree.get(format!("k{id:08}").as_bytes()).unwrap();
                    assert!(v.is_some(), "round {round}: lost k{id:08}");
                }
            }
        }
    }

    #[test]
    fn idle_merge_progress_without_writes() {
        let db = new_threaded();
        for i in 0..3_000u32 {
            db.put(format!("k{i:06}").into_bytes(), Bytes::from(vec![0u8; 64]))
                .unwrap();
        }
        // Stop writing; the merge thread should drain pending merges on
        // its own within its timeout loop.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let (m01, m12) = db.with_tree(super::super::tree::BLsmTree::merges_active);
            if !m01 && !m12 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background merges never finished"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
