//! The paper's merge progress estimators (§4.1).
//!
//! ```text
//! inprogress_i  = bytes read by merge_i / (|C'_{i-1}| + |C_i|)
//! outprogress_i = (inprogress_i + floor(|C_i| / |RAM|_i)) / ceil(R)
//! ```
//!
//! The crucial property is *smoothness*: "any merge activity increases it,
//! and, within a single merge, the cost (in bytes transferred) of
//! increasing inprogress by a fixed amount will never vary by more than a
//! small constant factor." We therefore measure progress in input bytes
//! *consumed*, never in keys emitted or output bytes written — runs of
//! deletions or disjoint key ranges advance it just the same, which is
//! exactly the "stuck estimator" failure §4.1 warns about.

/// Progress of one running merge.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MergeProgress {
    /// Input bytes consumed so far (both inputs combined).
    pub bytes_read: u64,
    /// Total input bytes at merge start: `|C'_{i-1}| + |C_i|`.
    pub input_total: u64,
}

impl MergeProgress {
    /// `inprogress` ∈ [0, 1]: fraction of the merge's input consumed.
    pub fn inprogress(&self) -> f64 {
        if self.input_total == 0 {
            1.0
        } else {
            (self.bytes_read as f64 / self.input_total as f64).min(1.0)
        }
    }
}

/// `outprogress_i` — how close component `i` is to needing a merge with
/// its downstream neighbour (§4.1). `ci_bytes` is the *current* size of
/// `C_i`, `ram` the per-level RAM unit `|RAM|_i`, and `r_ceil` the
/// ceiling of the size ratio `R`.
///
/// "The floor term is the computation one uses to determine what hour is
/// being displayed by an analog clock": each completed upstream merge
/// bumps `|C_i|` by about one RAM unit, and after `ceil(R)` such merges
/// the component is full and `outprogress` reaches one.
pub fn outprogress(inprogress: f64, ci_bytes: u64, ram: u64, r_ceil: u64) -> f64 {
    let fills = (ci_bytes / ram.max(1)) as f64;
    ((inprogress + fills) / r_ceil.max(1) as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn inprogress_tracks_bytes() {
        let mut p = MergeProgress {
            bytes_read: 0,
            input_total: 1000,
        };
        assert_eq!(p.inprogress(), 0.0);
        p.bytes_read = 250;
        assert_eq!(p.inprogress(), 0.25);
        p.bytes_read = 2000; // over-read clamps
        assert_eq!(p.inprogress(), 1.0);
    }

    #[test]
    fn empty_input_counts_as_done() {
        let p = MergeProgress {
            bytes_read: 0,
            input_total: 0,
        };
        assert_eq!(p.inprogress(), 1.0);
    }

    #[test]
    fn inprogress_is_smooth_in_bytes() {
        // Fixed increments of bytes_read produce fixed increments of
        // inprogress — the smoothness property §4.1 demands.
        let total = 10_000u64;
        let mut last = 0.0;
        for step in 1..=10 {
            let p = MergeProgress {
                bytes_read: step * 1000,
                input_total: total,
            };
            let delta = p.inprogress() - last;
            assert!((delta - 0.1).abs() < 1e-9);
            last = p.inprogress();
        }
    }

    #[test]
    fn outprogress_clock_analogy() {
        let ram = 100u64;
        let r_ceil = 4u64;
        // Fresh C1, merge half done: outprogress = 0.5/4.
        assert!((outprogress(0.5, 0, ram, r_ceil) - 0.125).abs() < 1e-9);
        // C1 holds 3 RAM units, merge half done: (0.5+3)/4.
        assert!((outprogress(0.5, 300, ram, r_ceil) - 0.875).abs() < 1e-9);
        // C1 holds R fills: pinned at 1 (a downstream merge is due).
        assert_eq!(outprogress(0.9, 400, ram, r_ceil), 1.0);
    }

    #[test]
    fn outprogress_reaches_one_exactly_before_trigger() {
        // §4.1: "outprogress ranges from zero to one, and ... is set to one
        // immediately before a new merge is triggered."
        let ram = 100u64;
        let r_ceil = 4u64;
        let almost = outprogress(1.0, 300, ram, r_ceil);
        assert_eq!(almost, 1.0);
    }
}
