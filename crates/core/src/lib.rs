//! bLSM: a general purpose log structured merge tree.
//!
//! Rust reproduction of Sears & Ramakrishnan, *bLSM: A General Purpose Log
//! Structured Merge Tree*, SIGMOD 2012. The tree (Figure 1 of the paper) is
//! a three-level LSM:
//!
//! ```text
//!   writes ──▶ C0 (RAM, snowshovel) ──merge──▶ C1 ──merge──▶ C2
//!   reads  ──▶ C0 → C1 (bloom) → C1' (bloom) → C2 (bloom), stop at the
//!              first base record
//! ```
//!
//! The headline pieces, each implemented here:
//!
//! * **Bloom filters on every on-disk component** and an early-terminating
//!   read path → point lookups cost ~1 seek (§3.1, Table 1).
//! * **Zero-seek blind writes** (`put`, `delete`, [`BLsmTree::apply_delta`])
//!   and zero-seek [`BLsmTree::insert_if_not_exists`] (§3.1.2).
//! * **Snowshoveling** — the `C0:C1` merge consumes `C0` in key order while
//!   the application keeps writing (§4.2).
//! * **Level merge schedulers** — the paper's primary contribution (§4.1,
//!   §4.3): a *naive* merge-when-full scheduler (the strawman with
//!   unbounded write pauses), the *gear* scheduler (smooth
//!   `inprogress`/`outprogress` pacing) and the *spring and gear*
//!   scheduler (watermark backpressure on `C0`, compatible with
//!   snowshoveling).
//! * **Logical-log durability and recovery** (§4.4.2), including the
//!   degraded-durability mode.
//!
//! Merges are incremental state machines driven cooperatively from the
//! write path — the scheduler decides how many bytes of merge work each
//! write performs, which is exactly how the paper bounds write latency
//! "without resorting to techniques that degrade read performance".

mod catalog;
mod commit;
mod config;
mod merge;
mod meta;
mod partitioned;
mod progress;
mod read;
mod route;
mod sched;
mod sharded;
mod stats;
mod threaded;
mod tree;

pub use config::{BLsmConfig, Durability, SchedulerKind};
pub use partitioned::PartitionedBLsm;
pub use progress::{outprogress, MergeProgress};
pub use read::{ReadView, ScanItem, TreeScrubReport};
pub use sched::{
    BackpressureLevel, GearScheduler, MergeScheduler, NaiveScheduler, SchedInputs,
    SpringGearScheduler, WorkPlan,
};
pub use sharded::{DegradedShard, ShardedBLsm, ShardedConfig, ShardedReadView};
pub use stats::{
    fsync_micros_bucket, group_size_bucket, RecoveryReport, TreeStats, TreeStatsSnapshot,
    COMMIT_HIST_BUCKETS,
};
pub use threaded::ThreadedBLsm;
pub use tree::{BLsmTree, ReplSource};

pub use blsm_memtable::{
    AddOperator, AppendOperator, Entry, MergeOperator, OverwriteOperator, SeqNo, Versioned,
};
