//! The atomically-published on-disk component catalog.
//!
//! §4.4.1 argues that "it is prohibitively expensive to acquire a
//! coarse-grained mutex for each merged tuple or page"; the standard LSM
//! answer (Luo & Carey's survey) is an *immutable component set swapped
//! atomically*: readers pin a snapshot of the component list and never
//! contend with merges. [`ComponentCatalog`] is that snapshot — the
//! `C1`/`C1'`/`C2` handles (each an `Arc<Sstable>` carrying its Bloom
//! filter and index) plus the newest sequence number any of them contains.
//! Merges build their output off to the side and publish a new catalog in
//! one [`CatalogCell::store`] per component rotation.
//!
//! [`TreeShared`] is everything the *write and read* paths need: the
//! catalog cell, the sharded [`ConcurrentC0`], the atomic sequence-number
//! allocator, the WAL behind its own mutex, the merge operator, the
//! buffer pool and the atomic statistics. [`crate::BLsmTree`] (whose
//! `merge` mutex serializes only the merge state machine) and every
//! [`crate::ReadView`] hold it via `Arc`.
//!
//! Consistency between `C0` and the catalog no longer rests on a
//! buffer-wide `c0` write lock. The `C0:C1` commit point runs inside
//! [`ConcurrentC0::end_pass_with`]: the buffer bumps its publish epoch to
//! an odd value, the closure stores the new catalog, the retained
//! (already-drained) `C0` entries are cleared, and the epoch lands on the
//! next even value. Readers run a seqlock loop (`read.rs`): sample an
//! even epoch, read the `C0` shards and load the catalog, and retry if
//! the epoch moved. They therefore see either the old `C1` plus the
//! retained `C0` copies or the new `C1` without them — never neither,
//! never both.
//!
//! Lock order (see `DESIGN.md` §14): `merge` → `commit` → `wal` →
//! `catalog` → `recovery` → `work_pending`. The memtable's internal
//! `pass` → `tables` locks are encapsulated below `catalog` and never
//! escape the crate.

use std::sync::atomic::{AtomicU64, AtomicUsize};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};

use blsm_memtable::{ConcurrentC0, MergeOperator};
use blsm_sstable::Sstable;
use blsm_storage::{BufferPool, ComponentId, Wal};

use crate::commit::CommitState;
use crate::config::BLsmConfig;
use crate::sched::BackpressureLevel;
use crate::stats::{RecoveryReport, TreeStats, TreeStatsSnapshot};

/// An immutable snapshot of the on-disk component set, searched
/// newest→oldest: `C1`, then `C1'`, then `C2`.
#[derive(Debug, Clone)]
pub(crate) struct ComponentCatalog {
    /// Output of the most recent `C0:C1` merge.
    pub(crate) c1: Option<Arc<Sstable>>,
    /// A full `C1` awaiting (or undergoing) the `C1':C2` merge.
    pub(crate) c1_prime: Option<Arc<Sstable>>,
    /// The largest component.
    pub(crate) c2: Option<Arc<Sstable>>,
    /// Newest sequence number stored in any catalogued component. WAL
    /// replay skips records at or below a component's coverage without
    /// probing when the record's seqno exceeds this horizon.
    pub(crate) seqno_horizon: u64,
}

impl ComponentCatalog {
    /// Builds a catalog, deriving the seqno horizon from the components.
    pub(crate) fn new(
        c1: Option<Arc<Sstable>>,
        c1_prime: Option<Arc<Sstable>>,
        c2: Option<Arc<Sstable>>,
    ) -> ComponentCatalog {
        let seqno_horizon = [&c1, &c1_prime, &c2]
            .into_iter()
            .flatten()
            .map(|t| t.meta().max_seqno)
            .max()
            .unwrap_or(0);
        ComponentCatalog {
            c1,
            c1_prime,
            c2,
            seqno_horizon,
        }
    }

    /// Components in probe order (newest first), absent slots skipped.
    pub(crate) fn tables(&self) -> impl Iterator<Item = &Arc<Sstable>> {
        [&self.c1, &self.c1_prime, &self.c2].into_iter().flatten()
    }

    /// Like [`tables`](Self::tables), but each component is paired with
    /// its slot identity so errors can name where they came from.
    pub(crate) fn named_tables(&self) -> impl Iterator<Item = (ComponentId, &Arc<Sstable>)> {
        [
            (ComponentId::C1, &self.c1),
            (ComponentId::C1Prime, &self.c1_prime),
            (ComponentId::C2, &self.c2),
        ]
        .into_iter()
        .filter_map(|(id, t)| t.as_ref().map(|t| (id, t)))
    }
}

/// One atomically-swappable catalog pointer.
///
/// `RwLock<Arc<_>>` rather than a bare atomic pointer: the lock is held
/// only for the pointer clone/store (never across I/O), so readers see a
/// few nanoseconds of contention at worst, and the shim environment
/// provides no `arc-swap`.
#[derive(Debug)]
pub(crate) struct CatalogCell {
    inner: RwLock<Arc<ComponentCatalog>>,
}

impl CatalogCell {
    pub(crate) fn new(catalog: ComponentCatalog) -> CatalogCell {
        CatalogCell {
            inner: RwLock::new(Arc::new(catalog)),
        }
    }

    /// Pins the current catalog snapshot.
    pub(crate) fn load(&self) -> Arc<ComponentCatalog> {
        self.inner.read().clone()
    }

    /// Publishes a new catalog. When the swap must be atomic with a `C0`
    /// state change (the `C0:C1` commit point), callers store from inside
    /// the [`ConcurrentC0::end_pass_with`] commit closure, which runs in
    /// the odd-epoch window readers retry across; pure disk-level
    /// rotations may store directly.
    pub(crate) fn store(&self, catalog: Arc<ComponentCatalog>) {
        *self.inner.write() = catalog;
    }
}

/// State shared between the merge side ([`crate::BLsmTree`]), concurrent
/// application writers, and any number of lock-free readers
/// ([`crate::ReadView`]).
pub(crate) struct TreeShared {
    pub(crate) config: BLsmConfig,
    pub(crate) op: Arc<dyn MergeOperator>,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) catalog: CatalogCell,
    /// The sharded `C0`; writers insert through `&self` and scale across
    /// key-range shards, merges drain behind the buffer's pass lock.
    pub(crate) c0: ConcurrentC0,
    /// Next sequence number to allocate. Writers claim seqnos with
    /// `fetch_add` before inserting; per-key ordering is restored inside
    /// the memtable fold (a racing latecomer folds in as the older
    /// version).
    // ordering: AcqRel ticket RMWs, a Release store of the replayed
    // floor at open, Acquire loads for manifest snapshots. The counter
    // only needs to hand out unique, monotone values; happens-before
    // for the entries themselves comes from the shard locks.
    pub(crate) next_seqno: AtomicU64,
    /// Applied floor: every seqno strictly below it has *completed* the
    /// WAL-append + `C0`-insert path on this node. Unlike `next_seqno`
    /// (a reservation counter that may run ahead of failed or in-flight
    /// writes), this only advances after an insert succeeds — it is the
    /// horizon replication acks and the replicated-apply dedupe check
    /// are based on, so a record whose apply *failed* (backpressure,
    /// WAL error) is re-applied on the leader's resend instead of being
    /// skipped as a duplicate.
    // ordering: AcqRel `fetch_max` after each successful insert (the
    // insert happens-before the floor advance), a Release store of the
    // replayed floor at open, Acquire loads in the dedupe check and
    // replication acks — an acked floor implies fully applied records.
    pub(crate) applied_floor: AtomicU64,
    /// Bytes writers were admitted for by `pace` but have not yet made
    /// resident in `C0` (claimed before the WAL append + insert, released
    /// when the insert lands or the write errors out). Feeds
    /// `admitted_peak` — the quantity the strict-invariants cap check
    /// actually uses.
    // ordering: AcqRel RMWs — a claim precedes its C0 insert, so any
    // observer that sees an insert's bytes in the C0 counters also sees
    // its (possibly already released) claim.
    pub(crate) admitted_inflight: AtomicUsize,
    /// High-water mark of `admitted_inflight`: the most bytes ever
    /// admitted-but-uninserted at once. Concurrent writers are each
    /// admitted against the `C0` cap *before* inserting, so the buffer
    /// can legitimately overshoot its budget by at most this much (the
    /// overshoot persists in `C0` after the claims release, until a pass
    /// drains it — hence a monotone peak, not the instantaneous value).
    /// The strict-invariants cap check adds it to its slack, so the
    /// permitted overshoot scales with the writers actually observed in
    /// flight — N concurrent writers × their entry sizes — instead of a
    /// fixed constant a large fleet or large values could exceed, while a
    /// broken pacer that admits serially past the budget still trips the
    /// check.
    // ordering: AcqRel `fetch_max` before the claim's C0 insert, Acquire
    // loads — an invariant check that observes an insert's bytes in C0
    // also observes the peak that admitted it.
    pub(crate) admitted_peak: AtomicUsize,
    /// Write-ahead log (`None` when durability is off). Its own mutex so
    /// concurrent writers serialize only the log append *and the paired
    /// `C0` insert* — that pairing is deliberate: because append+insert is
    /// one critical section, a log-tail sample taken under this mutex
    /// partitions records into "fully in C0" and "after the sample",
    /// which is exactly what makes post-pass log truncation safe (see
    /// `merge.rs`). Ordered after `merge` and before `catalog` in the
    /// lock hierarchy.
    pub(crate) wal: Mutex<Option<Wal>>,
    /// Group-commit election bookkeeping (see `commit.rs` and DESIGN.md
    /// §18): leader flag, parked-waiter count, failure epoch. Ordered
    /// between `merge` and `wal` in the hierarchy, but never held while
    /// acquiring anything — the leader drops it before touching the WAL
    /// and is **never** held across I/O.
    pub(crate) commit: Mutex<CommitState>,
    /// Wakes group-commit waiters when a group retires (or fails), and
    /// the accumulating leader when a co-waiter joins. Paired with
    /// `commit`.
    pub(crate) commit_cv: Condvar,
    /// LSN below which every WAL byte is known device-stable — the
    /// horizon `Durability::Sync` acks cover. Mirrors the WAL's own
    /// `synced` watermark so satisfied waiters return without the lock.
    // ordering: AcqRel `fetch_max` by the group leader after its device
    // sync (the sync happens-before the horizon it publishes), Acquire
    // loads in the `wait_durable` fast path and `durable_lsn` — an
    // observed horizon implies the covering sync completed. At open, a
    // plain Release store of the replay tail (replayed bytes are on the
    // device by definition).
    pub(crate) durable: AtomicU64,
    /// Appends counted into the currently-open commit group: records
    /// appended since the last leader flush. Bumped under the `wal`
    /// mutex by `log_and_insert`, swapped to zero under the same mutex
    /// by the leader's flush — so the swap reads exactly the group the
    /// flush covered. Feeds the group-size histogram.
    // ordering: AcqRel RMWs / Release store — serialized by the wal
    // mutex; group bookkeeping, not a synchronization edge.
    pub(crate) unsynced_writes: AtomicU64,
    /// Frame bytes counted into the currently-open commit group; same
    /// discipline as `unsynced_writes`. Read (Acquire, possibly stale)
    /// by an accumulating leader as its `commit_group_bytes` early-exit
    /// trigger.
    // ordering: AcqRel RMWs / Release store under the wal mutex;
    // Acquire reads from the leader's deadline loop tolerate staleness.
    pub(crate) unsynced_bytes: AtomicU64,
    pub(crate) stats: TreeStats,
    /// Set once at the end of [`crate::BLsmTree::open`]; the lock is only
    /// for interior mutability, never held across I/O.
    pub(crate) recovery: RwLock<RecoveryReport>,
}

impl TreeShared {
    /// Counter snapshot plus the live spring-and-gear backpressure level
    /// derived from `C0` occupancy against the configured watermarks —
    /// the single source of truth the serving layer's admission control
    /// and STATS command read. Lock-free: `C0` occupancy is an atomic
    /// counter read.
    pub(crate) fn stats_snapshot(&self) -> TreeStatsSnapshot {
        let mut snap = self.stats.snapshot();
        snap.backpressure = self.backpressure_level();
        snap.recovery = *self.recovery.read();
        // ordering: Acquire — pairs with the AcqRel ticket allocation in
        // `write_entry` / the replicated-apply CAS; see the field docs.
        snap.next_seqno = self.next_seqno.load(std::sync::atomic::Ordering::Acquire);
        snap
    }

    /// Just the backpressure level — one atomic `C0` occupancy read plus
    /// arithmetic, for per-write fast paths (the merge-kick gate) that
    /// cannot afford the full counter snapshot.
    pub(crate) fn backpressure_level(&self) -> BackpressureLevel {
        BackpressureLevel::from_occupancy(
            self.c0.approx_bytes() as u64,
            self.config.mem_budget as u64,
            self.config.low_water,
            self.config.high_water,
        )
    }
}

impl std::fmt::Debug for TreeShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreeShared")
            .field("c0_bytes", &self.c0.approx_bytes())
            .field("catalog", &self.catalog.load())
            .finish_non_exhaustive()
    }
}
