//! The atomically-published on-disk component catalog.
//!
//! §4.4.1 argues that "it is prohibitively expensive to acquire a
//! coarse-grained mutex for each merged tuple or page"; the standard LSM
//! answer (Luo & Carey's survey) is an *immutable component set swapped
//! atomically*: readers pin a snapshot of the component list and never
//! contend with merges. [`ComponentCatalog`] is that snapshot — the
//! `C1`/`C1'`/`C2` handles (each an `Arc<Sstable>` carrying its Bloom
//! filter and index) plus the newest sequence number any of them contains.
//! Merges build their output off to the side and publish a new catalog in
//! one [`CatalogCell::store`] per component rotation.
//!
//! [`TreeShared`] is everything the read path needs: the catalog cell,
//! `C0` behind its own reader-writer lock, the merge operator, the buffer
//! pool and the atomic statistics. [`crate::BLsmTree`] (the serialized
//! merge state) and every [`crate::ReadView`] hold it via `Arc`.
//!
//! Lock order: `c0` before `catalog`, everywhere. Readers take
//! `c0.read()` and load the catalog under it (see `read.rs`); the
//! `C0:C1` merge commits by storing the new catalog *and* retiring the
//! pass's drained entries under one `c0.write()` critical section, so a
//! reader sees either the old `C1` plus the retained `C0` copies or the
//! new `C1` without them — never neither, never both.

use std::sync::Arc;

use parking_lot::RwLock;

use blsm_memtable::{MergeOperator, SnowshovelBuffer};
use blsm_sstable::Sstable;
use blsm_storage::{BufferPool, ComponentId};

use crate::config::BLsmConfig;
use crate::sched::BackpressureLevel;
use crate::stats::{RecoveryReport, TreeStats, TreeStatsSnapshot};

/// An immutable snapshot of the on-disk component set, searched
/// newest→oldest: `C1`, then `C1'`, then `C2`.
#[derive(Debug, Clone)]
pub(crate) struct ComponentCatalog {
    /// Output of the most recent `C0:C1` merge.
    pub(crate) c1: Option<Arc<Sstable>>,
    /// A full `C1` awaiting (or undergoing) the `C1':C2` merge.
    pub(crate) c1_prime: Option<Arc<Sstable>>,
    /// The largest component.
    pub(crate) c2: Option<Arc<Sstable>>,
    /// Newest sequence number stored in any catalogued component. WAL
    /// replay skips records at or below a component's coverage without
    /// probing when the record's seqno exceeds this horizon.
    pub(crate) seqno_horizon: u64,
}

impl ComponentCatalog {
    /// Builds a catalog, deriving the seqno horizon from the components.
    pub(crate) fn new(
        c1: Option<Arc<Sstable>>,
        c1_prime: Option<Arc<Sstable>>,
        c2: Option<Arc<Sstable>>,
    ) -> ComponentCatalog {
        let seqno_horizon = [&c1, &c1_prime, &c2]
            .into_iter()
            .flatten()
            .map(|t| t.meta().max_seqno)
            .max()
            .unwrap_or(0);
        ComponentCatalog {
            c1,
            c1_prime,
            c2,
            seqno_horizon,
        }
    }

    /// Components in probe order (newest first), absent slots skipped.
    pub(crate) fn tables(&self) -> impl Iterator<Item = &Arc<Sstable>> {
        [&self.c1, &self.c1_prime, &self.c2].into_iter().flatten()
    }

    /// Like [`tables`](Self::tables), but each component is paired with
    /// its slot identity so errors can name where they came from.
    pub(crate) fn named_tables(&self) -> impl Iterator<Item = (ComponentId, &Arc<Sstable>)> {
        [
            (ComponentId::C1, &self.c1),
            (ComponentId::C1Prime, &self.c1_prime),
            (ComponentId::C2, &self.c2),
        ]
        .into_iter()
        .filter_map(|(id, t)| t.as_ref().map(|t| (id, t)))
    }
}

/// One atomically-swappable catalog pointer.
///
/// `RwLock<Arc<_>>` rather than a bare atomic pointer: the lock is held
/// only for the pointer clone/store (never across I/O), so readers see a
/// few nanoseconds of contention at worst, and the shim environment
/// provides no `arc-swap`.
#[derive(Debug)]
pub(crate) struct CatalogCell {
    inner: RwLock<Arc<ComponentCatalog>>,
}

impl CatalogCell {
    pub(crate) fn new(catalog: ComponentCatalog) -> CatalogCell {
        CatalogCell {
            inner: RwLock::new(Arc::new(catalog)),
        }
    }

    /// Pins the current catalog snapshot.
    pub(crate) fn load(&self) -> Arc<ComponentCatalog> {
        self.inner.read().clone()
    }

    /// Publishes a new catalog. Callers must hold the `c0` write lock
    /// when the swap must be atomic with a `C0` state change (the
    /// `C0:C1` commit point); pure disk-level rotations may store
    /// directly.
    pub(crate) fn store(&self, catalog: Arc<ComponentCatalog>) {
        *self.inner.write() = catalog;
    }
}

/// State shared between the serialized merge side ([`crate::BLsmTree`])
/// and any number of lock-free readers ([`crate::ReadView`]).
pub(crate) struct TreeShared {
    pub(crate) config: BLsmConfig,
    pub(crate) op: Arc<dyn MergeOperator>,
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) catalog: CatalogCell,
    pub(crate) c0: RwLock<SnowshovelBuffer>,
    pub(crate) stats: TreeStats,
    /// Set once at the end of [`crate::BLsmTree::open`]; the lock is only
    /// for interior mutability, never held across I/O.
    pub(crate) recovery: RwLock<RecoveryReport>,
}

impl TreeShared {
    /// Counter snapshot plus the live spring-and-gear backpressure level
    /// derived from `C0` occupancy against the configured watermarks —
    /// the single source of truth the serving layer's admission control
    /// and STATS command read.
    pub(crate) fn stats_snapshot(&self) -> TreeStatsSnapshot {
        let c0_bytes = self.c0.read().approx_bytes() as u64;
        let mut snap = self.stats.snapshot();
        snap.backpressure = BackpressureLevel::from_occupancy(
            c0_bytes,
            self.config.mem_budget as u64,
            self.config.low_water,
            self.config.high_water,
        );
        snap.recovery = *self.recovery.read();
        snap
    }
}

impl std::fmt::Debug for TreeShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreeShared")
            .field("c0_bytes", &self.c0.read().approx_bytes())
            .field("catalog", &self.catalog.load())
            .finish_non_exhaustive()
    }
}
