//! The bLSM tree engine.
//!
//! Three levels (`C0` in RAM, `C1`/`C1'`/`C2` on disk, Figure 1), Bloom
//! filters on every disk component, early-terminating reads, snowshoveling,
//! incremental merges paced by a pluggable level scheduler, a logical log,
//! and manifest-based crash recovery.
//!
//! Merges run *cooperatively*: each application write asks the scheduler
//! for a [`WorkPlan`](crate::WorkPlan) and performs that much merge work
//! inline before inserting. This makes pacing deterministic (essential for
//! the simulated-device experiments) while remaining faithful to the
//! paper's semantics — the scheduler decides exactly when merge I/O
//! happens relative to application writes, which is all that matters for
//! latency and throughput. `maintenance` exposes the same state machine
//! for background/idle driving.
//!
//! Concurrency: the tree splits into three planes.
//!
//! * **Reads** go through `Arc<TreeShared>` (also reachable as a
//!   standalone [`crate::ReadView`] via [`BLsmTree::read_view`]): `get`,
//!   `scan` and `exists` pin the sharded `C0` plus the catalog behind the
//!   buffer's publish epoch and never take a tree-wide lock.
//! * **Writes** are `&self` and scale across threads: `put`, `delete` and
//!   `apply_delta` claim a seqno from an atomic counter, append to the
//!   WAL under its own mutex, and insert into the key-range-sharded
//!   [`ConcurrentC0`](blsm_memtable::ConcurrentC0) — two writers contend
//!   only when they touch the same key-range shard (or both need the
//!   log).
//! * **Merges** serialize on the `merge` mutex holding [`MergeState`].
//!   Writers *opportunistically* pace (try-lock: if the merge thread or a
//!   sibling writer already holds the state, the quantum is already being
//!   run) and only block on it to enforce the hard `C0` cap.
//!
//! Lock order: `merge` → `wal` → `catalog` → `recovery` (see DESIGN.md
//! §14). The module split mirrors the design: `catalog.rs` (the
//! atomically swapped component snapshot), `read.rs` (the read path),
//! `merge.rs` (the merge machinery).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use blsm_memtable::{ConcurrentC0, Entry, MergeOperator, PassMode, Versioned};
use blsm_sstable::Sstable;
use blsm_storage::codec::{self, Reader};
use blsm_storage::manifest::{ManifestStore, DEFAULT_SLOT_PAGES};
use blsm_storage::page::PAGE_PAYLOAD_LEN;
use blsm_storage::{
    BufferPool, RegionAllocator, Result, SharedDevice, StorageError, Wal, PAGE_SIZE,
};
use parking_lot::Mutex;

use crate::catalog::{CatalogCell, ComponentCatalog, TreeShared};
use crate::config::{BLsmConfig, Durability};
use crate::merge::{Merge01, Merge12, RetiredTable};
use crate::meta::{ComponentSlot, TreeMeta};
use crate::read::{ReadView, ScanItem, TreeScrubReport};
use crate::sched::{make_scheduler, MergeScheduler, SchedInputs};
use crate::stats::{self, RecoveryReport, TreeStats, TreeStatsSnapshot};

/// A general purpose log structured merge tree (the paper's system).
///
/// Writes and reads are `&self` and safe from any number of threads;
/// merge quanta serialize internally on the `merge` mutex (see the module
/// docs for the concurrency planes).
pub struct BLsmTree {
    /// State shared with every [`ReadView`] and concurrent writer.
    pub(crate) shared: Arc<TreeShared>,
    /// The serialized merge state machine. Writers try-lock it for
    /// opportunistic pacing and block on it only at the hard `C0` cap.
    pub(crate) merge: Mutex<MergeState>,
}

/// Everything only the (single) merge driver of the moment touches:
/// allocator, manifest, scheduler, in-flight merges, retired components.
pub(crate) struct MergeState {
    pub(crate) allocator: RegionAllocator,
    pub(crate) manifest: ManifestStore,
    pub(crate) scheduler: Box<dyn MergeScheduler>,
    pub(crate) merge01: Option<Merge01>,
    pub(crate) merge12: Option<Merge12>,
    /// Replaced components awaiting deferred reclamation (readers may
    /// still hold pinned catalog snapshots referencing them).
    pub(crate) retired: Vec<RetiredTable>,
    /// Current level size ratio (recomputed after merges unless pinned).
    pub(crate) r: f64,
    /// True when the last completed pass left entries in `C0` (suppresses
    /// log truncation for that pass).
    pub(crate) last_pass_had_leftover: bool,
    #[cfg(feature = "strict-invariants")]
    pub(crate) strict: StrictState,
}

/// Cross-quantum bookkeeping for [`BLsmTree::check_invariants`].
#[cfg(feature = "strict-invariants")]
#[derive(Debug, Default)]
pub(crate) struct StrictState {
    /// Snowshovel cursor observed at the previous quantum boundary; the
    /// cursor must never move backwards within a pass (§4.2).
    last_cursor: Option<Bytes>,
    /// `stats.merges01` at the previous check — a change means the pass
    /// ended and the cursor legitimately reset.
    last_merges01: u64,
    /// Rotates which leaves the sampled component checks read, so repeated
    /// quanta cover different parts of each component.
    rotation: usize,
}

impl std::fmt::Debug for BLsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("BLsmTree");
        d.field("c0_bytes", &self.c0_bytes());
        if let Some(m) = self.merge.try_lock() {
            d.field("merge01_active", &m.merge01.is_some())
                .field("merge12_active", &m.merge12.is_some())
                .field("r", &m.r);
        }
        d.finish_non_exhaustive()
    }
}

impl BLsmTree {
    /// Opens (or creates) a tree on `data_dev`, with the logical log on
    /// `wal_dev` — the paper expects logs on dedicated hardware (§5.1).
    /// `pool_pages` is the buffer-cache budget in 4 KiB pages.
    pub fn open(
        data_dev: SharedDevice,
        wal_dev: SharedDevice,
        pool_pages: usize,
        config: BLsmConfig,
        op: Arc<dyn MergeOperator>,
    ) -> Result<BLsmTree> {
        let config = config.validated();
        let pool = Arc::new(BufferPool::new(data_dev, pool_pages));
        let (manifest, payload) = ManifestStore::open(pool.device().clone(), DEFAULT_SLOT_PAGES)?;

        let mut recovery = RecoveryReport {
            manifest_rolled_back: manifest.load_report().rolled_back,
            ..RecoveryReport::default()
        };
        let mut c1 = None;
        let mut c1_prime = None;
        let mut c2 = None;
        let (allocator, wal_head, mut next_seqno) = match payload {
            Some(bytes) => {
                let meta = TreeMeta::decode(&bytes)?;
                for (slot, region) in &meta.components {
                    let table = Arc::new(Sstable::open(pool.clone(), *region)?);
                    recovery.components_salvaged += 1;
                    match slot {
                        ComponentSlot::C1 => c1 = Some(table),
                        ComponentSlot::C1Prime => c1_prime = Some(table),
                        ComponentSlot::C2 => c2 = Some(table),
                    }
                }
                let mut allocator = meta.allocator;
                // Regions that were retired but still reader-pinned at
                // the final manifest save belong to nobody now — without
                // this they would stay allocated forever.
                for region in meta.retired {
                    allocator.free(region);
                }
                (allocator, meta.wal_head, meta.next_seqno)
            }
            None => (RegionAllocator::new(manifest.first_free_page()), 0, 1),
        };

        let scheduler = make_scheduler(&config);
        let shared = Arc::new(TreeShared {
            op,
            pool,
            catalog: CatalogCell::new(ComponentCatalog::new(c1, c1_prime, c2)),
            c0: ConcurrentC0::new(),
            next_seqno: AtomicU64::new(next_seqno),
            applied_floor: AtomicU64::new(next_seqno),
            admitted_inflight: AtomicUsize::new(0),
            admitted_peak: AtomicUsize::new(0),
            wal: Mutex::new(None),
            commit: Mutex::new(crate::commit::CommitState::default()),
            commit_cv: parking_lot::Condvar::new(),
            durable: AtomicU64::new(0),
            unsynced_writes: AtomicU64::new(0),
            unsynced_bytes: AtomicU64::new(0),
            stats: TreeStats::default(),
            recovery: parking_lot::RwLock::new(RecoveryReport::default()),
            config,
        });
        let tree = BLsmTree {
            shared,
            merge: Mutex::new(MergeState {
                allocator,
                manifest,
                scheduler,
                merge01: None,
                merge12: None,
                retired: Vec::new(),
                r: 4.0,
                last_pass_had_leftover: false,
                #[cfg(feature = "strict-invariants")]
                strict: StrictState::default(),
            }),
        };

        // Replay the logical log into C0 (§4.4.2). Each record is checked
        // against the recovered components: snowshoveling delays log
        // truncation, so the live log window can contain records whose
        // effects already reached C1 — those are skipped by sequence
        // number, keeping replay exactly-once even for deltas. Records are
        // replayed in *seqno* order, not log order: concurrent writers
        // claim seqnos before taking the log mutex, so two records can
        // land in the log out of order.
        if tree.shared.config.durability != Durability::None {
            let replay = blsm_storage::wal::replay_report(
                &wal_dev,
                tree.shared.config.wal_capacity,
                wal_head,
            );
            recovery.wal_records_replayed = replay.records.len() as u64;
            recovery.wal_recovered_bytes = replay.tail - wal_head;
            recovery.wal_torn_tail_bytes = replay.torn_tail_bytes;
            let tail = replay.tail;
            let mut records = Vec::with_capacity(replay.records.len());
            for rec in replay.records {
                records.push(decode_wal_record(&rec.payload)?);
            }
            records.sort_by_key(|(_, v)| v.seqno);
            for (key, v) in records {
                next_seqno = next_seqno.max(v.seqno + 1);
                let durable = tree.shared.disk_newest_seqno(&key, v.seqno)?;
                if durable.is_some_and(|s| s >= v.seqno) {
                    recovery.wal_records_skipped += 1;
                    continue;
                }
                tree.shared.c0.insert(key, v, tree.shared.op.as_ref());
            }
            // ordering: Release — open() is single-threaded, but the
            // store pairs with the AcqRel tickets taken once the tree is
            // shared, so the replayed floor is visible to every writer.
            tree.shared.next_seqno.store(next_seqno, Ordering::Release);
            // Everything replayed (or skipped as already durable) below
            // the floor is fully applied on this node.
            tree.shared
                .applied_floor
                .store(next_seqno, Ordering::Release);
            *tree.shared.wal.lock() = Some(Wal::new(
                wal_dev,
                tree.shared.config.wal_capacity,
                wal_head,
                tail,
            ));
            // Everything replay just read back is on the device by
            // definition — the recovered tail is the durable horizon
            // group commit resumes from.
            // ordering: Release — open() is single-threaded; pairs with
            // the Acquire loads in `wait_durable`/`durable_lsn`.
            tree.shared.durable.store(tail, Ordering::Release);
        }
        *tree.shared.recovery.write() = recovery;

        {
            let mut m = tree.merge.lock();
            m.r = tree.shared.config.r.unwrap_or(4.0);
            // A crash mid-C1':C2 leaves C1' installed; restart its merge.
            if tree.shared.catalog.load().c1_prime.is_some() {
                tree.start_merge12_locked(&mut m)?;
            }
            tree.recompute_r(&mut m);
        }
        Ok(tree)
    }

    /// A cloneable, lock-free handle to the read path. Valid for the
    /// tree's whole life; safe to use from any thread while this handle
    /// keeps writing and merging.
    pub fn read_view(&self) -> ReadView {
        ReadView::new(self.shared.clone())
    }

    /// The tree's merge operator.
    pub fn operator(&self) -> &Arc<dyn MergeOperator> {
        &self.shared.op
    }

    /// The buffer pool (device access, cache statistics).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.shared.pool
    }

    /// Snapshot of the engine counters plus the live backpressure level.
    pub fn stats(&self) -> TreeStatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// What recovery found and did when this tree was opened.
    pub fn recovery_report(&self) -> RecoveryReport {
        *self.shared.recovery.read()
    }

    /// Verifies every on-disk component against the device: per-page
    /// checksums (read device-direct, bypassing the cache), footer
    /// checksums, key ordering, fence agreement, Bloom-filter agreement
    /// and entry counts. Returns the problems found instead of failing on
    /// the first one.
    pub fn scrub(&self) -> TreeScrubReport {
        self.shared.scrub()
    }

    /// Active configuration.
    pub fn config(&self) -> &BLsmConfig {
        &self.shared.config
    }

    /// Current level size ratio `R`.
    pub fn current_r(&self) -> f64 {
        self.merge.lock().r
    }

    /// Bytes buffered in `C0` — an atomic counter read, no locks.
    pub fn c0_bytes(&self) -> usize {
        self.shared.c0.approx_bytes()
    }

    /// The live spring-and-gear backpressure level, from one atomic `C0`
    /// occupancy read — the cheap form of the field in
    /// [`crate::ReadView::stats`], for per-write fast paths.
    pub fn backpressure(&self) -> crate::sched::BackpressureLevel {
        self.shared.backpressure_level()
    }

    /// The next sequence number the tree would allocate — an atomic
    /// counter read, no locks. Monotone non-decreasing over the life of
    /// an open tree (the concurrency hammer asserts exactly that).
    pub fn next_seqno(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel ticket allocation in
        // `write_entry`; see the field docs in `catalog.rs`.
        self.shared.next_seqno.load(Ordering::Acquire)
    }

    /// The highest seqno this tree has *fully applied* (WAL + `C0`),
    /// from one atomic read. Unlike [`next_seqno`](Self::next_seqno)
    /// (a reservation counter), this never covers a write whose apply
    /// failed — it is the horizon replication acks report.
    pub fn applied_seqno(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel floor advance in
        // `insert_versioned`; see the field docs in `catalog.rs`.
        self.shared
            .applied_floor
            .load(Ordering::Acquire)
            .saturating_sub(1)
    }

    /// Data bytes in each on-disk component `(C1, C1', C2)`.
    pub fn component_bytes(&self) -> (u64, u64, u64) {
        let cat = self.shared.catalog.load();
        (
            cat.c1.as_ref().map_or(0, |c| c.data_bytes()),
            cat.c1_prime.as_ref().map_or(0, |c| c.data_bytes()),
            cat.c2.as_ref().map_or(0, |c| c.data_bytes()),
        )
    }

    /// Total user data bytes across all levels (approximate).
    pub fn total_data_bytes(&self) -> u64 {
        let (a, b, c) = self.component_bytes();
        a + b + c + self.c0_bytes() as u64
    }

    /// RAM consumed by in-memory indexes and Bloom filters — the read
    /// fanout denominator (§2.1).
    pub fn index_ram_bytes(&self) -> usize {
        let cat = self.shared.catalog.load();
        cat.tables()
            .map(|c| c.index_ram_bytes() + c.bloom().params().bytes())
            .sum()
    }

    // -----------------------------------------------------------------
    // Write path (&self — safe from any number of threads)
    // -----------------------------------------------------------------

    /// Inserts or overwrites (a *blind write* — zero seeks, Table 1).
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        self.write_entry(key.into(), Entry::Put(value.into()))
    }

    /// Deletes a key (zero seeks; a tombstone is merged down).
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<()> {
        self.write_entry(key.into(), Entry::Tombstone)
    }

    /// Applies a delta blindly — the paper's zero-seek "apply delta to
    /// record" primitive (Table 1, §2.3).
    pub fn apply_delta(&self, key: impl Into<Bytes>, delta: impl Into<Bytes>) -> Result<()> {
        self.write_entry(key.into(), Entry::Delta(delta.into()))
    }

    /// Read-modify-write: one seek for the read, zero for the write
    /// (Table 1 row 2; the B-Tree pays two). Not atomic against other
    /// writers of the same key — use [`apply_delta`](Self::apply_delta)
    /// for contended read-modify-write.
    pub fn read_modify_write(
        &self,
        key: impl Into<Bytes>,
        f: impl FnOnce(Option<&[u8]>) -> Option<Vec<u8>>,
    ) -> Result<()> {
        let key = key.into();
        let old = self.get(&key)?;
        match f(old.as_deref()) {
            Some(new) => self.put(key, new),
            None => self.delete(key),
        }
    }

    /// The paper's zero-seek `insert if not exists` (§3.1.2): the Bloom
    /// filter on the largest component makes the existence check free for
    /// absent keys. Returns true if the insert happened.
    pub fn insert_if_not_exists(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Result<bool> {
        let key = key.into();
        stats::bump(&self.shared.stats.check_inserts, 1);
        if self.exists(&key)? {
            return Ok(false);
        }
        self.write_entry(key, Entry::Put(value.into()))?;
        Ok(true)
    }

    /// Existence check with early termination and Bloom short-circuits.
    pub fn exists(&self, key: &[u8]) -> Result<bool> {
        self.shared.exists(key)
    }

    fn write_entry(&self, key: Bytes, entry: Entry) -> Result<()> {
        match self.write_entry_nowait(key, entry)? {
            // The write is applied; make it durable by joining (or
            // leading) a commit group — never by a private fsync.
            Some(target) => self.wait_durable(target),
            None => Ok(()),
        }
    }

    /// Everything of a write except the durability wait: pacing,
    /// admission, ticket allocation, WAL append and the paired `C0`
    /// insert. Returns the commit target a `Durability::Sync` caller
    /// must await (`None` when the configured durability completed
    /// inline) — the seam the nowait public API and the batching server
    /// front end build on.
    pub(crate) fn write_entry_nowait(&self, key: Bytes, entry: Entry) -> Result<Option<u64>> {
        let incoming = (key.len()
            + entry.payload_len()
            + blsm_memtable::Memtable::new().approx_bytes().max(64)) as u64;
        self.pace(incoming)?;
        let _claim = self.claim_admission(incoming);
        // ordering: AcqRel — the ticket RMW both observes the replayed
        // floor (Acquire) and publishes its claim to later readers of the
        // counter (Release); per-key ordering is restored by the
        // seqno-aware memtable fold and sorted WAL replay.
        let seqno = self.shared.next_seqno.fetch_add(1, Ordering::AcqRel);
        self.insert_versioned(key, Versioned { seqno, entry })
    }

    /// Claims the admitted bytes until the C0 insert lands and folds
    /// the claim into the concurrent-admission high-water mark (see
    /// `TreeShared::admitted_inflight`/`admitted_peak`); the guard
    /// releases the claim on every exit path, including WAL errors.
    fn claim_admission(&self, incoming: u64) -> AdmissionClaim<'_> {
        // ordering: AcqRel RMWs — see the fields' annotations.
        let inflight_now = incoming as usize
            + self
                .shared
                .admitted_inflight
                .fetch_add(incoming as usize, Ordering::AcqRel);
        self.shared
            .admitted_peak
            .fetch_max(inflight_now, Ordering::AcqRel);
        AdmissionClaim {
            inflight: &self.shared.admitted_inflight,
            bytes: incoming as usize,
        }
    }

    /// The tail of every write: bump counters, then log + insert (or
    /// just insert under degraded durability). Shared by locally-ticketed
    /// writes and the replication apply path, so a replicated record is
    /// logged to *this* node's WAL and folded into `C0` exactly like a
    /// local write. Returns the WAL commit target the caller must await
    /// for `Durability::Sync` (`None` otherwise).
    ///
    /// The applied floor advances here — after the insert, *before* any
    /// durability wait. That order is deliberate: the floor's contract
    /// ("every seqno below it completed WAL-append + `C0`-insert") is
    /// about *application*, and the replicated-apply dedupe check must
    /// see a record as applied even while its group commit is still in
    /// flight — otherwise a leader resend racing the group would
    /// re-apply a non-idempotent delta.
    fn insert_versioned(&self, key: Bytes, v: Versioned) -> Result<Option<u64>> {
        stats::bump(&self.shared.stats.writes, 1);
        stats::bump(
            &self.shared.stats.user_bytes_written,
            (key.len() + v.entry.payload_len()) as u64,
        );
        let seqno = v.seqno;
        let target = if self.shared.config.durability == Durability::None {
            // Degraded durability (§4.4.2): no log, no serialization —
            // writers contend only on their C0 key-range shard.
            self.shared.c0.insert(key, v, self.shared.op.as_ref());
            None
        } else {
            self.log_and_insert(key, v)?
        };
        // ordering: AcqRel — the insert above happens-before the floor
        // advance; see the field docs in `catalog.rs`. Only reached on
        // success, so the floor never runs ahead of a failed apply.
        self.shared
            .applied_floor
            .fetch_max(seqno + 1, Ordering::AcqRel);
        Ok(target)
    }

    /// Applies one replicated WAL record (a payload produced by the
    /// leader's `encode_wal_record`) through the normal write path,
    /// keeping the **leader's** seqno: the record is appended to this
    /// node's own WAL, made durable per the configured durability mode,
    /// and inserted into `C0` — so a promoted follower recovers exactly
    /// like a leader would.
    ///
    /// Returns `Ok(None)` when the record's seqno is below this tree's
    /// *applied* floor, i.e. its apply fully completed earlier —
    /// duplicated delivery (a flaky link re-sending a batch) is a no-op,
    /// which also makes replays after an ack loss safe for
    /// non-idempotent deltas.
    ///
    /// The dedupe check is deliberately **not** based on `next_seqno`:
    /// that counter is a reservation advanced *before* the fallible
    /// WAL-append + insert (so a promotion that happens mid-apply still
    /// allocates fresh tickets above every replicated record), and a
    /// floor that can run ahead of a failed apply would make the
    /// leader's retry of that record look like a duplicate — silently
    /// losing it on this follower. The applied floor advances only
    /// after the insert succeeds, so a failed apply leaves it in place
    /// and the resend is re-applied.
    ///
    /// # Errors
    ///
    /// Propagates decode failures ([`StorageError::InvalidFormat`]) and
    /// WAL/insert errors.
    pub fn apply_replicated(&self, payload: &[u8]) -> Result<Option<u64>> {
        match self.apply_replicated_inner(payload)? {
            Some((seqno, Some(target))) => {
                self.wait_durable(target)?;
                Ok(Some(seqno))
            }
            Some((seqno, None)) => Ok(Some(seqno)),
            None => Ok(None),
        }
    }

    /// [`apply_replicated`](Self::apply_replicated) minus the durability
    /// wait: `Some((seqno, commit_target))` for an applied record. Backs
    /// both the blocking API and
    /// [`apply_replicated_nowait`](Self::apply_replicated_nowait), which
    /// lets a follower retire a whole shipped batch on one group.
    pub(crate) fn apply_replicated_inner(
        &self,
        payload: &[u8],
    ) -> Result<Option<(u64, Option<u64>)>> {
        let (key, v) = decode_wal_record(payload)?;
        let seqno = v.seqno;
        // ordering: Acquire — pairs with the AcqRel floor advance in
        // `insert_versioned`; a floor above `seqno` implies the record's
        // earlier apply fully completed.
        if seqno < self.shared.applied_floor.load(Ordering::Acquire) {
            return Ok(None);
        }
        // Reserve the ticket space before the insert: a promotion that
        // lands mid-apply must allocate fresh local seqnos above this
        // record. Reserving is safe precisely because dedupe does not
        // read this counter.
        // ordering: AcqRel — same contract as the `write_entry` ticket
        // RMW.
        self.shared
            .next_seqno
            .fetch_max(seqno + 1, Ordering::AcqRel);
        let incoming = (key.len()
            + v.entry.payload_len()
            + blsm_memtable::Memtable::new().approx_bytes().max(64)) as u64;
        self.pace(incoming)?;
        let _claim = self.claim_admission(incoming);
        let target = self.insert_versioned(key, v)?;
        Ok(Some((seqno, target)))
    }

    /// The WAL's live shippable window `(head, horizon)`: records below
    /// `head` are truncated, records in `[head, horizon)` are readable
    /// for replication catch-up via [`wal_records_from`](Self::wal_records_from).
    /// Under `Durability::Sync` the horizon is the last *synced* group
    /// boundary — an append whose group has not retired must not reach a
    /// follower before it is durable on the leader; otherwise it is the
    /// flushed tail (the pre-group-commit behaviour, where flushed and
    /// synced never diverged on the shipping path).
    ///
    /// # Errors
    ///
    /// Fails on a tree running with durability off (no WAL to ship).
    pub fn wal_window(&self) -> Result<(u64, u64)> {
        let guard = self.shared.wal.lock();
        let wal = guard
            .as_ref()
            .ok_or_else(|| invariant_err("wal_window on a tree without a wal"))?;
        Ok((wal.head_lsn(), ship_horizon(&self.shared.config, wal)))
    }

    /// Reads already-durable WAL records from `start_lsn` for shipping
    /// to a replication follower, returning the records and the LSN the
    /// next read should resume from. The readable window ends at the
    /// [`wal_window`](Self::wal_window) horizon.
    ///
    /// # Errors
    ///
    /// [`StorageError::SnapshotNeeded`] when `start_lsn` predates the
    /// ring's truncation point (the follower is too far behind the log);
    /// see [`blsm_storage::Wal::records_from`] for the full contract.
    pub fn wal_records_from(&self, start_lsn: u64) -> Result<(Vec<blsm_storage::WalRecord>, u64)> {
        let guard = self.shared.wal.lock();
        let wal = guard
            .as_ref()
            .ok_or_else(|| invariant_err("wal_records_from on a tree without a wal"))?;
        let records = wal.records_up_to(start_lsn, ship_horizon(&self.shared.config, wal))?;
        let next = records.last().map_or(start_lsn, |r| {
            r.lsn + blsm_storage::wal::FRAME_HEADER_LEN as u64 + r.payload.len() as u64
        });
        Ok((records, next))
    }

    /// A cloneable handle onto this tree's replication-facing state
    /// (seqno counter + WAL window), for shipper threads that outlive
    /// any borrow of the tree itself.
    pub fn repl_source(&self) -> ReplSource {
        ReplSource {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Appends one record to the WAL and performs the paired `C0` insert
    /// inside the *same* log-mutex critical section. That atomicity is
    /// what makes log truncation safe under concurrency: a log-tail
    /// sample taken under this mutex cleanly partitions records into
    /// "fully inserted into C0 before the sample" and "appended after the
    /// sample" — there is never a record in the log whose C0 insert is
    /// still in flight (see `start_merge01`'s truncation argument).
    ///
    /// Under `Durability::Sync` nothing is flushed or synced here: the
    /// record joins the open commit group (counted under this mutex) and
    /// the returned target — the log tail after this append — is what
    /// the caller hands to `wait_durable`. The group leader's fsync runs
    /// *outside* this mutex, so appends overlap the device sync; that
    /// overlap is the whole batching mechanism (see `commit.rs`).
    fn log_and_insert(&self, key: Bytes, v: Versioned) -> Result<Option<u64>> {
        // Ring full: checkpoint by completing the in-flight pass (which
        // truncates), then retry. Concurrent writers can refill the ring
        // between the checkpoint and the retry, so one retry is not
        // enough under contention — loop while the log is drainable,
        // bounded so a ring too small for even a quiet append still
        // surfaces the error instead of spinning. The lock must drop
        // around the checkpoint — it takes `merge` then `wal` (lock
        // order).
        const MAX_FULL_RETRIES: u32 = 8;
        let payload = encode_wal_record(&key, &v);
        let mut guard = self.shared.wal.lock();
        let mut attempts = 0;
        loop {
            match guard
                .as_mut()
                .ok_or_else(|| invariant_err("durable tree lost its wal"))?
                .append(&payload)
            {
                Ok(_) => break,
                Err(e @ StorageError::OutOfSpace { .. }) => {
                    if attempts >= MAX_FULL_RETRIES {
                        return Err(e);
                    }
                    attempts += 1;
                    drop(guard);
                    self.checkpoint()?;
                    guard = self.shared.wal.lock();
                }
                Err(e) => return Err(e),
            }
        }
        let wal = guard
            .as_mut()
            .ok_or_else(|| invariant_err("wal vanished after append"))?;
        let target = match self.shared.config.durability {
            Durability::Buffered => {
                wal.flush()?;
                None
            }
            Durability::Sync => {
                // Join the open commit group: counted under the wal
                // mutex, so the leader's flush-time swap reads exactly
                // the appends its flush covered (see `catalog.rs`).
                // ordering: AcqRel RMWs under the wal mutex — group
                // bookkeeping, not a synchronization edge.
                self.shared.unsynced_writes.fetch_add(1, Ordering::AcqRel);
                self.shared.unsynced_bytes.fetch_add(
                    blsm_storage::wal::FRAME_HEADER_LEN as u64 + payload.len() as u64,
                    Ordering::AcqRel,
                );
                Some(wal.tail_lsn())
            }
            Durability::None => None,
        };
        self.shared.c0.insert(key, v, self.shared.op.as_ref());
        Ok(target)
    }

    // -----------------------------------------------------------------
    // Read path (delegates to the shared, lock-free implementation)
    // -----------------------------------------------------------------

    /// Point lookup. Walks components newest→oldest, consults a Bloom
    /// filter before every disk probe, folds deltas, and stops at the
    /// first base record (§3.1, §3.1.1).
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        self.shared.get(key)
    }

    /// Ordered scan: up to `limit` live rows with key ≥ `from`.
    /// Touches every component once (§3.3's two/three-seek scans).
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        self.shared.scan(from, None, limit)
    }

    /// Ordered scan of `[from, to)`, up to `limit` rows.
    pub fn scan_range(&self, from: &[u8], to: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        self.shared.scan(from, Some(to), limit)
    }

    // -----------------------------------------------------------------
    // Merge pacing
    // -----------------------------------------------------------------

    pub(crate) fn sched_inputs(&self, m: &MergeState, incoming: u64) -> SchedInputs {
        let catalog = self.shared.catalog.load();
        let c0 = &self.shared.c0;
        let filling = match c0.pass_mode() {
            PassMode::Frozen | PassMode::Snowshovel => c0.behind_bytes() as u64,
            PassMode::Idle => c0.approx_bytes() as u64,
        };
        SchedInputs {
            c0_bytes: if self.shared.config.snowshovel {
                c0.approx_bytes() as u64
            } else {
                filling
            },
            c0_fill: self.shared.config.c0_fill_bytes() as u64,
            c0_cap: self.shared.config.mem_budget as u64,
            incoming,
            m01: m.merge01.as_ref().map(|mm| MergeProgress {
                bytes_read: c0.drained_bytes() as u64 + mm.c1_consumed.load(Ordering::Relaxed),
                input_total: mm.input_total,
            }),
            m01_c0_input: m.merge01.as_ref().map_or(1, |mm| mm.c0_input.max(1)),
            m12: m.merge12.as_ref().map(|mm| MergeProgress {
                bytes_read: mm.consumed.load(Ordering::Relaxed),
                input_total: mm.input_total,
            }),
            c1_bytes: catalog.c1.as_ref().map_or(0, |c| c.data_bytes()),
            r_ceil: m.r.ceil() as u64,
        }
    }

    /// Pre-write pacing: start merges, run planned work, enforce the hard
    /// cap. This is where the paper's write-latency bound comes from.
    ///
    /// Planned quanta are *opportunistic*: the merge state is try-locked,
    /// and a writer that loses the race simply skips — whoever holds the
    /// state (the merge thread, or a sibling writer) is running the very
    /// quantum this one would have. Only the hard cap blocks.
    fn pace(&self, incoming: u64) -> Result<()> {
        if !self.shared.config.external_pacing {
            if let Some(mut m) = self.merge.try_lock() {
                let mut ran_quantum = false;
                let c0_has_data = m.merge01.is_none() && !self.shared.c0.is_empty();
                if c0_has_data
                    && m.scheduler
                        .should_start_merge01(&self.sched_inputs(&m, incoming))
                {
                    self.start_merge01_locked(&mut m)?;
                }

                let inputs = self.sched_inputs(&m, incoming);
                let plan = m.scheduler.plan(&inputs);
                if plan.merge01_bytes > 0 {
                    self.run_merge01_locked(
                        &mut m,
                        plan.merge01_bytes.min(self.shared.config.work_quantum),
                    )?;
                    ran_quantum = true;
                }
                if plan.merge12_bytes > 0 {
                    self.run_merge12_locked(
                        &mut m,
                        plan.merge12_bytes.min(self.shared.config.work_quantum),
                    )?;
                    ran_quantum = true;
                }
                self.quantum_boundary_check(&mut m, ran_quantum)?;
            }
        }

        // Hard cap: C0 must never exceed the memory budget. A paced
        // scheduler rarely lands here; the naive scheduler lives here.
        // This path *blocks* on the merge state: when the buffer is full
        // the writer must wait for (or perform) drain work.
        let mut stalled = false;
        while self.shared.c0.approx_bytes() as u64 + incoming > self.shared.config.mem_budget as u64
        {
            if !stalled {
                stats::bump(&self.shared.stats.forced_stalls, 1);
                stalled = true;
            }
            let mut m = self.merge.lock();
            // Re-check under the lock: the holder we waited behind may
            // have drained below the cap already.
            if self.shared.c0.approx_bytes() as u64 + incoming
                <= self.shared.config.mem_budget as u64
            {
                break;
            }
            if m.merge01.is_none() {
                if self.shared.c0.is_empty() {
                    break;
                }
                self.start_merge01_locked(&mut m)?;
            }
            self.run_merge01_locked(&mut m, self.shared.config.work_quantum.max(1 << 20))?;
            self.quantum_boundary_check(&mut m, true)?;
        }
        Ok(())
    }

    /// Estimates a generous region for a merge output. Leaf packing can
    /// waste up to half a page when entries are large (a leaf seals when
    /// the next entry does not fit), so data pages are budgeted at a 50%
    /// worst-case fill; the unused tail is freed after the merge.
    pub(crate) fn merge_region_pages(est_bytes: u64, est_entries: u64, factor: f64) -> u64 {
        let payload = PAGE_PAYLOAD_LEN as u64;
        let encoded = est_bytes + est_entries * 24;
        let data_pages = (encoded as f64 * factor * 2.0 / payload as f64).ceil() as u64 + 8;
        let index_pages = ((est_entries as f64 * factor) as u64) / 32 + 4;
        let bloom_pages = ((est_entries as f64 * factor) as u64 * 2) / payload + 4;
        data_pages + index_pages + bloom_pages + 16
    }

    pub(crate) fn recompute_r(&self, m: &mut MergeState) {
        if let Some(r) = self.shared.config.r {
            m.r = r;
            return;
        }
        // R = sqrt(|data| / |C0|), the three-level optimum (§2.3.1).
        let data = self.total_data_bytes().max(1) as f64;
        let c0 = self.shared.config.mem_budget as f64;
        m.r = (data / c0).sqrt().max(2.0);
    }

    pub(crate) fn save_manifest(&self, m: &mut MergeState) -> Result<()> {
        let catalog = self.shared.catalog.load();
        let mut components = Vec::new();
        if let Some(c) = &catalog.c1 {
            components.push((ComponentSlot::C1, c.region()));
        }
        if let Some(c) = &catalog.c1_prime {
            components.push((ComponentSlot::C1Prime, c.region()));
        }
        if let Some(c) = &catalog.c2 {
            components.push((ComponentSlot::C2, c.region()));
        }
        let meta = TreeMeta {
            components,
            allocator: m.allocator.clone(),
            // Still-pinned retired regions ride along so a reopen can
            // reclaim them (the in-memory retired list dies with us).
            retired: m.retired.iter().map(|r| r.region).collect(),
            wal_head: self.shared.wal.lock().as_ref().map_or(0, Wal::head_lsn),
            // ordering: Acquire — pairs with the AcqRel tickets; a
            // point-in-time floor is all recovery needs, any seqno
            // claimed later is re-derived from replay.
            next_seqno: self.shared.next_seqno.load(Ordering::Acquire),
        };
        m.manifest.save(&meta.encode())
    }

    // -----------------------------------------------------------------
    // Maintenance
    // -----------------------------------------------------------------

    /// Runs up to `budget` input bytes of pending merge work on each
    /// level. Lets callers drive merges during idle periods (§3.2's
    /// "merges can be run during off-peak periods"). Blocks on the merge
    /// state (this is the background thread's entry point).
    pub fn maintenance(&self, budget: u64) -> Result<()> {
        let mut m = self.merge.lock();
        let c0_has_data = m.merge01.is_none() && !self.shared.c0.is_empty();
        if c0_has_data && m.scheduler.should_start_merge01(&self.sched_inputs(&m, 0)) {
            self.start_merge01_locked(&mut m)?;
        }
        let ran_quantum = m.merge01.is_some() || m.merge12.is_some();
        self.run_merge01_locked(&mut m, budget)?;
        self.run_merge12_locked(&mut m, budget)?;
        self.reap_retired_locked(&mut m);
        self.quantum_boundary_check(&mut m, ran_quantum)
    }

    /// Drains `C0` and completes every pending merge, then truncates the
    /// log. Used before read-only measurement phases and at clean
    /// shutdown. Concurrent writers are admitted throughout; the final
    /// truncation is skipped if any of their effects are not yet durable.
    pub fn checkpoint(&self) -> Result<()> {
        {
            let mut m = self.merge.lock();
            loop {
                if m.merge01.is_some() {
                    self.run_merge01_locked(&mut m, u64::MAX)?;
                }
                if m.merge12.is_some() {
                    self.run_merge12_locked(&mut m, u64::MAX)?;
                }
                if m.merge01.is_some() || m.merge12.is_some() {
                    continue;
                }
                if !self.shared.c0.is_empty() {
                    self.start_merge01_locked(&mut m)?;
                    continue;
                }
                break;
            }
            self.quantum_boundary_check(&mut m, true)?;
            // Released before the log flush: the merge plane need not
            // stall on checkpoint I/O, and truncation safety below never
            // depended on it.
        }
        {
            let mut guard = self.shared.wal.lock();
            if let Some(wal) = guard.as_mut() {
                wal.flush()?;
                // Full truncation is safe only at quiescence. Appends and
                // their C0 inserts are atomic under this mutex, so an
                // empty C0 observed here proves every logged record's
                // effect reached the disk components; a record that
                // landed after the final pass above leaves C0 non-empty
                // and keeps the whole live window (the next clean pass
                // truncates it).
                if self.shared.c0.is_empty() {
                    let tail = wal.tail_lsn();
                    wal.truncate(tail);
                }
            }
        }
        {
            let mut m = self.merge.lock();
            self.save_manifest(&mut m)?;
            self.reap_retired_locked(&mut m);
        }
        self.shared.pool.flush()
    }

    // -----------------------------------------------------------------
    // Strict invariants (feature `strict-invariants`)
    // -----------------------------------------------------------------

    /// Verifies the paper's structural invariants in one sweep:
    ///
    /// * every on-disk component keeps its keys in strictly ascending
    ///   order and its Bloom filter never denies a stored key (§4.4.3
    ///   tolerates false positives, never false negatives) — checked on
    ///   sampled leaves, rotating coverage across calls;
    /// * the §4.1 progress estimators `inprogress`/`outprogress` stay
    ///   inside `[0, 1]`;
    /// * `C0` never exceeds the memory budget (§3.1 hard cap) beyond the
    ///   small transient overshoot concurrent admission permits;
    /// * the snowshovel drain cursor is monotone within a pass (§4.2).
    ///
    /// Called at every merge-quantum boundary when the feature is on —
    /// which includes every catalog swap, since swaps happen inside merge
    /// quanta — and directly from property tests.
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::Corruption`] naming the first violated
    /// invariant, or propagates device errors from sampled leaf reads.
    #[cfg(feature = "strict-invariants")]
    pub fn check_invariants(&self) -> Result<()> {
        let mut m = self.merge.lock();
        self.check_invariants_locked(&mut m)
    }

    #[cfg(feature = "strict-invariants")]
    pub(crate) fn check_invariants_locked(&self, m: &mut MergeState) -> Result<()> {
        fn violated(what: String) -> StorageError {
            StorageError::corruption(
                blsm_storage::ComponentId::Tree,
                None,
                format!("strict invariant violated: {what}"),
            )
        }

        // C0 hard cap (§3.1): pacing must never let the write buffer
        // outgrow its budget. Concurrent writers are each admitted
        // against the cap *before* inserting, so the buffer can
        // legitimately overshoot by up to the *peak* bytes ever admitted
        // but uninserted at once (the overshoot persists in C0 after the
        // writers land, until a pass drains it). `admitted_peak` measures
        // exactly that, so the slack scales with the writers actually
        // observed in flight (N × entry size) instead of a fixed constant
        // a large fleet or large values could exceed — while a broken
        // pacer admitting serially past the budget still trips the check.
        // The small base covers replay-time inserts that bypass pacing.
        let c0_bytes = self.c0_bytes();
        let slack = (64 << 10) + self.shared.admitted_peak.load(Ordering::Acquire);
        if c0_bytes > self.shared.config.mem_budget + slack {
            return Err(violated(format!(
                "C0 holds {c0_bytes} bytes, budget is {} (+{slack} admission slack)",
                self.shared.config.mem_budget
            )));
        }

        // Progress estimators (§4.1) stay in [0, 1].
        let inputs = self.sched_inputs(m, 0);
        for (name, p) in [("merge01", inputs.m01), ("merge12", inputs.m12)] {
            let Some(p) = p else { continue };
            let inp = p.inprogress();
            if !inp.is_finite() || !(0.0..=1.0).contains(&inp) {
                return Err(violated(format!("{name} inprogress {inp} outside [0, 1]")));
            }
            let outp =
                crate::progress::outprogress(inp, inputs.c1_bytes, inputs.c0_cap, inputs.r_ceil);
            if !outp.is_finite() || !(0.0..=1.0).contains(&outp) {
                return Err(violated(format!(
                    "{name} outprogress {outp} outside [0, 1]"
                )));
            }
        }

        // Snowshovel cursor monotonicity (§4.2): within a pass the drain
        // cursor only advances. A completed pass (merges01 bumped) resets
        // it legitimately.
        let merges01 = self.stats().merges01;
        if merges01 != m.strict.last_merges01 {
            m.strict.last_merges01 = merges01;
            m.strict.last_cursor = None;
        }
        let pass_cursor = match self.shared.c0.pass_kind() {
            blsm_memtable::PassKind::Snowshovel { last_drained } => Some(last_drained),
            _ => None,
        };
        if let Some(last_drained) = pass_cursor {
            match (&m.strict.last_cursor, &last_drained) {
                (Some(prev), Some(cur)) if cur < prev => {
                    return Err(violated(format!(
                        "snowshovel cursor moved backwards: {cur:?} < {prev:?}"
                    )));
                }
                (Some(prev), None) => {
                    return Err(violated(format!(
                        "snowshovel cursor vanished mid-pass (was {prev:?})"
                    )));
                }
                _ => {}
            }
            m.strict.last_cursor = last_drained;
        } else {
            m.strict.last_cursor = None;
        }

        // Component ordering + bloom agreement, on rotating leaf samples.
        m.strict.rotation = m.strict.rotation.wrapping_add(1);
        let rotation = m.strict.rotation;
        let catalog = self.shared.catalog.load();
        for (name, comp) in [
            ("C1", &catalog.c1),
            ("C1'", &catalog.c1_prime),
            ("C2", &catalog.c2),
        ] {
            let Some(table) = comp else { continue };
            table.verify_integrity(2, rotation).map_err(|e| match e {
                StorageError::Corruption { detail, .. } => violated(format!("{name}: {detail}")),
                other => other,
            })?;
        }
        Ok(())
    }

    /// Merge-quantum boundary hook: a full [`check_invariants`] sweep when
    /// the `strict-invariants` feature is on and merge work actually ran.
    ///
    /// [`check_invariants`]: Self::check_invariants
    #[cfg(feature = "strict-invariants")]
    pub(crate) fn quantum_boundary_check(
        &self,
        m: &mut MergeState,
        ran_quantum: bool,
    ) -> Result<()> {
        if ran_quantum {
            self.check_invariants_locked(m)
        } else {
            Ok(())
        }
    }

    /// No-op without `strict-invariants`; compiles away entirely.
    #[cfg(not(feature = "strict-invariants"))]
    #[inline(always)]
    #[allow(clippy::unnecessary_wraps)]
    pub(crate) fn quantum_boundary_check(&self, _m: &mut MergeState, _ran: bool) -> Result<()> {
        Ok(())
    }

    /// Number of live on-disk components (for tests and experiments).
    pub fn component_count(&self) -> usize {
        self.shared.catalog.load().tables().count()
    }

    /// Whether a `C0:C1` (resp. `C1':C2`) merge is currently in flight.
    pub fn merges_active(&self) -> (bool, bool) {
        let m = self.merge.lock();
        (m.merge01.is_some(), m.merge12.is_some())
    }

    /// Starts a `C0:C1` pass by hand (mid-pass race tests).
    #[cfg(test)]
    pub(crate) fn start_merge01(&self) -> Result<()> {
        let mut m = self.merge.lock();
        self.start_merge01_locked(&mut m)
    }

    /// Runs up to `budget` bytes of `C0:C1` work by hand (mid-pass race
    /// tests).
    #[cfg(test)]
    pub(crate) fn run_merge01(&self, budget: u64) -> Result<()> {
        let mut m = self.merge.lock();
        self.run_merge01_locked(&mut m, budget)
    }
}

use crate::progress::MergeProgress;

/// RAII release of a writer's admitted-but-uninserted byte claim (see
/// `TreeShared::admitted_inflight`): dropping it — on completion or on
/// any error path between admission and the `C0` insert — returns the
/// bytes to the pool the strict-invariants cap check measures.
struct AdmissionClaim<'a> {
    // ordering: AcqRel `fetch_sub` on drop — releases the claim taken by
    // the paired `fetch_add`; see `TreeShared::admitted_inflight`.
    inflight: &'a AtomicUsize,
    bytes: usize,
}

impl Drop for AdmissionClaim<'_> {
    fn drop(&mut self) {
        // ordering: AcqRel — see `TreeShared::admitted_inflight`.
        self.inflight.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

/// A cloneable, thread-safe handle onto one tree's replication-facing
/// state: the seqno ticket counter and the WAL's durable window. A
/// leader's shipper threads hold one of these (an `Arc` of the tree's
/// shared state, not a borrow), so shipping outlives any particular
/// borrow of the engine and adds **no locks** beyond the tree's own
/// `wal` mutex, taken with nothing held.
#[derive(Clone)]
pub struct ReplSource {
    shared: Arc<TreeShared>,
}

impl std::fmt::Debug for ReplSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplSource").finish_non_exhaustive()
    }
}

impl ReplSource {
    /// The next seqno the tree would allocate (see [`BLsmTree::next_seqno`]).
    pub fn next_seqno(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel ticket allocation in
        // `write_entry`; see the field docs in `catalog.rs`.
        self.shared.next_seqno.load(Ordering::Acquire)
    }

    /// The highest seqno this node has fully applied — the horizon
    /// replication acks and failover elections compare (see
    /// [`BLsmTree::applied_seqno`]).
    pub fn applied_seqno(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel floor advance in
        // `insert_versioned`; see the field docs in `catalog.rs`.
        self.shared
            .applied_floor
            .load(Ordering::Acquire)
            .saturating_sub(1)
    }

    /// The WAL's live shippable window `(head, horizon)` (see
    /// [`BLsmTree::wal_window`] — under group commit the horizon is the
    /// last synced group boundary).
    ///
    /// # Errors
    ///
    /// Fails on a tree running with durability off.
    pub fn wal_window(&self) -> Result<(u64, u64)> {
        let guard = self.shared.wal.lock();
        let wal = guard
            .as_ref()
            .ok_or_else(|| invariant_err("wal_window on a tree without a wal"))?;
        Ok((wal.head_lsn(), ship_horizon(&self.shared.config, wal)))
    }

    /// Already-durable WAL records from `start_lsn`, plus the resume
    /// LSN — the shipping read (see [`BLsmTree::wal_records_from`]).
    ///
    /// # Errors
    ///
    /// [`StorageError::SnapshotNeeded`] when `start_lsn` was truncated
    /// away; corruption/format errors per [`blsm_storage::Wal::records_from`].
    pub fn wal_records_from(&self, start_lsn: u64) -> Result<(Vec<blsm_storage::WalRecord>, u64)> {
        let guard = self.shared.wal.lock();
        let wal = guard
            .as_ref()
            .ok_or_else(|| invariant_err("wal_records_from on a tree without a wal"))?;
        let records = wal.records_up_to(start_lsn, ship_horizon(&self.shared.config, wal))?;
        let next = records.last().map_or(start_lsn, |r| {
            r.lsn + blsm_storage::wal::FRAME_HEADER_LEN as u64 + r.payload.len() as u64
        });
        Ok((records, next))
    }
}

/// The LSN horizon replication may ship up to: under `Durability::Sync`
/// the last synced group boundary (a record must be durable *here*
/// before a follower can ack it elsewhere), otherwise the flushed tail —
/// the historical behaviour, where the shipping path never saw the two
/// watermarks diverge.
fn ship_horizon(config: &BLsmConfig, wal: &Wal) -> u64 {
    if config.durability == Durability::Sync {
        wal.synced_lsn()
    } else {
        wal.flushed_lsn()
    }
}

/// Surfaces a violated internal invariant as a recoverable error instead
/// of a panic; callers of the public API see `StorageError::Corruption`.
pub(crate) fn invariant_err(what: &str) -> StorageError {
    StorageError::corruption(
        blsm_storage::ComponentId::Tree,
        None,
        format!("internal invariant violated: {what}"),
    )
}

/// WAL record: `kind(1) | varint seqno | varint keylen | key | value`.
fn encode_wal_record(key: &Bytes, v: &Versioned) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + key.len() + v.entry.payload_len());
    let kind = match &v.entry {
        Entry::Put(_) => 0u8,
        Entry::Delta(_) => 1,
        Entry::Tombstone => 2,
    };
    codec::put_u8(&mut out, kind);
    codec::put_varint(&mut out, v.seqno);
    codec::put_bytes(&mut out, key);
    match &v.entry {
        Entry::Put(val) | Entry::Delta(val) => out.extend_from_slice(val),
        Entry::Tombstone => {}
    }
    out
}

fn decode_wal_record(payload: &[u8]) -> Result<(Bytes, Versioned)> {
    let mut r = Reader::new(payload);
    let kind = r.u8()?;
    let seqno = r.varint()?;
    let key = Bytes::copy_from_slice(r.bytes()?);
    let rest = &payload[r.position()..];
    let entry = match kind {
        0 => Entry::Put(Bytes::copy_from_slice(rest)),
        1 => Entry::Delta(Bytes::copy_from_slice(rest)),
        2 => Entry::Tombstone,
        other => {
            return Err(StorageError::InvalidFormat(format!(
                "bad wal record kind {other}"
            )))
        }
    };
    Ok((key, Versioned { seqno, entry }))
}

// Keep PAGE_SIZE import alive for region math readability.
const _: usize = PAGE_SIZE;
#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::config::SchedulerKind;
    use blsm_memtable::AppendOperator;
    use blsm_storage::MemDevice;

    fn new_tree(config: BLsmConfig) -> BLsmTree {
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        BLsmTree::open(data, wal, 4096, config, Arc::new(AppendOperator)).unwrap()
    }

    fn small_config() -> BLsmConfig {
        BLsmConfig {
            mem_budget: 64 << 10,
            wal_capacity: 4 << 20,
            ..Default::default()
        }
    }

    fn key(i: u32) -> Bytes {
        Bytes::from(format!("user{i:08}"))
    }

    #[test]
    fn put_get_roundtrip_through_merges() {
        let t = new_tree(small_config());
        let n = 4000u32;
        for i in 0..n {
            t.put(key(i), Bytes::from(vec![i as u8; 100])).unwrap();
        }
        // Data far exceeds the 64 KiB budget: merges must have run.
        assert!(t.stats().merges01 > 0);
        for i in (0..n).step_by(97) {
            let v = t.get(&key(i)).unwrap().expect("present");
            assert_eq!(v.as_ref(), &vec![i as u8; 100][..], "key {i}");
        }
        assert!(t.get(b"user99999999").unwrap().is_none());
    }

    #[test]
    fn overwrites_return_newest() {
        let t = new_tree(small_config());
        for round in 0..5u8 {
            for i in 0..500u32 {
                t.put(key(i), Bytes::from(vec![round; 50])).unwrap();
            }
        }
        for i in (0..500u32).step_by(41) {
            let v = t.get(&key(i)).unwrap().expect("present");
            assert_eq!(v.as_ref(), &[4u8; 50][..]);
        }
    }

    #[test]
    fn delete_hides_key_everywhere() {
        let t = new_tree(small_config());
        for i in 0..2000u32 {
            t.put(key(i), Bytes::from_static(b"v")).unwrap();
        }
        t.checkpoint().unwrap(); // push everything to disk
        t.delete(key(100)).unwrap();
        assert!(t.get(&key(100)).unwrap().is_none());
        t.checkpoint().unwrap(); // tombstone merged to the bottom
        assert!(t.get(&key(100)).unwrap().is_none());
        assert!(t.get(&key(101)).unwrap().is_some());
    }

    #[test]
    fn deltas_fold_across_levels() {
        let t = new_tree(small_config());
        t.put(key(1), Bytes::from_static(b"base")).unwrap();
        t.checkpoint().unwrap();
        t.apply_delta(key(1), Bytes::from_static(b"+d1")).unwrap();
        t.checkpoint().unwrap();
        t.apply_delta(key(1), Bytes::from_static(b"+d2")).unwrap();
        let v = t.get(&key(1)).unwrap().unwrap();
        assert_eq!(v.as_ref(), b"base+d1+d2");
    }

    #[test]
    fn orphan_delta_materializes() {
        let t = new_tree(small_config());
        t.apply_delta(key(7), Bytes::from_static(b"solo")).unwrap();
        assert_eq!(t.get(&key(7)).unwrap().unwrap().as_ref(), b"solo");
        t.checkpoint().unwrap();
        assert_eq!(t.get(&key(7)).unwrap().unwrap().as_ref(), b"solo");
    }

    #[test]
    fn insert_if_not_exists_semantics() {
        let t = new_tree(small_config());
        assert!(t
            .insert_if_not_exists(key(1), Bytes::from_static(b"a"))
            .unwrap());
        assert!(!t
            .insert_if_not_exists(key(1), Bytes::from_static(b"b"))
            .unwrap());
        assert_eq!(t.get(&key(1)).unwrap().unwrap().as_ref(), b"a");
        t.checkpoint().unwrap();
        assert!(!t
            .insert_if_not_exists(key(1), Bytes::from_static(b"c"))
            .unwrap());
        t.delete(key(1)).unwrap();
        assert!(t
            .insert_if_not_exists(key(1), Bytes::from_static(b"d"))
            .unwrap());
        assert_eq!(t.get(&key(1)).unwrap().unwrap().as_ref(), b"d");
    }

    #[test]
    fn scans_are_ordered_and_complete() {
        let t = new_tree(small_config());
        for i in 0..3000u32 {
            t.put(key(i), Bytes::from(format!("v{i}"))).unwrap();
        }
        // Mid-merge scan (merges are likely in flight right now).
        let items = t.scan(&key(500), 100).unwrap();
        assert_eq!(items.len(), 100);
        assert_eq!(items[0].key, key(500));
        assert!(items.windows(2).all(|w| w[0].key < w[1].key));
        for (j, item) in items.iter().enumerate() {
            assert_eq!(item.key, key(500 + j as u32));
            assert_eq!(item.value, Bytes::from(format!("v{}", 500 + j as u32)));
        }
        // Range scan excludes the upper bound.
        let items = t.scan_range(&key(10), &key(13), 100).unwrap();
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn scan_skips_deleted_rows() {
        let t = new_tree(small_config());
        for i in 0..100u32 {
            t.put(key(i), Bytes::from_static(b"v")).unwrap();
        }
        t.delete(key(5)).unwrap();
        let items = t.scan(&key(4), 3).unwrap();
        let keys: Vec<_> = items.iter().map(|i| i.key.clone()).collect();
        assert_eq!(keys, vec![key(4), key(6), key(7)]);
    }

    #[test]
    fn read_modify_write() {
        let t = new_tree(small_config());
        t.put(key(1), Bytes::from_static(b"1")).unwrap();
        t.read_modify_write(key(1), |old| {
            let mut v = old.unwrap().to_vec();
            v.push(b'2');
            Some(v)
        })
        .unwrap();
        assert_eq!(t.get(&key(1)).unwrap().unwrap().as_ref(), b"12");
        // RMW returning None deletes.
        t.read_modify_write(key(1), |_| None).unwrap();
        assert!(t.get(&key(1)).unwrap().is_none());
    }

    #[test]
    fn recovery_restores_acknowledged_writes() {
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        {
            let t = BLsmTree::open(
                data.clone(),
                wal.clone(),
                4096,
                small_config(),
                Arc::new(AppendOperator),
            )
            .unwrap();
            for i in 0..3000u32 {
                t.put(key(i), Bytes::from(format!("val{i}"))).unwrap();
            }
            // No checkpoint, no clean shutdown: crash.
        }
        let t = BLsmTree::open(data, wal, 4096, small_config(), Arc::new(AppendOperator)).unwrap();
        for i in (0..3000u32).step_by(53) {
            let v = t
                .get(&key(i))
                .unwrap()
                .unwrap_or_else(|| panic!("key {i} lost"));
            assert_eq!(v.as_ref(), format!("val{i}").as_bytes());
        }
    }

    #[test]
    fn recovery_replay_is_exactly_once_for_deltas() {
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        {
            let t = BLsmTree::open(
                data.clone(),
                wal.clone(),
                4096,
                small_config(),
                Arc::new(AppendOperator),
            )
            .unwrap();
            t.put(key(1), Bytes::from_static(b"base")).unwrap();
            t.apply_delta(key(1), Bytes::from_static(b"+d")).unwrap();
            // Push the delta into C1 but leave the log un-truncated by
            // writing more (the pass consumed the delta; newer writes keep
            // the window open).
            t.checkpoint().unwrap();
            for i in 10..500u32 {
                t.put(key(i), Bytes::from_static(b"x")).unwrap();
            }
        }
        let t = BLsmTree::open(data, wal, 4096, small_config(), Arc::new(AppendOperator)).unwrap();
        // A double-applied delta would read "base+d+d".
        assert_eq!(t.get(&key(1)).unwrap().unwrap().as_ref(), b"base+d");
    }

    #[test]
    fn degraded_durability_loses_c0_only() {
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        let config = BLsmConfig {
            durability: Durability::None,
            ..small_config()
        };
        {
            let t = BLsmTree::open(
                data.clone(),
                wal.clone(),
                4096,
                config.clone(),
                Arc::new(AppendOperator),
            )
            .unwrap();
            t.put(key(1), Bytes::from_static(b"old")).unwrap();
            t.checkpoint().unwrap(); // durable point
            t.put(key(2), Bytes::from_static(b"new")).unwrap(); // lost
        }
        let t = BLsmTree::open(data, wal, 4096, config, Arc::new(AppendOperator)).unwrap();
        assert_eq!(t.get(&key(1)).unwrap().unwrap().as_ref(), b"old");
        assert!(
            t.get(&key(2)).unwrap().is_none(),
            "unlogged write must be lost"
        );
    }

    #[test]
    fn bloom_filters_skip_absent_probes() {
        let t = new_tree(small_config());
        for i in 0..2000u32 {
            t.put(key(i), Bytes::from(vec![0u8; 100])).unwrap();
        }
        t.checkpoint().unwrap();
        let before = t.stats();
        for i in 0..1000u32 {
            assert!(t.get(format!("user{i:08}x").as_bytes()).unwrap().is_none());
        }
        let d = t.stats();
        let probes = d.disk_probes - before.disk_probes;
        assert!(probes < 60, "absent lookups probed disk {probes} times");
        assert!(d.bloom_skips > before.bloom_skips);
    }

    #[test]
    fn three_components_max() {
        // §3.3: bLSM bounds the tree at three on-disk components.
        let t = new_tree(small_config());
        for i in 0..30_000u32 {
            t.put(key(i % 7000), Bytes::from(vec![0u8; 64])).unwrap();
            assert!(t.component_count() <= 3, "component count exploded");
        }
    }

    #[test]
    fn checkpoint_then_reads_need_no_wal() {
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        {
            let t = BLsmTree::open(
                data.clone(),
                wal.clone(),
                4096,
                small_config(),
                Arc::new(AppendOperator),
            )
            .unwrap();
            for i in 0..1000u32 {
                t.put(key(i), Bytes::from_static(b"v")).unwrap();
            }
            t.checkpoint().unwrap();
        }
        // Wipe the WAL: a checkpointed tree must not need it.
        let fresh_wal: SharedDevice = Arc::new(MemDevice::new());
        let t = BLsmTree::open(
            data,
            fresh_wal,
            4096,
            small_config(),
            Arc::new(AppendOperator),
        )
        .unwrap();
        assert_eq!(t.get(&key(999)).unwrap().unwrap().as_ref(), b"v");
    }

    #[test]
    fn naive_scheduler_correctness() {
        let config = BLsmConfig {
            scheduler: SchedulerKind::Naive,
            ..small_config()
        };
        let t = new_tree(config);
        for i in 0..5000u32 {
            t.put(key(i), Bytes::from(vec![1u8; 80])).unwrap();
        }
        for i in (0..5000u32).step_by(211) {
            assert!(t.get(&key(i)).unwrap().is_some(), "key {i}");
        }
        assert!(t.stats().forced_stalls > 0, "naive must stall");
    }

    #[test]
    fn gear_scheduler_correctness() {
        let config = BLsmConfig {
            scheduler: SchedulerKind::Gear,
            ..small_config()
        };
        let t = new_tree(config);
        assert!(!t.config().snowshovel, "gear partitions C0/C0'");
        for i in 0..5000u32 {
            t.put(key(i % 1500), Bytes::from(vec![2u8; 80])).unwrap();
        }
        for i in (0..1500u32).step_by(97) {
            assert_eq!(t.get(&key(i)).unwrap().unwrap().as_ref(), &[2u8; 80][..]);
        }
    }

    #[test]
    fn sorted_inserts_stream_through() {
        // §4.2: sorted input should flow to disk in long runs; C0 stays
        // bounded and write amplification stays low.
        let t = new_tree(small_config());
        for i in 0..20_000u32 {
            t.put(key(i), Bytes::from(vec![3u8; 64])).unwrap();
        }
        assert!(t.c0_bytes() <= t.config().mem_budget);
        for i in (0..20_000u32).step_by(997) {
            assert!(t.get(&key(i)).unwrap().is_some());
        }
    }

    #[test]
    fn reverse_sorted_inserts_still_correct() {
        let t = new_tree(small_config());
        for i in (0..8000u32).rev() {
            t.put(key(i), Bytes::from(vec![4u8; 64])).unwrap();
        }
        for i in (0..8000u32).step_by(503) {
            assert!(t.get(&key(i)).unwrap().is_some(), "key {i}");
        }
    }

    #[test]
    fn wal_record_roundtrip() {
        for v in [
            Versioned::put(9, Bytes::from_static(b"value")),
            Versioned::delta(10, Bytes::from_static(b"+1")),
            Versioned::tombstone(11),
        ] {
            let enc = encode_wal_record(&Bytes::from_static(b"k"), &v);
            let (k, d) = decode_wal_record(&enc).unwrap();
            assert_eq!(k.as_ref(), b"k");
            assert_eq!(d, v);
        }
    }

    #[test]
    fn read_view_sees_writes_and_survives_merges() {
        let t = new_tree(small_config());
        let view = t.read_view();
        for i in 0..4000u32 {
            t.put(key(i), Bytes::from(vec![i as u8; 100])).unwrap();
        }
        assert!(t.stats().merges01 > 0, "merges must have run");
        // The view, created before any write, sees everything — it pins
        // per-operation snapshots, not a point-in-time one.
        for i in (0..4000u32).step_by(131) {
            let v = view.get(&key(i)).unwrap().expect("present via view");
            assert_eq!(v.as_ref(), &vec![i as u8; 100][..]);
        }
        let items = view.scan(&key(100), 10).unwrap();
        assert_eq!(items.len(), 10);
        assert_eq!(items[0].key, key(100));
        assert_eq!(view.stats().gets, t.stats().gets);
    }

    #[test]
    fn reads_consistent_mid_merge_pass() {
        // Stop a merge pass in the middle (small quanta via maintenance)
        // and verify every key is readable: some live in the old C1 (not
        // yet rotated out), some in the retained C0 copies, some ahead of
        // the drain cursor.
        let config = BLsmConfig {
            external_pacing: true, // no inline pacing: we drive quanta
            ..small_config()
        };
        let t = new_tree(config);
        for i in 0..800u32 {
            t.put(key(i), Bytes::from(vec![7u8; 40])).unwrap();
        }
        t.checkpoint().unwrap(); // everything into C1
        for i in 0..800u32 {
            t.put(key(i), Bytes::from(vec![8u8; 40])).unwrap(); // fresher C0
        }
        t.start_merge01().unwrap();
        t.run_merge01(2_000).unwrap(); // a sliver of the pass
        assert!(t.merges_active().0, "merge must still be in flight");
        let view = t.read_view();
        for i in (0..800u32).step_by(37) {
            let v = view.get(&key(i)).unwrap().expect("present mid-merge");
            assert_eq!(v.as_ref(), &[8u8; 40][..], "key {i} must be the new value");
        }
        // Scans mid-pass see each key exactly once, newest version.
        let items = view.scan(&key(0), 800).unwrap();
        assert_eq!(items.len(), 800);
        assert!(items.iter().all(|it| it.value.as_ref() == [8u8; 40]));
        t.checkpoint().unwrap();
    }

    #[test]
    fn retired_regions_pinned_at_shutdown_are_reclaimed_on_reopen() {
        // A reader pinning an old catalog across the final checkpoint
        // keeps the replaced component's region allocated; the manifest
        // records it as retired so reopen reclaims it instead of leaking
        // it on disk forever.
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        let pinned;
        let retired_pages;
        let allocated_before;
        {
            let t = BLsmTree::open(
                data.clone(),
                wal.clone(),
                4096,
                small_config(),
                Arc::new(AppendOperator),
            )
            .unwrap();
            for i in 0..500u32 {
                t.put(key(i), Bytes::from(vec![1u8; 60])).unwrap();
            }
            t.checkpoint().unwrap();
            // Pin the catalog like a slow reader mid-scan would.
            pinned = t.shared.catalog.load();
            for i in 0..500u32 {
                t.put(key(i), Bytes::from(vec![2u8; 60])).unwrap();
            }
            t.checkpoint().unwrap(); // replaces the pinned components
            let m = t.merge.lock();
            assert!(
                !m.retired.is_empty(),
                "the pinned old component must still be awaiting reclamation"
            );
            retired_pages = m.retired.iter().map(|r| r.region.pages).sum::<u64>();
            allocated_before = m.allocator.high_water() - m.allocator.free_pages();
            drop(m);
            // Tree dropped here with the reader still pinning.
        }
        drop(pinned);
        let t2 = BLsmTree::open(data, wal, 4096, small_config(), Arc::new(AppendOperator)).unwrap();
        let m2 = t2.merge.lock();
        let allocated_after = m2.allocator.high_water() - m2.allocator.free_pages();
        drop(m2);
        assert_eq!(
            allocated_after,
            allocated_before - retired_pages,
            "reopen must reclaim regions that were retired-but-pinned at save"
        );
        assert_eq!(t2.get(&key(1)).unwrap().unwrap().as_ref(), &[2u8; 60][..]);
    }

    #[test]
    fn scan_folds_delta_over_retained_base_mid_pass() {
        // Regression: during a snowshovel pass a key's base can live only
        // in the retained (already-drained) C0 copies while a fresher
        // Delta lands in the deferred table. A scan racing the pass must
        // fold the two, not return the delta over an absent base.
        let config = BLsmConfig {
            external_pacing: true, // we drive the pass by hand
            ..small_config()
        };
        let t = new_tree(config);
        assert!(t.config().snowshovel);
        t.put(key(0), Bytes::from_static(b"base")).unwrap();
        t.put(key(1), Bytes::from_static(b"other")).unwrap();
        t.start_merge01().unwrap();
        t.run_merge01(1).unwrap(); // drains key(0): base now only retained
        assert!(t.merges_active().0, "pass must still be in flight");
        t.apply_delta(key(0), Bytes::from_static(b"+d")).unwrap(); // behind cursor → deferred
        let view = t.read_view();
        assert_eq!(view.get(&key(0)).unwrap().unwrap().as_ref(), b"base+d");
        let items = view.scan(&key(0), 10).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(
            items[0].value.as_ref(),
            b"base+d",
            "scan must fold the deferred delta over the retained base"
        );
        t.checkpoint().unwrap();
        assert_eq!(t.get(&key(0)).unwrap().unwrap().as_ref(), b"base+d");
    }

    #[test]
    fn scan_folds_delta_over_frozen_base_mid_pass() {
        // Frozen-pass variant: the base is still in the sealed current
        // table (undrained C0') when the delta lands in the next table.
        let config = BLsmConfig {
            scheduler: SchedulerKind::Gear, // gear partitions C0/C0' (frozen passes)
            external_pacing: true,
            ..small_config()
        };
        let t = new_tree(config);
        assert!(!t.config().snowshovel);
        t.put(key(0), Bytes::from_static(b"base")).unwrap();
        t.put(key(1), Bytes::from_static(b"other")).unwrap();
        t.start_merge01().unwrap();
        assert!(t.merges_active().0);
        t.apply_delta(key(0), Bytes::from_static(b"+d")).unwrap(); // frozen → deferred
        let view = t.read_view();
        assert_eq!(view.get(&key(0)).unwrap().unwrap().as_ref(), b"base+d");
        let items = view.scan(&key(0), 10).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].value.as_ref(), b"base+d");
        t.checkpoint().unwrap();
        assert_eq!(t.get(&key(0)).unwrap().unwrap().as_ref(), b"base+d");
    }
}
