//! The serialized merge state machine.
//!
//! There is exactly one merge driver at a time (§4.4.1's merge threads):
//! every function here takes the tree's [`MergeState`], which callers
//! obtain by locking the `merge` mutex — the thin wrappers on
//! [`BLsmTree`] (`maintenance`, `checkpoint`, the pacing in `pace`) do
//! that locking. Merges build their output `Sstable` off to the side;
//! nothing becomes visible to readers until a new [`ComponentCatalog`] is
//! published, and the `C0:C1` commit point runs inside
//! [`ConcurrentC0::end_capped_pass_with`]'s epoch-bumped window so the
//! catalog swap and the retirement of drained `C0` entries are one atomic
//! step for the seqlock readers (see `catalog.rs` for the protocol).
//!
//! Draining `C0` uses the buffer's [`DrainGuard`] — an exclusive pass
//! lock held per merged entry and released before any builder append or
//! sstable iteration, so concurrent writers wait for at most one
//! peek/drain, never for merge I/O.
//!
//! Retired components are reclaimed *deferred*: a reader that pinned an
//! older catalog may still stream from the old table, so its pages are
//! evicted and its region freed only once the retired list holds the
//! last `Arc` (strong count of one — at that point no new references can
//! be minted, so the check is stable).
//!
//! [`ConcurrentC0::end_capped_pass_with`]: blsm_memtable::ConcurrentC0::end_capped_pass_with
//! [`DrainGuard`]: blsm_memtable::DrainGuard

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use blsm_memtable::{merge_versions, Versioned};
use blsm_sstable::{EntryRef, EntryStream, MergeIter, ReadMode, Sstable, SstableBuilder};
use blsm_storage::{Lsn, PageId, Region, Result, Wal};

use crate::catalog::ComponentCatalog;
use crate::stats;
use crate::tree::{invariant_err, BLsmTree, MergeState};

/// Wraps an owned sstable iterator, counting consumed input bytes so the
/// merge's `inprogress` estimator stays smooth (§4.1).
pub(crate) struct CountingStream {
    inner: blsm_sstable::SstIterator,
    // ordering: Relaxed — progress estimate for the pacing scheduler;
    // readers tolerate stale values (same-thread merges see their own
    // writes, the scheduler only smooths `inprogress`).
    counter: Arc<AtomicU64>,
}

impl Iterator for CountingStream {
    type Item = Result<EntryRef>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next();
        if let Some(Ok(e)) = &item {
            let cost = (e.key.len() + e.version.entry.payload_len()) as u64;
            self.counter.fetch_add(cost, Ordering::Relaxed);
        }
        item
    }
}

/// State of a running `C0:C1` merge.
pub(crate) struct Merge01 {
    pub(crate) builder: SstableBuilder,
    /// Region as allocated (the unused tail is freed at completion).
    pub(crate) full_region: Region,
    /// Old `C1` input stream (None when there was no `C1`).
    pub(crate) c1_stream: Option<std::iter::Peekable<CountingStream>>,
    // ordering: Relaxed — pacing progress counter (see CountingStream).
    pub(crate) c1_consumed: Arc<AtomicU64>,
    /// `|C0'| + |C1|` at pass start.
    pub(crate) input_total: u64,
    /// `|C0'|` at pass start (spring-and-gear rate denominator).
    pub(crate) c0_input: u64,
    /// Output becomes the largest component (affects tombstone handling).
    pub(crate) bottom: bool,
    /// Log position sampled (under the log mutex) just before the pass
    /// began — the truncation point on clean completion. Every record
    /// below it had completed its `C0` insert before the pass started,
    /// because append+insert share the log mutex (see `TreeShared::wal`).
    pub(crate) pass_start_lsn: Lsn,
    /// Stop draining `C0` once the output exceeds this many data bytes.
    pub(crate) run_cap_bytes: u64,
    /// Set when the run cap fired; `C0` entries stay for the next pass.
    pub(crate) c0_capped: bool,
}

/// State of a running `C1':C2` merge.
pub(crate) struct Merge12 {
    pub(crate) builder: SstableBuilder,
    pub(crate) full_region: Region,
    pub(crate) iter: MergeIter<'static>,
    // ordering: Relaxed — pacing progress counter (see CountingStream).
    pub(crate) consumed: Arc<AtomicU64>,
    pub(crate) input_total: u64,
}

/// A retired on-disk component awaiting reclamation.
pub(crate) struct RetiredTable {
    pub(crate) table: Arc<Sstable>,
    pub(crate) region: Region,
}

/// One step of the `C0`/`C1` two-way merge, decided under the drain
/// guard and executed (builder append, `C1` iterator pull) after the
/// guard drops.
enum Step {
    /// Both inputs exhausted — finish the pass.
    Finish,
    /// `C0` holds the smallest key.
    C0(Bytes, Versioned),
    /// Both inputs hold the same key; `C1`'s version still needs pulling.
    Both(Bytes, Versioned),
    /// `C1` holds the smallest key (already peeked); the drain cursor has
    /// been advanced past it.
    C1,
}

impl BLsmTree {
    pub(crate) fn start_merge01_locked(&self, ms: &mut MergeState) -> Result<()> {
        assert!(ms.merge01.is_none());
        // Sample the log tail *before* the pass begins: append+insert is
        // atomic under the log mutex, so every record below this LSN is
        // already in C0 and will be either drained by the pass (safe to
        // truncate) or reported as leftover (truncation suppressed).
        // Records appended later sit at or above it and survive
        // truncation by construction.
        let pass_start_lsn = self.shared.wal.lock().as_ref().map_or(0, Wal::tail_lsn);
        self.shared.c0.begin_pass(self.shared.config.snowshovel);
        let c0_input = self.shared.c0.pass_start_bytes() as u64;
        let c0_len = self.shared.c0.len() as u64;
        let catalog = self.shared.catalog.load();
        let c1_data = catalog.c1.as_ref().map_or(0, |c| c.data_bytes());
        let c1_entries = catalog.c1.as_ref().map_or(0, |c| c.entry_count());
        let est_bytes = c0_input + c1_data;
        let est_entries = c0_len + c1_entries + 16;
        let factor = self.shared.config.run_length_cap.max(1.0) + 0.5;
        let pages = Self::merge_region_pages(est_bytes, est_entries, factor);
        let region = ms.allocator.alloc(pages);
        let builder = SstableBuilder::new(
            self.shared.pool.clone(),
            region,
            (est_entries as f64 * factor) as u64 + 16,
        );
        let c1_consumed = Arc::new(AtomicU64::new(0));
        let c1_stream = catalog.c1.as_ref().map(|c| {
            CountingStream {
                inner: c.iter(ReadMode::Buffered(64)),
                counter: c1_consumed.clone(),
            }
            .peekable()
        });
        let bottom = catalog.c2.is_none() && catalog.c1_prime.is_none();
        ms.merge01 = Some(Merge01 {
            builder,
            full_region: region,
            c1_stream,
            c1_consumed,
            input_total: est_bytes.max(1),
            c0_input: c0_input.max(1),
            bottom,
            pass_start_lsn,
            run_cap_bytes: ((est_bytes as f64) * self.shared.config.run_length_cap) as u64 + 4096,
            c0_capped: false,
        });
        Ok(())
    }

    /// Consumes up to `budget` input bytes of `C0:C1` merge work.
    ///
    /// The buffer's exclusive drain guard is taken per merged entry and
    /// released before the builder append and before any `C1` iterator
    /// pull — writers only ever wait for one peek/drain, never for merge
    /// I/O.
    pub(crate) fn run_merge01_locked(&self, ms: &mut MergeState, budget: u64) -> Result<()> {
        if ms.merge01.is_none() {
            return Ok(());
        }
        let op = self.shared.op.clone();
        let start_consumed = self.merge01_consumed(ms);
        loop {
            if self.merge01_consumed(ms) - start_consumed >= budget {
                return Ok(());
            }
            let Some(m) = ms.merge01.as_mut() else {
                return Ok(()); // unreachable: presence checked on entry
            };
            // Run-length cap (§4.2: sorted input would otherwise extend the
            // pass forever).
            if !m.c0_capped && m.builder.data_bytes() >= m.run_cap_bytes {
                m.c0_capped = true;
            }
            // Peek C1 outside the drain guard: sstable iteration may do
            // I/O and must never run under the buffer's pass lock.
            let c1_key = match m.c1_stream.as_mut().and_then(|s| s.peek()) {
                Some(Ok(e)) => Some(e.key.clone()),
                Some(Err(_)) => {
                    // peek() just returned Err; next() must yield it.
                    let err = match m.c1_stream.as_mut().and_then(Iterator::next) {
                        Some(Err(err)) => err,
                        _ => invariant_err("C1 stream error vanished between peek and next"),
                    };
                    return Err(err);
                }
                None => None,
            };
            let step = {
                let mut g = self.shared.c0.drain_guard();
                let c0_key = if m.c0_capped { None } else { g.peek_drain() };
                match (c0_key, &c1_key) {
                    (None, None) => Step::Finish,
                    (Some(k0), Some(k1)) if k0 == *k1 => {
                        let (k, v0) = g
                            .drain_next()
                            .ok_or_else(|| invariant_err("C0 entry vanished after peek"))?;
                        Step::Both(k, v0)
                    }
                    (Some(k0), c1k) if c1k.as_ref().is_none_or(|k1| k0 < *k1) => {
                        let (k, v0) = g
                            .drain_next()
                            .ok_or_else(|| invariant_err("C0 entry vanished after peek"))?;
                        Step::C0(k, v0)
                    }
                    (_, Some(k1)) => {
                        // The merge output cursor moves past k1 *before*
                        // C1's entry is pulled: a racing insert at or
                        // below it must defer to the next pass (§4.2).
                        g.advance_cursor(k1);
                        Step::C1
                    }
                    (Some(_), None) => unreachable!("guarded above"),
                }
            };
            let (key, versions) = match step {
                Step::Finish => {
                    self.finish_merge01_locked(ms)?;
                    return Ok(());
                }
                Step::Both(k, v0) => {
                    let e1 = m
                        .c1_stream
                        .as_mut()
                        .and_then(Iterator::next)
                        .ok_or_else(|| invariant_err("C1 entry vanished after peek"))??;
                    // C0's version is *usually* the fresher one, but a
                    // seqno-ticket race can leave C0 holding an older
                    // seqno than C1 (the older concurrent write deferred
                    // to a later pass while the newer one was published);
                    // merge_versions resolves by seqno, not position, so
                    // the newer value wins either way.
                    (k, vec![v0, e1.version])
                }
                Step::C0(k, v0) => (k, vec![v0]),
                Step::C1 => {
                    let e1 = m
                        .c1_stream
                        .as_mut()
                        .and_then(Iterator::next)
                        .ok_or_else(|| invariant_err("C1 entry vanished after peek"))??;
                    (e1.key, vec![e1.version])
                }
            };
            if let Some(v) = merge_versions(op.as_ref(), &versions, m.bottom) {
                stats::bump(
                    &self.shared.stats.merge_bytes_consumed,
                    (key.len() + v.entry.payload_len()) as u64,
                );
                m.builder.add(&key, &v)?;
            }
        }
    }

    pub(crate) fn merge01_consumed(&self, ms: &MergeState) -> u64 {
        match &ms.merge01 {
            Some(m) => {
                self.shared.c0.drained_bytes() as u64 + m.c1_consumed.load(Ordering::Relaxed)
            }
            None => 0,
        }
    }

    pub(crate) fn finish_merge01_locked(&self, ms: &mut MergeState) -> Result<()> {
        let Some(m) = ms.merge01.take() else {
            return Err(invariant_err("finish_merge01 without active merge01"));
        };
        let Merge01 {
            builder,
            full_region,
            c1_stream,
            pass_start_lsn,
            ..
        } = m;
        // Build and open the new C1 off to the side — nothing is visible
        // to readers until the catalog swap below.
        let new_c1 = Arc::new(builder.finish()?);
        // Free the unused tail of the over-allocated region.
        let used = new_c1.region().pages;
        if used < full_region.pages {
            ms.allocator.free(Region {
                start: PageId(full_region.start.0 + used),
                pages: full_region.pages - used,
            });
        }
        let new_c1 = (new_c1.entry_count() > 0).then_some(new_c1);
        // Release the old-C1 iterator's table handle before reclamation.
        drop(c1_stream);

        let had_leftover;
        {
            let old = self.shared.catalog.load();
            let next = Arc::new(ComponentCatalog::new(
                new_c1,
                old.c1_prime.clone(),
                old.c2.clone(),
            ));
            let old_c1 = old.c1.clone();
            drop(old);
            // Commit point (see catalog.rs): publish the new catalog and
            // retire the pass's drained C0 copies inside the buffer's
            // epoch-bumped window. The *capped* variant is used even when
            // the merge loop saw both inputs exhausted: a racing insert
            // ahead of the cursor can land in `current` between that
            // observation and the pass lock here, and must be folded into
            // the next table rather than dropped. Clean shards cost O(1),
            // so the general form is free in the quiescent case.
            let (displaced, leftover) =
                self.shared
                    .c0
                    .end_capped_pass_with(self.shared.op.as_ref(), || {
                        self.shared.catalog.store(next);
                    });
            had_leftover = leftover;
            // Free the displaced C0 tables outside the critical section.
            drop(displaced);
            if let Some(old_c1) = old_c1 {
                Self::retire(ms, old_c1);
            }
        }
        ms.last_pass_had_leftover = had_leftover;
        stats::bump(&self.shared.stats.merges01, 1);

        // Log truncation: everything the pass consumed is durable, and
        // every record below pass_start_lsn was in C0 when the pass began
        // (append+insert atomicity — see start_merge01_locked), so a
        // clean pass covers them all. With a leftover (capped pass, or a
        // racing insert folded above) pre-pass records may still be live,
        // so truncation waits for the next clean pass (§4.4.2:
        // "snowshoveling delays log truncation").
        if !had_leftover {
            let mut guard = self.shared.wal.lock();
            if let Some(wal) = guard.as_mut() {
                wal.truncate(pass_start_lsn);
            }
        }

        self.recompute_r(ms);
        // Trigger the downstream merge when C1 reaches R fills (§2.3.1).
        let c1_target = (ms.r * self.shared.config.mem_budget as f64) as u64;
        let rotate = {
            let cat = self.shared.catalog.load();
            ms.merge12.is_none()
                && cat.c1_prime.is_none()
                && cat.c1.as_ref().is_some_and(|c| c.data_bytes() >= c1_target)
        };
        if rotate {
            {
                let cat = self.shared.catalog.load();
                // C1 → C1' rotation: the same table is reachable before
                // and after the swap, so readers never see a gap.
                self.shared.catalog.store(Arc::new(ComponentCatalog::new(
                    None,
                    cat.c1.clone(),
                    cat.c2.clone(),
                )));
            }
            self.save_manifest(ms)?;
            self.start_merge12_locked(ms)?;
            if ms.scheduler.blocking_merge12() {
                // The naive scheduler's unbounded pause (§3.2).
                self.run_merge12_locked(ms, u64::MAX)?;
            }
        } else {
            self.save_manifest(ms)?;
        }
        self.reap_retired_locked(ms);
        Ok(())
    }

    pub(crate) fn start_merge12_locked(&self, ms: &mut MergeState) -> Result<()> {
        assert!(ms.merge12.is_none());
        let catalog = self.shared.catalog.load();
        let c1p = catalog
            .c1_prime
            .clone()
            .ok_or_else(|| invariant_err("start_merge12 without C1'"))?;
        let c2 = catalog.c2.clone();
        let input_total = c1p.data_bytes() + c2.as_ref().map_or(0, |c| c.data_bytes());
        let est_entries = c1p.entry_count() + c2.as_ref().map_or(0, |c| c.entry_count()) + 16;
        let pages = Self::merge_region_pages(input_total, est_entries, 1.2);
        let region = ms.allocator.alloc(pages);
        let builder = SstableBuilder::new(self.shared.pool.clone(), region, est_entries);
        let consumed = Arc::new(AtomicU64::new(0));
        let mut streams: Vec<EntryStream<'static>> = Vec::with_capacity(2);
        streams.push(Box::new(CountingStream {
            inner: c1p.iter(ReadMode::Buffered(64)),
            counter: consumed.clone(),
        }));
        if let Some(c2) = &c2 {
            streams.push(Box::new(CountingStream {
                inner: c2.iter(ReadMode::Buffered(64)),
                counter: consumed.clone(),
            }));
        }
        let iter = MergeIter::new(streams, self.shared.op.clone(), true);
        ms.merge12 = Some(Merge12 {
            builder,
            full_region: region,
            iter,
            consumed,
            input_total: input_total.max(1),
        });
        Ok(())
    }

    /// Consumes up to `budget` input bytes of `C1':C2` merge work.
    pub(crate) fn run_merge12_locked(&self, ms: &mut MergeState, budget: u64) -> Result<()> {
        let Some(m) = ms.merge12.as_mut() else {
            return Ok(());
        };
        let start = m.consumed.load(Ordering::Relaxed);
        loop {
            if m.consumed.load(Ordering::Relaxed) - start >= budget {
                return Ok(());
            }
            match m.iter.next() {
                Some(e) => {
                    let e = e?;
                    stats::bump(
                        &self.shared.stats.merge_bytes_consumed,
                        (e.key.len() + e.version.entry.payload_len()) as u64,
                    );
                    m.builder.add(&e.key, &e.version)?;
                }
                None => {
                    self.finish_merge12_locked(ms)?;
                    return Ok(());
                }
            }
        }
    }

    pub(crate) fn finish_merge12_locked(&self, ms: &mut MergeState) -> Result<()> {
        let Some(m) = ms.merge12.take() else {
            return Err(invariant_err("finish_merge12 without active merge12"));
        };
        let Merge12 {
            builder,
            full_region,
            iter,
            ..
        } = m;
        let new_c2 = Arc::new(builder.finish()?);
        let used = new_c2.region().pages;
        if used < full_region.pages {
            ms.allocator.free(Region {
                start: PageId(full_region.start.0 + used),
                pages: full_region.pages - used,
            });
        }
        let new_c2 = (new_c2.entry_count() > 0).then_some(new_c2);
        // Release the input iterators' table handles before reclamation.
        drop(iter);
        {
            let old = self.shared.catalog.load();
            // Single swap: C1' and the old C2 leave, the merged C2
            // arrives. No C0 state changes, so no epoch bump is needed: a
            // reader's pinned old catalog is still a complete view.
            self.shared.catalog.store(Arc::new(ComponentCatalog::new(
                old.c1.clone(),
                None,
                new_c2,
            )));
            if let Some(t) = old.c1_prime.clone() {
                Self::retire(ms, t);
            }
            if let Some(t) = old.c2.clone() {
                Self::retire(ms, t);
            }
        }
        stats::bump(&self.shared.stats.merges12, 1);
        self.recompute_r(ms);
        self.save_manifest(ms)?;
        self.reap_retired_locked(ms);
        Ok(())
    }

    /// Queues a replaced component for deferred reclamation.
    pub(crate) fn retire(ms: &mut MergeState, table: Arc<Sstable>) {
        let region = table.region();
        ms.retired.push(RetiredTable { table, region });
    }

    /// Reclaims retired components no longer referenced by any catalog
    /// snapshot or in-flight iterator. A strong count of one means the
    /// retired list holds the last handle; no new references can be
    /// minted from it, so eviction + region free is safe.
    pub(crate) fn reap_retired_locked(&self, ms: &mut MergeState) {
        let pending = std::mem::take(&mut ms.retired);
        for r in pending {
            if Arc::strong_count(&r.table) == 1 {
                // Synchronize with the release decrement of the last
                // reader's handle drop before discarding the pages (the
                // same fence `Arc`'s own `Drop` issues before freeing).
                std::sync::atomic::fence(Ordering::Acquire);
                r.table.evict_from_pool();
                ms.allocator.free(r.region);
            } else {
                ms.retired.push(r);
            }
        }
    }
}
