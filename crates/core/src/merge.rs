//! The serialized merge state machine.
//!
//! Everything here requires `&mut BLsmTree` — there is exactly one merge
//! driver at a time (§4.4.1's merge threads, serialized behind the tree
//! handle). Merges build their output `Sstable` off to the side; nothing
//! becomes visible to readers until a new [`ComponentCatalog`] is
//! published, and the `C0:C1` commit point additionally holds the `c0`
//! write lock so the catalog swap and the retirement of drained `C0`
//! entries are one atomic step (see `catalog.rs` for the protocol).
//!
//! Retired components are reclaimed *deferred*: a reader that pinned an
//! older catalog may still stream from the old table, so its pages are
//! evicted and its region freed only once the retired list holds the
//! last `Arc` (strong count of one — at that point no new references can
//! be minted, so the check is stable).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blsm_memtable::merge_versions;
use blsm_sstable::{EntryRef, EntryStream, MergeIter, ReadMode, Sstable, SstableBuilder};
use blsm_storage::{Lsn, PageId, Region, Result, Wal};

use crate::catalog::ComponentCatalog;
use crate::stats;
use crate::tree::{invariant_err, BLsmTree};

/// Wraps an owned sstable iterator, counting consumed input bytes so the
/// merge's `inprogress` estimator stays smooth (§4.1).
pub(crate) struct CountingStream {
    inner: blsm_sstable::SstIterator,
    // ordering: Relaxed — progress estimate for the pacing scheduler;
    // readers tolerate stale values (same-thread merges see their own
    // writes, the scheduler only smooths `inprogress`).
    counter: Arc<AtomicU64>,
}

impl Iterator for CountingStream {
    type Item = Result<EntryRef>;

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next();
        if let Some(Ok(e)) = &item {
            let cost = (e.key.len() + e.version.entry.payload_len()) as u64;
            self.counter.fetch_add(cost, Ordering::Relaxed);
        }
        item
    }
}

/// State of a running `C0:C1` merge.
pub(crate) struct Merge01 {
    pub(crate) builder: SstableBuilder,
    /// Region as allocated (the unused tail is freed at completion).
    pub(crate) full_region: Region,
    /// Old `C1` input stream (None when there was no `C1`).
    pub(crate) c1_stream: Option<std::iter::Peekable<CountingStream>>,
    // ordering: Relaxed — pacing progress counter (see CountingStream).
    pub(crate) c1_consumed: Arc<AtomicU64>,
    /// `|C0'| + |C1|` at pass start.
    pub(crate) input_total: u64,
    /// `|C0'|` at pass start (spring-and-gear rate denominator).
    pub(crate) c0_input: u64,
    /// Output becomes the largest component (affects tombstone handling).
    pub(crate) bottom: bool,
    /// Log position at pass start — the truncation point on completion.
    pub(crate) pass_start_lsn: Lsn,
    /// Stop draining `C0` once the output exceeds this many data bytes.
    pub(crate) run_cap_bytes: u64,
    /// Set when the run cap fired; `C0` entries stay for the next pass.
    pub(crate) c0_capped: bool,
}

/// State of a running `C1':C2` merge.
pub(crate) struct Merge12 {
    pub(crate) builder: SstableBuilder,
    pub(crate) full_region: Region,
    pub(crate) iter: MergeIter<'static>,
    // ordering: Relaxed — pacing progress counter (see CountingStream).
    pub(crate) consumed: Arc<AtomicU64>,
    pub(crate) input_total: u64,
}

/// A retired on-disk component awaiting reclamation.
pub(crate) struct RetiredTable {
    pub(crate) table: Arc<Sstable>,
    pub(crate) region: Region,
}

impl BLsmTree {
    pub(crate) fn start_merge01(&mut self) -> Result<()> {
        assert!(self.merge01.is_none());
        let (c0_input, c0_len) = {
            let mut c0 = self.shared.c0.write();
            c0.begin_pass(self.shared.config.snowshovel);
            (c0.pass_start_bytes() as u64, c0.len() as u64)
        };
        let catalog = self.shared.catalog.load();
        let c1_data = catalog.c1.as_ref().map_or(0, |c| c.data_bytes());
        let c1_entries = catalog.c1.as_ref().map_or(0, |c| c.entry_count());
        let est_bytes = c0_input + c1_data;
        let est_entries = c0_len + c1_entries + 16;
        let factor = self.shared.config.run_length_cap.max(1.0) + 0.5;
        let pages = Self::merge_region_pages(est_bytes, est_entries, factor);
        let region = self.allocator.alloc(pages);
        let builder = SstableBuilder::new(
            self.shared.pool.clone(),
            region,
            (est_entries as f64 * factor) as u64 + 16,
        );
        let c1_consumed = Arc::new(AtomicU64::new(0));
        let c1_stream = catalog.c1.as_ref().map(|c| {
            CountingStream {
                inner: c.iter(ReadMode::Buffered(64)),
                counter: c1_consumed.clone(),
            }
            .peekable()
        });
        let bottom = catalog.c2.is_none() && catalog.c1_prime.is_none();
        let pass_start_lsn = self.wal.as_ref().map_or(0, Wal::tail_lsn);
        self.merge01 = Some(Merge01 {
            builder,
            full_region: region,
            c1_stream,
            c1_consumed,
            input_total: est_bytes.max(1),
            c0_input: c0_input.max(1),
            bottom,
            pass_start_lsn,
            run_cap_bytes: ((est_bytes as f64) * self.shared.config.run_length_cap) as u64 + 4096,
            c0_capped: false,
        });
        Ok(())
    }

    /// Consumes up to `budget` input bytes of `C0:C1` merge work.
    ///
    /// The `c0` write lock is taken per merged entry and released before
    /// the builder append — readers only ever wait for one peek/drain,
    /// never for merge I/O.
    pub(crate) fn run_merge01(&mut self, budget: u64) -> Result<()> {
        if self.merge01.is_none() {
            return Ok(());
        }
        let op = self.shared.op.clone();
        let start_consumed = self.merge01_consumed();
        loop {
            if self.merge01_consumed() - start_consumed >= budget {
                return Ok(());
            }
            let Some(m) = self.merge01.as_mut() else {
                return Ok(()); // unreachable: presence checked on entry
            };
            // Run-length cap (§4.2: sorted input would otherwise extend the
            // pass forever).
            if !m.c0_capped && m.builder.data_bytes() >= m.run_cap_bytes {
                m.c0_capped = true;
            }
            let c1_key = match m.c1_stream.as_mut().and_then(|s| s.peek()) {
                Some(Ok(e)) => Some(e.key.clone()),
                Some(Err(_)) => {
                    // peek() just returned Err; next() must yield it.
                    let err = match m.c1_stream.as_mut().and_then(Iterator::next) {
                        Some(Err(err)) => err,
                        _ => invariant_err("C1 stream error vanished between peek and next"),
                    };
                    return Err(err);
                }
                None => None,
            };
            let mut c0 = self.shared.c0.write();
            let c0_key = if m.c0_capped {
                None
            } else {
                c0.peek_drain().cloned()
            };
            let (key, versions) = match (c0_key, c1_key) {
                (None, None) => {
                    drop(c0);
                    self.finish_merge01()?;
                    return Ok(());
                }
                (Some(k0), Some(k1)) if k0 == k1 => {
                    let (_, v0) = c0
                        .drain_next()
                        .ok_or_else(|| invariant_err("C0 entry vanished after peek"))?;
                    drop(c0);
                    let e1 = m
                        .c1_stream
                        .as_mut()
                        .and_then(Iterator::next)
                        .ok_or_else(|| invariant_err("C1 entry vanished after peek"))??;
                    (k0, vec![v0, e1.version])
                }
                (Some(k0), c1k) if c1k.as_ref().is_none_or(|k1| k0 < *k1) => {
                    let (k, v0) = c0
                        .drain_next()
                        .ok_or_else(|| invariant_err("C0 entry vanished after peek"))?;
                    drop(c0);
                    (k, vec![v0])
                }
                (_, Some(_)) => {
                    let e1 = m
                        .c1_stream
                        .as_mut()
                        .and_then(Iterator::next)
                        .ok_or_else(|| invariant_err("C1 entry vanished after peek"))??;
                    // The merge output cursor moved past e1.key: inserts at
                    // or below it must defer to the next pass (§4.2).
                    c0.advance_cursor(&e1.key);
                    drop(c0);
                    (e1.key, vec![e1.version])
                }
                _ => unreachable!(),
            };
            if let Some(v) = merge_versions(op.as_ref(), &versions, m.bottom) {
                stats::bump(
                    &self.shared.stats.merge_bytes_consumed,
                    (key.len() + v.entry.payload_len()) as u64,
                );
                m.builder.add(&key, &v)?;
            }
        }
    }

    pub(crate) fn merge01_consumed(&self) -> u64 {
        match &self.merge01 {
            Some(m) => {
                self.shared.c0.read().drained_bytes() as u64 + m.c1_consumed.load(Ordering::Relaxed)
            }
            None => 0,
        }
    }

    pub(crate) fn finish_merge01(&mut self) -> Result<()> {
        let Some(m) = self.merge01.take() else {
            return Err(invariant_err("finish_merge01 without active merge01"));
        };
        let Merge01 {
            builder,
            full_region,
            c1_stream,
            pass_start_lsn,
            ..
        } = m;
        // Build and open the new C1 off to the side — nothing is visible
        // to readers until the catalog swap below.
        let new_c1 = Arc::new(builder.finish()?);
        // Free the unused tail of the over-allocated region.
        let used = new_c1.region().pages;
        if used < full_region.pages {
            self.allocator.free(Region {
                start: PageId(full_region.start.0 + used),
                pages: full_region.pages - used,
            });
        }
        let new_c1 = (new_c1.entry_count() > 0).then_some(new_c1);
        // Release the old-C1 iterator's table handle before reclamation.
        drop(c1_stream);

        let had_leftover;
        {
            let old = self.shared.catalog.load();
            let next = Arc::new(ComponentCatalog::new(
                new_c1,
                old.c1_prime.clone(),
                old.c2.clone(),
            ));
            let old_c1 = old.c1.clone();
            drop(old);
            // A capped pass leaves undrained C0 entries; fold them into
            // the deferred table *before* the commit critical section.
            // The O(|C0|) operator folding runs under the read lock, so
            // concurrent readers proceed; nothing else can mutate C0 in
            // between — this handle is the sole writer and the merge has
            // stopped draining.
            let premerged = {
                let c0 = self.shared.c0.read();
                (!c0.pass_exhausted()).then(|| c0.fold_remainder(self.shared.op.as_ref()))
            };
            had_leftover = premerged.is_some();
            // Commit point (see catalog.rs): publish the new catalog and
            // retire the pass's drained C0 copies in one *brief* (O(1))
            // c0 write critical section. A concurrent reader pins either
            // the old pair (old C1 + retained entries) or the new pair —
            // both complete.
            let displaced = {
                let mut c0 = self.shared.c0.write();
                self.shared.catalog.store(next);
                match premerged {
                    Some(merged) => Some(c0.end_pass_installing(merged)),
                    None => {
                        c0.end_pass();
                        None
                    }
                }
            };
            // Free the displaced C0 tables outside the critical section.
            drop(displaced);
            if let Some(old_c1) = old_c1 {
                self.retire(old_c1);
            }
        }
        self.last_pass_had_leftover = had_leftover;
        stats::bump(&self.shared.stats.merges01, 1);

        // Log truncation: everything the pass consumed is durable. With a
        // leftover (capped pass) pre-pass records may still be live, so
        // truncation waits for the next clean pass (§4.4.2:
        // "snowshoveling delays log truncation").
        if !had_leftover {
            if let Some(wal) = &mut self.wal {
                wal.truncate(pass_start_lsn);
            }
        }

        self.recompute_r();
        // Trigger the downstream merge when C1 reaches R fills (§2.3.1).
        let c1_target = (self.r * self.shared.config.mem_budget as f64) as u64;
        let rotate = {
            let cat = self.shared.catalog.load();
            self.merge12.is_none()
                && cat.c1_prime.is_none()
                && cat.c1.as_ref().is_some_and(|c| c.data_bytes() >= c1_target)
        };
        if rotate {
            {
                let cat = self.shared.catalog.load();
                // C1 → C1' rotation: the same table is reachable before
                // and after the swap, so readers never see a gap.
                self.shared.catalog.store(Arc::new(ComponentCatalog::new(
                    None,
                    cat.c1.clone(),
                    cat.c2.clone(),
                )));
            }
            self.save_manifest()?;
            self.start_merge12()?;
            if self.scheduler.blocking_merge12() {
                // The naive scheduler's unbounded pause (§3.2).
                self.run_merge12(u64::MAX)?;
            }
        } else {
            self.save_manifest()?;
        }
        self.reap_retired();
        Ok(())
    }

    pub(crate) fn start_merge12(&mut self) -> Result<()> {
        assert!(self.merge12.is_none());
        let catalog = self.shared.catalog.load();
        let c1p = catalog
            .c1_prime
            .clone()
            .ok_or_else(|| invariant_err("start_merge12 without C1'"))?;
        let c2 = catalog.c2.clone();
        let input_total = c1p.data_bytes() + c2.as_ref().map_or(0, |c| c.data_bytes());
        let est_entries = c1p.entry_count() + c2.as_ref().map_or(0, |c| c.entry_count()) + 16;
        let pages = Self::merge_region_pages(input_total, est_entries, 1.2);
        let region = self.allocator.alloc(pages);
        let builder = SstableBuilder::new(self.shared.pool.clone(), region, est_entries);
        let consumed = Arc::new(AtomicU64::new(0));
        let mut streams: Vec<EntryStream<'static>> = Vec::with_capacity(2);
        streams.push(Box::new(CountingStream {
            inner: c1p.iter(ReadMode::Buffered(64)),
            counter: consumed.clone(),
        }));
        if let Some(c2) = &c2 {
            streams.push(Box::new(CountingStream {
                inner: c2.iter(ReadMode::Buffered(64)),
                counter: consumed.clone(),
            }));
        }
        let iter = MergeIter::new(streams, self.shared.op.clone(), true);
        self.merge12 = Some(Merge12 {
            builder,
            full_region: region,
            iter,
            consumed,
            input_total: input_total.max(1),
        });
        Ok(())
    }

    /// Consumes up to `budget` input bytes of `C1':C2` merge work.
    pub(crate) fn run_merge12(&mut self, budget: u64) -> Result<()> {
        let Some(m) = self.merge12.as_mut() else {
            return Ok(());
        };
        let start = m.consumed.load(Ordering::Relaxed);
        loop {
            if m.consumed.load(Ordering::Relaxed) - start >= budget {
                return Ok(());
            }
            match m.iter.next() {
                Some(e) => {
                    let e = e?;
                    stats::bump(
                        &self.shared.stats.merge_bytes_consumed,
                        (e.key.len() + e.version.entry.payload_len()) as u64,
                    );
                    m.builder.add(&e.key, &e.version)?;
                }
                None => {
                    self.finish_merge12()?;
                    return Ok(());
                }
            }
        }
    }

    pub(crate) fn finish_merge12(&mut self) -> Result<()> {
        let Some(m) = self.merge12.take() else {
            return Err(invariant_err("finish_merge12 without active merge12"));
        };
        let Merge12 {
            builder,
            full_region,
            iter,
            ..
        } = m;
        let new_c2 = Arc::new(builder.finish()?);
        let used = new_c2.region().pages;
        if used < full_region.pages {
            self.allocator.free(Region {
                start: PageId(full_region.start.0 + used),
                pages: full_region.pages - used,
            });
        }
        let new_c2 = (new_c2.entry_count() > 0).then_some(new_c2);
        // Release the input iterators' table handles before reclamation.
        drop(iter);
        {
            let old = self.shared.catalog.load();
            // Single swap: C1' and the old C2 leave, the merged C2
            // arrives. No C0 state changes, so the c0 lock is not needed:
            // a reader's pinned old catalog is still a complete view.
            self.shared.catalog.store(Arc::new(ComponentCatalog::new(
                old.c1.clone(),
                None,
                new_c2,
            )));
            if let Some(t) = old.c1_prime.clone() {
                self.retire(t);
            }
            if let Some(t) = old.c2.clone() {
                self.retire(t);
            }
        }
        stats::bump(&self.shared.stats.merges12, 1);
        self.recompute_r();
        self.save_manifest()?;
        self.reap_retired();
        Ok(())
    }

    /// Queues a replaced component for deferred reclamation.
    pub(crate) fn retire(&mut self, table: Arc<Sstable>) {
        let region = table.region();
        self.retired.push(RetiredTable { table, region });
    }

    /// Reclaims retired components no longer referenced by any catalog
    /// snapshot or in-flight iterator. A strong count of one means the
    /// retired list holds the last handle; no new references can be
    /// minted from it, so eviction + region free is safe.
    pub(crate) fn reap_retired(&mut self) {
        let pending = std::mem::take(&mut self.retired);
        for r in pending {
            if Arc::strong_count(&r.table) == 1 {
                // Synchronize with the release decrement of the last
                // reader's handle drop before discarding the pages (the
                // same fence `Arc`'s own `Drop` issues before freeing).
                std::sync::atomic::fence(Ordering::Acquire);
                r.table.evict_from_pool();
                self.allocator.free(r.region);
            } else {
                self.retired.push(r);
            }
        }
    }
}
