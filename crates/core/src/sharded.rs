//! The sharded serving tier: N fully independent bLSM shards behind one
//! key-range router.
//!
//! The paper names key-range partitioning as its future work
//! (§2.3.2, §3.3, §4.2.2); [`crate::PartitionedBLsm`] realizes the
//! *scheduling* argument in-process (one coordinated merge scheduler, one
//! WAL, deterministic single-threaded experiments). This module builds
//! the *serving* tier on the same routing arithmetic
//! ([`crate::route`]): every shard is a whole [`crate::BLsmTree`] wrapped
//! in its own [`ThreadedBLsm`] — its own directory, WAL ring, `C0`,
//! spring-and-gear scheduler, merge thread and recovery path — so write
//! throughput, merge stalls and crash recovery are per-shard, never
//! globally coupled:
//!
//! * a hot shard's spring-and-gear backpressure paces only writers of
//!   *its* key range ([`ShardedBLsm::backpressure`] is per shard);
//! * recovery replays N small WALs independently; a corrupt shard
//!   degrades to a typed per-shard error ([`ComponentId::Shard`]) while
//!   its siblings keep serving;
//! * scans scatter to the shards overlapping the range and gather
//!   through a k-way merge back into one globally key-ordered stream.
//!
//! Shard boundaries are fixed at creation and persisted in a
//! checksummed, double-slot **shard manifest** (reusing
//! [`ManifestStore`]: `crc32c | epoch | payload`, alternating slots, so
//! a torn manifest write rolls back instead of bricking the store). The
//! epoch is bumped on every successful open and checkpoint, recording
//! store generations.
//!
//! **Online shard split is explicitly out of scope** (as re-partitioning
//! was for the paper, §4): the seam is `split_seam` below — splitting
//! shard `i` at key `k` means inserting `k` into the manifest bounds,
//! opening a new shard directory, and migrating `shard(i)`'s keys `≥ k`
//! via a scatter-scan copy; nothing else in the router needs to change
//! because routing is already pure boundary arithmetic.

use std::path::Path;
use std::sync::Arc;

use bytes::Bytes;

use blsm_memtable::MergeOperator;
use blsm_storage::codec::{self, Reader};
use blsm_storage::manifest::ManifestStore;
use blsm_storage::{ComponentId, FileDevice, Result, SharedDevice, StorageError};

use crate::config::BLsmConfig;
use crate::read::{ReadView, ScanItem, TreeScrubReport};
use crate::route;
use crate::sched::BackpressureLevel;
use crate::stats::TreeStatsSnapshot;
use crate::threaded::ThreadedBLsm;
use crate::tree::BLsmTree;

/// Shard-manifest payload magic: "BLSMSHR1".
const SHARD_MANIFEST_MAGIC: u64 = 0x424C_534D_5348_5231;

/// Pages per shard-manifest slot (16 KiB — thousands of boundaries).
const SHARD_MANIFEST_SLOT_PAGES: u64 = 4;

/// Tuning for a sharded store; `tree` applies to *each* shard (so the
/// memory budget is per shard, as it is for `PartitionedBLsm`).
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Per-shard engine configuration.
    pub tree: BLsmConfig,
    /// Buffer-pool pages per shard.
    pub pool_pages: usize,
    /// Merge-thread quantum per shard (bytes per background quantum).
    pub quantum: u64,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            tree: BLsmConfig::default(),
            pool_pages: 1024,
            quantum: 1 << 20,
        }
    }
}

/// One shard slot: serving, or degraded with the open error preserved.
enum ShardSlot {
    Serving(ThreadedBLsm),
    /// The shard failed to open (corrupt manifest/WAL/device). The
    /// error is kept so callers can surface *which* shard is down and
    /// why; sibling shards serve normally.
    Degraded(StorageError),
}

/// A typed view of one degraded shard, returned by
/// [`ShardedBLsm::degraded_shards`].
#[derive(Debug)]
pub struct DegradedShard<'a> {
    /// Index of the degraded shard.
    pub shard: usize,
    /// Why it failed to open.
    pub error: &'a StorageError,
}

/// N independent bLSM shards (each with its own WAL, `C0`, merge
/// scheduler and merge thread) behind one key-range router.
///
/// All operations are `&self`: routing is pure arithmetic over the
/// immutable boundary list, and each shard's engine is internally
/// synchronized — concurrent connections write to different shards with
/// zero shared state between them.
pub struct ShardedBLsm {
    /// `bounds[i]` is the inclusive lower bound of shard `i + 1`
    /// (see [`crate::route`]). Immutable after open.
    bounds: Arc<[Bytes]>,
    shards: Vec<ShardSlot>,
    /// The persisted shard manifest; `None` for manifest-less stores
    /// built over explicit devices ([`ShardedBLsm::from_single`]).
    /// Mutated only through `&mut self` (open/checkpoint/shutdown), so
    /// it needs no lock — the serving path never touches it.
    manifest: Option<ManifestStore>,
    /// Manifest epoch at the last save (0 when manifest-less).
    epoch: u64,
}

impl std::fmt::Debug for ShardedBLsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBLsm")
            .field("shards", &self.shards.len())
            .field("degraded", &self.degraded_shards().len())
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

fn shard_manifest_payload(bounds: &[Bytes]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + bounds.len() * 8);
    codec::put_u64(&mut payload, SHARD_MANIFEST_MAGIC);
    codec::put_varint(&mut payload, bounds.len() as u64);
    for b in bounds {
        codec::put_bytes(&mut payload, b);
    }
    payload
}

fn decode_shard_manifest(payload: &[u8]) -> Result<Vec<Bytes>> {
    let mut r = Reader::new(payload);
    if r.u64()? != SHARD_MANIFEST_MAGIC {
        return Err(StorageError::InvalidFormat(
            "shard manifest: bad magic".into(),
        ));
    }
    let n = r.varint()? as usize;
    let mut bounds = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        bounds.push(Bytes::copy_from_slice(r.bytes()?));
    }
    if r.remaining() != 0 {
        return Err(StorageError::InvalidFormat(
            "shard manifest: trailing bytes".into(),
        ));
    }
    if !route::bounds_are_sorted(&bounds) {
        return Err(StorageError::InvalidFormat(
            "shard manifest: boundaries not strictly sorted".into(),
        ));
    }
    Ok(bounds)
}

impl ShardedBLsm {
    /// `n - 1` boundaries cutting the keyspace into `n` byte-wise even
    /// shards (two-byte big-endian cuts). The default layout for hashed
    /// or uniform keyspaces.
    #[must_use]
    pub fn even_bounds(n: usize) -> Vec<Bytes> {
        route::even_bounds(n)
    }

    /// Opens (or creates) a sharded store over caller-supplied devices.
    ///
    /// `manifest_dev` holds the checksummed shard manifest. On first
    /// open the store is created with `bounds` and they are persisted;
    /// on reopen the *persisted* boundaries win (boundaries are fixed at
    /// creation) and `bounds` is ignored. `devices(i)` supplies the
    /// `(data, wal)` device pair for shard `i`.
    ///
    /// A shard whose tree fails to open does **not** fail the store: it
    /// is recorded as degraded (see [`ShardedBLsm::degraded_shards`])
    /// and every request routed to it returns a typed
    /// [`ComponentId::Shard`] corruption error, while sibling shards
    /// recover and serve independently.
    ///
    /// # Errors
    ///
    /// Fails only on whole-store problems: an unreadable/corrupt shard
    /// manifest (without it requests cannot be routed safely), unsorted
    /// `bounds`, or a manifest save failure on creation.
    pub fn open_with_devices(
        manifest_dev: SharedDevice,
        bounds: Vec<Bytes>,
        mut devices: impl FnMut(usize) -> Result<(SharedDevice, SharedDevice)>,
        config: &ShardedConfig,
        op: &Arc<dyn MergeOperator>,
    ) -> Result<ShardedBLsm> {
        if !route::bounds_are_sorted(&bounds) {
            return Err(StorageError::InvalidFormat(
                "shard bounds must be strictly sorted".into(),
            ));
        }
        let (mut store, existing) = ManifestStore::open(manifest_dev, SHARD_MANIFEST_SLOT_PAGES)?;
        let bounds: Arc<[Bytes]> = match existing {
            // Reopen: the persisted layout is authoritative.
            Some(payload) => decode_shard_manifest(&payload)?.into(),
            None => bounds.into(),
        };
        let mut shards = Vec::with_capacity(bounds.len() + 1);
        for i in 0..=bounds.len() {
            // Each shard opens — and recovers its own WAL — independently:
            // an error here degrades shard `i` alone.
            let opened = devices(i).and_then(|(data, wal)| {
                let tree = BLsmTree::open(
                    data,
                    wal,
                    config.pool_pages,
                    config.tree.clone(),
                    op.clone(),
                )?;
                ThreadedBLsm::start(tree, config.quantum)
            });
            shards.push(match opened {
                Ok(db) => ShardSlot::Serving(db),
                Err(e) => ShardSlot::Degraded(e),
            });
        }
        // Record this generation (and, on creation, the layout itself).
        store.save(&shard_manifest_payload(&bounds))?;
        let epoch = store.epoch();
        Ok(ShardedBLsm {
            bounds,
            shards,
            manifest: Some(store),
            epoch,
        })
    }

    /// Opens (or creates) a durable sharded store rooted at `base`:
    ///
    /// ```text
    /// base/
    ///   shards.manifest          checksummed boundary list + epoch
    ///   shard-000/{data,wal}     shard 0: its own tree + WAL ring
    ///   shard-001/{data,wal}     ...
    /// ```
    ///
    /// Creating uses `shards` byte-wise even boundaries
    /// ([`ShardedBLsm::even_bounds`]); reopening ignores `shards` and
    /// uses the persisted layout.
    ///
    /// # Errors
    ///
    /// As [`ShardedBLsm::open_with_devices`], plus directory-creation
    /// failures.
    pub fn open_dir(
        base: &Path,
        shards: usize,
        config: &ShardedConfig,
        op: &Arc<dyn MergeOperator>,
    ) -> Result<ShardedBLsm> {
        std::fs::create_dir_all(base).map_err(StorageError::Io)?;
        let manifest_dev: SharedDevice = Arc::new(FileDevice::open(&base.join("shards.manifest"))?);
        let base = base.to_path_buf();
        Self::open_with_devices(
            manifest_dev,
            route::even_bounds(shards),
            move |i| {
                let dir = base.join(format!("shard-{i:03}"));
                std::fs::create_dir_all(&dir).map_err(StorageError::Io)?;
                let data: SharedDevice = Arc::new(FileDevice::open(&dir.join("data"))?);
                let wal: SharedDevice = Arc::new(FileDevice::open(&dir.join("wal"))?);
                Ok((data, wal))
            },
            config,
            op,
        )
    }

    /// Wraps one already-running tree as a single-shard store with no
    /// manifest — the adapter that lets the serving layer treat the
    /// classic one-tree deployment as the 1-shard case of the router.
    #[must_use]
    pub fn from_single(db: ThreadedBLsm) -> ShardedBLsm {
        ShardedBLsm {
            bounds: Arc::from(Vec::new()),
            shards: vec![ShardSlot::Serving(db)],
            manifest: None,
            epoch: 0,
        }
    }

    /// Number of shards (serving + degraded).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The boundary list (`len() == shard_count() - 1`).
    pub fn bounds(&self) -> &[Bytes] {
        &self.bounds
    }

    /// Manifest epoch recorded at the last open/checkpoint (0 when
    /// manifest-less).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Index of the shard owning `key`.
    pub fn shard_for(&self, key: &[u8]) -> usize {
        route::shard_for(&self.bounds, key)
    }

    /// Every degraded shard with its preserved open error.
    pub fn degraded_shards(&self) -> Vec<DegradedShard<'_>> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ShardSlot::Serving(_) => None,
                ShardSlot::Degraded(e) => Some(DegradedShard { shard: i, error: e }),
            })
            .collect()
    }

    /// The typed error every request routed to a degraded shard gets.
    fn degraded_error(shard: usize, e: &StorageError) -> StorageError {
        StorageError::corruption(
            ComponentId::Shard,
            None,
            format!("shard {shard} is degraded: {e}"),
        )
    }

    /// The serving engine for shard `i`, or the typed degraded error.
    fn shard(&self, i: usize) -> Result<&ThreadedBLsm> {
        match &self.shards[i] {
            ShardSlot::Serving(db) => Ok(db),
            ShardSlot::Degraded(e) => Err(Self::degraded_error(i, e)),
        }
    }

    /// Direct access to shard `i`'s engine (tests, diagnostics).
    ///
    /// # Errors
    ///
    /// Typed [`ComponentId::Shard`] error when the shard is degraded.
    pub fn shard_engine(&self, i: usize) -> Result<&ThreadedBLsm> {
        self.shard(i)
    }

    /// The store's engine when it is exactly one serving shard, `None`
    /// otherwise. The replication tier streams one WAL per store, so it
    /// attaches here — a sharded store would need one stream per shard
    /// (future work; see DESIGN.md §17).
    pub fn single(&self) -> Option<&ThreadedBLsm> {
        match self.shards.as_slice() {
            [ShardSlot::Serving(db)] => Some(db),
            _ => None,
        }
    }

    /// Blind write, routed by key.
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the target is degraded.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        self.shard(self.shard_for(&key))?.put(key, value)
    }

    /// Delete (tombstone write), routed by key.
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the target is degraded.
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        self.shard(self.shard_for(&key))?.delete(key)
    }

    /// Merge-operator delta write, routed by key.
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the target is degraded.
    pub fn apply_delta(&self, key: impl Into<Bytes>, delta: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        self.shard(self.shard_for(&key))?.apply_delta(key, delta)
    }

    /// The paper's zero-seek checked insert (§3.1.2), routed by key —
    /// a key can only ever live in its own shard, so the existence
    /// probe stays shard-local.
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the target is degraded.
    pub fn insert_if_not_exists(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Result<bool> {
        let key = key.into();
        self.shard(self.shard_for(&key))?
            .insert_if_not_exists(key, value)
    }

    /// Nowait blind write, routed by key: applied but not yet durable.
    /// Returns `(shard, commit_target)` — the write is durable once
    /// [`durable_lsn`](Self::durable_lsn) of that shard reaches the
    /// target (see [`crate::BLsmTree::put_nowait`]); retire batches with
    /// [`commit_group`](Self::commit_group).
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the target is degraded.
    pub fn put_nowait(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Result<(usize, u64)> {
        let key = key.into();
        let i = self.shard_for(&key);
        Ok((i, self.shard(i)?.put_nowait(key, value)?))
    }

    /// Nowait delete, routed by key (see [`put_nowait`](Self::put_nowait)).
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the target is degraded.
    pub fn delete_nowait(&self, key: impl Into<Bytes>) -> Result<(usize, u64)> {
        let key = key.into();
        let i = self.shard_for(&key);
        Ok((i, self.shard(i)?.delete_nowait(key)?))
    }

    /// Nowait delta write, routed by key (see
    /// [`put_nowait`](Self::put_nowait)).
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the target is degraded.
    pub fn apply_delta_nowait(
        &self,
        key: impl Into<Bytes>,
        delta: impl Into<Bytes>,
    ) -> Result<(usize, u64)> {
        let key = key.into();
        let i = self.shard_for(&key);
        Ok((i, self.shard(i)?.apply_delta_nowait(key, delta)?))
    }

    /// Nowait checked insert, routed by key: `(inserted, shard,
    /// commit_target)` (see [`put_nowait`](Self::put_nowait)).
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the target is degraded.
    pub fn insert_if_not_exists_nowait(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Result<(bool, usize, u64)> {
        let key = key.into();
        let i = self.shard_for(&key);
        let (inserted, target) = self.shard(i)?.insert_if_not_exists_nowait(key, value)?;
        Ok((inserted, i, target))
    }

    /// Forces a commit group on shard `i`, returning its new durable
    /// horizon (see [`crate::BLsmTree::commit_group`]).
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the shard is degraded.
    pub fn commit_group(&self, i: usize) -> Result<u64> {
        self.shard(i)?.commit_group()
    }

    /// Shard `i`'s durable WAL horizon — an atomic read (see
    /// [`crate::BLsmTree::durable_lsn`]).
    ///
    /// # Errors
    ///
    /// Typed shard error when the shard is degraded.
    pub fn durable_lsn(&self, i: usize) -> Result<u64> {
        Ok(self.shard(i)?.durable_lsn())
    }

    /// Point lookup — lock-free within the owning shard.
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the target is degraded.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        self.shard(self.shard_for(key))?.get(key)
    }

    /// Existence check — lock-free within the owning shard.
    ///
    /// # Errors
    ///
    /// Shard engine errors; typed shard error when the target is degraded.
    pub fn exists(&self, key: &[u8]) -> Result<bool> {
        self.shard(self.shard_for(key))?.exists(key)
    }

    /// Ordered scan from `from`: scatter to every shard overlapping the
    /// range, gather with a k-way merge (see [`scatter_scan`]).
    ///
    /// # Errors
    ///
    /// Fails if any overlapping shard is degraded or errors.
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        scatter_scan(&self.bounds, from, None, limit, |i, f, t, l| match t {
            Some(t) => self.shard(i)?.scan_range(f, t, l),
            None => self.shard(i)?.scan(f, l),
        })
    }

    /// Ordered scan of `[from, to)` — scatter-gather like
    /// [`ShardedBLsm::scan`].
    ///
    /// # Errors
    ///
    /// Fails if any overlapping shard is degraded or errors.
    pub fn scan_range(&self, from: &[u8], to: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        scatter_scan(&self.bounds, from, Some(to), limit, |i, f, t, l| match t {
            Some(t) => self.shard(i)?.scan_range(f, t, l),
            None => self.shard(i)?.scan(f, l),
        })
    }

    /// Aggregated counters across serving shards (degraded shards
    /// contribute nothing). `backpressure` is the *worst* shard's level
    /// — per-shard levels come from [`ShardedBLsm::backpressure`].
    pub fn stats(&self) -> TreeStatsSnapshot {
        let mut total = TreeStatsSnapshot::default();
        for slot in &self.shards {
            if let ShardSlot::Serving(db) = slot {
                total.accumulate(&db.stats());
            }
        }
        total
    }

    /// Per-shard counter snapshots; `None` marks a degraded shard.
    pub fn shard_stats(&self) -> Vec<Option<TreeStatsSnapshot>> {
        self.shards
            .iter()
            .map(|s| match s {
                ShardSlot::Serving(db) => Some(db.stats()),
                ShardSlot::Degraded(_) => None,
            })
            .collect()
    }

    /// Shard `i`'s live spring-and-gear backpressure level — the
    /// admission signal that paces only *this* shard's writers. `None`
    /// for a degraded shard.
    pub fn backpressure(&self, i: usize) -> Option<BackpressureLevel> {
        match &self.shards[i] {
            ShardSlot::Serving(db) => Some(db.backpressure()),
            ShardSlot::Degraded(_) => None,
        }
    }

    /// A cloneable lock-free read handle over every serving shard
    /// (hand one to each server connection).
    pub fn read_view(&self) -> ShardedReadView {
        ShardedReadView {
            bounds: self.bounds.clone(),
            views: self
                .shards
                .iter()
                .map(|s| match s {
                    ShardSlot::Serving(db) => Some(db.read_view()),
                    ShardSlot::Degraded(_) => None,
                })
                .collect::<Vec<_>>()
                .into(),
        }
    }

    /// Checkpoints every serving shard, then bumps the shard-manifest
    /// epoch to record the settled generation.
    ///
    /// # Errors
    ///
    /// Returns the first shard checkpoint or manifest-save error
    /// (after attempting every shard).
    pub fn checkpoint(&mut self) -> Result<()> {
        let mut first_err = None;
        for slot in &self.shards {
            if let ShardSlot::Serving(db) = slot {
                if let Err(e) = db.with_tree(BLsmTree::checkpoint) {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(store) = &mut self.manifest {
            if let Err(e) = store.save(&shard_manifest_payload(&self.bounds)) {
                first_err.get_or_insert(e);
            } else {
                self.epoch = store.epoch();
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Stops every shard's merge thread, completes pending merges,
    /// checkpoints, bumps the manifest epoch, and returns the settled
    /// trees (shard order; degraded shards omitted).
    ///
    /// # Errors
    ///
    /// Returns the first shard shutdown or manifest error (after
    /// attempting every shard — one failing shard never blocks its
    /// siblings' clean shutdown).
    pub fn shutdown(mut self) -> Result<Vec<BLsmTree>> {
        let mut trees = Vec::with_capacity(self.shards.len());
        let mut first_err = None;
        for slot in self.shards.drain(..) {
            if let ShardSlot::Serving(db) = slot {
                match db.shutdown() {
                    Ok(tree) => trees.push(tree),
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        if let Some(store) = &mut self.manifest {
            if let Err(e) = store.save(&shard_manifest_payload(&self.bounds)) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(trees),
            Some(e) => Err(e),
        }
    }

    /// Where online shard split would go — documented seam, not
    /// implemented (boundaries are fixed at creation, as re-partitioning
    /// was out of scope for the paper too). See the module docs for the
    /// split recipe this store is already shaped for.
    ///
    /// # Errors
    ///
    /// Always `InvalidFormat`: split is not implemented.
    pub fn split_seam(&self, _shard: usize, _at: &[u8]) -> Result<()> {
        Err(StorageError::InvalidFormat(
            "online shard split is not implemented; boundaries are fixed at creation \
             (see ShardedBLsm module docs for the seam)"
                .into(),
        ))
    }
}

/// Lock-free, cloneable read handle over every serving shard: the
/// sharded analogue of [`ReadView`]. Reads and scans route exactly like
/// the store's own; a degraded shard yields the typed
/// [`ComponentId::Shard`] error.
#[derive(Clone)]
pub struct ShardedReadView {
    bounds: Arc<[Bytes]>,
    views: Arc<[Option<ReadView>]>,
}

impl std::fmt::Debug for ShardedReadView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedReadView")
            .field("shards", &self.views.len())
            .finish_non_exhaustive()
    }
}

impl ShardedReadView {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.views.len()
    }

    /// Index of the shard owning `key`.
    pub fn shard_for(&self, key: &[u8]) -> usize {
        route::shard_for(&self.bounds, key)
    }

    fn view(&self, i: usize) -> Result<&ReadView> {
        self.views[i].as_ref().ok_or_else(|| {
            StorageError::corruption(
                ComponentId::Shard,
                None,
                format!("shard {i} is degraded and cannot serve reads"),
            )
        })
    }

    /// Point lookup — lock-free within the owning shard.
    ///
    /// # Errors
    ///
    /// Typed shard error when the owning shard is degraded.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        self.view(self.shard_for(key))?.get(key)
    }

    /// Existence check — lock-free within the owning shard.
    ///
    /// # Errors
    ///
    /// Typed shard error when the owning shard is degraded.
    pub fn exists(&self, key: &[u8]) -> Result<bool> {
        self.view(self.shard_for(key))?.exists(key)
    }

    /// Scatter-gather ordered scan (see [`scatter_scan`]).
    ///
    /// # Errors
    ///
    /// Fails if any overlapping shard is degraded or errors.
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        scatter_scan(&self.bounds, from, None, limit, |i, f, t, l| match t {
            Some(t) => self.view(i)?.scan_range(f, t, l),
            None => self.view(i)?.scan(f, l),
        })
    }

    /// Scatter-gather ordered scan of `[from, to)`.
    ///
    /// # Errors
    ///
    /// Fails if any overlapping shard is degraded or errors.
    pub fn scan_range(&self, from: &[u8], to: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        scatter_scan(&self.bounds, from, Some(to), limit, |i, f, t, l| match t {
            Some(t) => self.view(i)?.scan_range(f, t, l),
            None => self.view(i)?.scan(f, l),
        })
    }

    /// Aggregated counters across serving shards (worst backpressure).
    pub fn stats(&self) -> TreeStatsSnapshot {
        let mut total = TreeStatsSnapshot::default();
        for v in self.views.iter().flatten() {
            total.accumulate(&v.stats());
        }
        total
    }

    /// Per-shard counter snapshots; `None` marks a degraded shard.
    pub fn shard_stats(&self) -> Vec<Option<TreeStatsSnapshot>> {
        self.views
            .iter()
            .map(|v| v.as_ref().map(ReadView::stats))
            .collect()
    }

    /// Shard `i`'s live backpressure level (`None` = degraded) — what
    /// per-shard admission control keys off.
    pub fn backpressure(&self, i: usize) -> Option<BackpressureLevel> {
        self.views[i].as_ref().map(|v| v.stats().backpressure)
    }

    /// Scrubs every serving shard, summing the findings; degraded
    /// shards are reported as an error line each (they cannot be
    /// scrubbed, which is itself a finding).
    pub fn scrub(&self) -> TreeScrubReport {
        let mut total = TreeScrubReport::default();
        for (i, v) in self.views.iter().enumerate() {
            match v {
                Some(v) => {
                    let r = v.scrub();
                    total.components_checked += r.components_checked;
                    total.pages_checked += r.pages_checked;
                    total.entries_checked += r.entries_checked;
                    total
                        .errors
                        .extend(r.errors.into_iter().map(|e| format!("shard {i}: {e}")));
                }
                None => total
                    .errors
                    .push(format!("shard {i}: degraded, not scrubbed")),
            }
        }
        total
    }
}

/// Scatter-gather scan: fan the range out to every shard whose key
/// range overlaps `[from, to)`, then gather the per-shard (already
/// sorted) result streams through a k-way merge into one globally
/// key-ordered stream, truncated to `limit`.
///
/// With range-partitioned shards the streams are disjoint, so the merge
/// degenerates to concatenation — but it is written as a genuine k-way
/// merge (smallest-head heap, ties broken by shard index) so the gather
/// step is correct for *any* boundary configuration the router is handed,
/// which is exactly the property an online split would lean on.
///
/// Each overlapping shard is asked for up to the full remaining `limit`
/// (the router cannot know how the range's rows distribute before
/// looking); shards are visited in routing order so the common
/// single-shard scan stops after one fetch.
fn scatter_scan(
    bounds: &[Bytes],
    from: &[u8],
    to: Option<&[u8]>,
    limit: usize,
    fetch: impl Fn(usize, &[u8], Option<&[u8]>, usize) -> Result<Vec<ScanItem>>,
) -> Result<Vec<ScanItem>> {
    if limit == 0 {
        return Ok(Vec::new());
    }
    let (first, last) = route::shards_overlapping(bounds, from, to);
    let mut streams: Vec<Vec<ScanItem>> = Vec::with_capacity(last - first + 1);
    let mut gathered = 0usize;
    for i in first..=last {
        // Scatter: shard i's slice of the range starts at `from` only
        // for the first shard; later shards start at their lower bound
        // (their whole range is inside the scan).
        let shard_from: &[u8] = if i == first {
            from
        } else {
            bounds[i - 1].as_ref()
        };
        let rows = fetch(i, shard_from, to, limit)?;
        gathered += rows.len();
        streams.push(rows);
        // Range partitioning means shards are visited in key order: once
        // `limit` rows are gathered, later shards can only contribute
        // rows that sort after everything kept.
        if gathered >= limit {
            break;
        }
    }
    Ok(route::kway_merge(streams, limit))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use blsm_memtable::AppendOperator;
    use blsm_storage::MemDevice;

    fn mem_shards(n: usize) -> (SharedDevice, Vec<(SharedDevice, SharedDevice)>) {
        let manifest: SharedDevice = Arc::new(MemDevice::new());
        let devs = (0..n)
            .map(|_| {
                (
                    Arc::new(MemDevice::new()) as SharedDevice,
                    Arc::new(MemDevice::new()) as SharedDevice,
                )
            })
            .collect();
        (manifest, devs)
    }

    fn small_config() -> ShardedConfig {
        ShardedConfig {
            tree: BLsmConfig {
                mem_budget: 64 << 10,
                ..Default::default()
            },
            pool_pages: 256,
            quantum: 1 << 20,
        }
    }

    fn open(
        manifest: &SharedDevice,
        devs: &[(SharedDevice, SharedDevice)],
        bounds: Vec<Bytes>,
    ) -> ShardedBLsm {
        let devs = devs.to_vec();
        ShardedBLsm::open_with_devices(
            manifest.clone(),
            bounds,
            move |i| Ok(devs[i].clone()),
            &small_config(),
            &(Arc::new(AppendOperator) as Arc<dyn MergeOperator>),
        )
        .unwrap()
    }

    fn key(i: u32) -> Bytes {
        // Two-byte big-endian hashed prefix so even_bounds routing spreads.
        let mut k = ((i.wrapping_mul(2_654_435_761) >> 16) as u16)
            .to_be_bytes()
            .to_vec();
        k.extend_from_slice(format!("user{i:08}").as_bytes());
        Bytes::from(k)
    }

    #[test]
    fn puts_route_and_read_back_across_shards() {
        let (manifest, devs) = mem_shards(4);
        let store = open(&manifest, &devs, ShardedBLsm::even_bounds(4));
        assert_eq!(store.shard_count(), 4);
        for i in 0..2_000u32 {
            store.put(key(i), Bytes::from(format!("v{i}"))).unwrap();
        }
        for i in (0..2_000u32).step_by(37) {
            assert_eq!(
                store.get(&key(i)).unwrap().unwrap(),
                Bytes::from(format!("v{i}")),
            );
        }
        // Writes landed on more than one shard.
        let busy = store
            .shard_stats()
            .iter()
            .filter(|s| s.is_some_and(|s| s.writes > 0))
            .count();
        assert!(busy >= 2, "writes funnelled into {busy} shard(s)");
        drop(store);
    }

    #[test]
    fn scans_straddle_shard_boundaries_in_key_order() {
        let (manifest, devs) = mem_shards(4);
        let store = open(&manifest, &devs, ShardedBLsm::even_bounds(4));
        // Sequential two-byte prefixes: keys cross every boundary.
        let mk = |i: u16| {
            let mut k = i.to_be_bytes().to_vec();
            k.extend_from_slice(b"-row");
            Bytes::from(k)
        };
        for i in 0..1_024u16 {
            store.put(mk(i * 64), Bytes::from(format!("v{i}"))).unwrap();
        }
        let rows = store.scan(&mk(0), 1_024).unwrap();
        assert_eq!(rows.len(), 1_024);
        for (j, row) in rows.iter().enumerate() {
            assert_eq!(row.key, mk(j as u16 * 64), "row {j} out of order");
        }
        // A bounded range that starts in shard 1 and ends in shard 2.
        let rows = store.scan_range(&mk(0x4100), &mk(0x8100), 10_000).unwrap();
        assert!(!rows.is_empty());
        assert!(rows.windows(2).all(|w| w[0].key < w[1].key));
        assert!(rows.first().unwrap().key.as_ref() >= mk(0x4100).as_ref());
        assert!(rows.last().unwrap().key.as_ref() < mk(0x8100).as_ref());
        // Scatter-gather via the read view agrees with the store.
        let view = store.read_view();
        assert_eq!(view.scan(&mk(0), 1_024).unwrap().len(), 1_024);
    }

    #[test]
    fn manifest_persists_bounds_and_bumps_epoch() {
        let (manifest, devs) = mem_shards(3);
        let bounds = vec![Bytes::from_static(b"g"), Bytes::from_static(b"p")];
        let store = open(&manifest, &devs, bounds.clone());
        let first_epoch = store.epoch();
        store
            .put(Bytes::from_static(b"apple"), Bytes::from_static(b"1"))
            .unwrap();
        store
            .put(Bytes::from_static(b"horse"), Bytes::from_static(b"2"))
            .unwrap();
        store
            .put(Bytes::from_static(b"zebra"), Bytes::from_static(b"3"))
            .unwrap();
        store.shutdown().unwrap();
        // Reopen with *different* requested bounds: persisted layout wins.
        let store = open(&manifest, &devs, vec![Bytes::from_static(b"zzz")]);
        assert_eq!(store.bounds(), &bounds[..]);
        assert!(store.epoch() > first_epoch, "epoch must advance per open");
        assert_eq!(store.get(b"apple").unwrap().unwrap().as_ref(), b"1");
        assert_eq!(store.get(b"horse").unwrap().unwrap().as_ref(), b"2");
        assert_eq!(store.get(b"zebra").unwrap().unwrap().as_ref(), b"3");
    }

    #[test]
    fn degraded_shard_serves_typed_error_while_siblings_serve() {
        let (manifest, devs) = mem_shards(2);
        let bounds = vec![Bytes::from_static(b"m")];
        {
            let store = open(&manifest, &devs, bounds.clone());
            store
                .put(Bytes::from_static(b"aa"), Bytes::from_static(b"low"))
                .unwrap();
            store
                .put(Bytes::from_static(b"zz"), Bytes::from_static(b"high"))
                .unwrap();
            store.shutdown().unwrap();
        }
        // Shard 0's devices "fail" on reopen.
        let devs2 = devs.clone();
        let store = ShardedBLsm::open_with_devices(
            manifest.clone(),
            bounds,
            move |i| {
                if i == 0 {
                    Err(StorageError::Io(std::io::Error::other("disk gone")))
                } else {
                    Ok(devs2[i].clone())
                }
            },
            &small_config(),
            &(Arc::new(AppendOperator) as Arc<dyn MergeOperator>),
        )
        .unwrap();
        let degraded = store.degraded_shards();
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].shard, 0);
        // Requests to the degraded shard: typed ComponentId::Shard error.
        let err = store.get(b"aa").unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::Corruption {
                    component: ComponentId::Shard,
                    ..
                }
            ),
            "expected typed shard error, got {err:?}"
        );
        assert!(store
            .put(Bytes::from_static(b"ab"), Bytes::from_static(b"x"))
            .is_err());
        // The sibling shard serves reads and writes normally.
        assert_eq!(store.get(b"zz").unwrap().unwrap().as_ref(), b"high");
        store
            .put(Bytes::from_static(b"zy"), Bytes::from_static(b"new"))
            .unwrap();
        assert_eq!(store.get(b"zy").unwrap().unwrap().as_ref(), b"new");
        // The read view reports the same degradation, and scrub calls
        // the degraded shard out as a finding.
        let view = store.read_view();
        assert!(view.get(b"aa").is_err());
        assert!(view.backpressure(0).is_none());
        assert!(view.scrub().errors.iter().any(|e| e.contains("shard 0")));
    }

    #[test]
    fn split_seam_is_documented_not_implemented() {
        let (manifest, devs) = mem_shards(2);
        let store = open(&manifest, &devs, vec![Bytes::from_static(b"m")]);
        assert!(store.split_seam(0, b"g").is_err());
    }
}
