//! Key-range routing shared by the two partitioned layers.
//!
//! Both [`crate::PartitionedBLsm`] (the in-process partition-scheduler
//! experiment of §3.3) and [`crate::ShardedBLsm`] (the durable serving
//! tier with per-shard WALs) split one keyspace over N trees by sorted
//! boundary keys. The routing arithmetic — which tree owns a key, which
//! trees a range touches, how to cut a keyspace evenly — is identical,
//! so it lives here once.
//!
//! The boundary convention: `bounds[i]` is the *inclusive lower bound*
//! of partition `i + 1`; partition 0 covers everything below
//! `bounds[0]`. `bounds.len() + 1` partitions cover the whole keyspace
//! with no gaps.

use bytes::Bytes;

/// Index of the partition owning `key` under sorted `bounds`.
pub(crate) fn shard_for(bounds: &[Bytes], key: &[u8]) -> usize {
    bounds.partition_point(|b| b.as_ref() <= key)
}

/// Inclusive range of partition indexes a scan of `[from, to)` can
/// touch (`to = None` = unbounded above). The upper index is the
/// partition owning the last possible key of the range.
pub(crate) fn shards_overlapping(
    bounds: &[Bytes],
    from: &[u8],
    to: Option<&[u8]>,
) -> (usize, usize) {
    let first = shard_for(bounds, from);
    let last = match to {
        // `to` is exclusive: a range ending exactly on a boundary key
        // never reads the partition that starts there.
        Some(to) => bounds.partition_point(|b| b.as_ref() < to),
        None => bounds.len(),
    };
    (first, last.max(first))
}

/// Validates that `bounds` are strictly sorted (the precondition every
/// router relies on for binary-search routing).
pub(crate) fn bounds_are_sorted(bounds: &[Bytes]) -> bool {
    bounds.windows(2).all(|w| w[0] < w[1])
}

/// `n - 1` boundaries cutting the keyspace into `n` byte-wise even
/// shards: boundary `i` is the big-endian two-byte value
/// `floor(65536 * i / n)`. Even cuts are the right default for hashed
/// or uniformly distributed keys; callers with skewed keyspaces pass
/// their own boundaries.
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds 65536 (two bytes cannot cut finer).
pub(crate) fn even_bounds(n: usize) -> Vec<Bytes> {
    assert!(
        (1..=65_536).contains(&n),
        "shard count must be in 1..=65536"
    );
    (1..n)
        .map(|i| {
            let cut = ((i as u64) << 16) / n as u64;
            Bytes::copy_from_slice(&(cut as u16).to_be_bytes())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn routing_respects_inclusive_lower_bounds() {
        let bounds = vec![Bytes::from_static(b"g"), Bytes::from_static(b"p")];
        assert_eq!(shard_for(&bounds, b""), 0);
        assert_eq!(shard_for(&bounds, b"f"), 0);
        assert_eq!(shard_for(&bounds, b"g"), 1);
        assert_eq!(shard_for(&bounds, b"o"), 1);
        assert_eq!(shard_for(&bounds, b"p"), 2);
        assert_eq!(shard_for(&bounds, b"zz"), 2);
    }

    #[test]
    fn overlap_covers_exactly_the_touched_shards() {
        let bounds = vec![Bytes::from_static(b"g"), Bytes::from_static(b"p")];
        assert_eq!(shards_overlapping(&bounds, b"a", Some(b"c")), (0, 0));
        assert_eq!(shards_overlapping(&bounds, b"a", Some(b"h")), (0, 1));
        assert_eq!(shards_overlapping(&bounds, b"a", None), (0, 2));
        // An exclusive `to` equal to a boundary stops short of the
        // partition that starts there.
        assert_eq!(shards_overlapping(&bounds, b"a", Some(b"g")), (0, 0));
        assert_eq!(shards_overlapping(&bounds, b"h", Some(b"q")), (1, 2));
        // Degenerate (empty) range still yields a well-formed pair.
        assert_eq!(shards_overlapping(&bounds, b"q", Some(b"a")), (2, 2));
    }

    #[test]
    fn even_bounds_cut_the_keyspace() {
        assert!(even_bounds(1).is_empty());
        let b4 = even_bounds(4);
        assert_eq!(b4.len(), 3);
        assert!(bounds_are_sorted(&b4));
        assert_eq!(b4[0].as_ref(), &[0x40, 0x00]);
        assert_eq!(b4[1].as_ref(), &[0x80, 0x00]);
        assert_eq!(b4[2].as_ref(), &[0xC0, 0x00]);
        // Every first byte routes somewhere, and the spread is even.
        let mut counts = vec![0usize; 4];
        for byte in 0..=255u8 {
            counts[shard_for(&b4, &[byte, 0])] += 1;
        }
        assert!(counts.iter().all(|&c| c == 64), "{counts:?}");
    }
}
