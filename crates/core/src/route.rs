//! Key-range routing shared by the two partitioned layers.
//!
//! Both [`crate::PartitionedBLsm`] (the in-process partition-scheduler
//! experiment of §3.3) and [`crate::ShardedBLsm`] (the durable serving
//! tier with per-shard WALs) split one keyspace over N trees by sorted
//! boundary keys. The routing arithmetic — which tree owns a key, which
//! trees a range touches, how to cut a keyspace evenly — is identical,
//! so it lives here once.
//!
//! The boundary convention: `bounds[i]` is the *inclusive lower bound*
//! of partition `i + 1`; partition 0 covers everything below
//! `bounds[0]`. `bounds.len() + 1` partitions cover the whole keyspace
//! with no gaps.

use bytes::Bytes;

use crate::read::ScanItem;

/// Index of the partition owning `key` under sorted `bounds`.
pub(crate) fn shard_for(bounds: &[Bytes], key: &[u8]) -> usize {
    bounds.partition_point(|b| b.as_ref() <= key)
}

/// Inclusive range of partition indexes a scan of `[from, to)` can
/// touch (`to = None` = unbounded above). The upper index is the
/// partition owning the last possible key of the range.
pub(crate) fn shards_overlapping(
    bounds: &[Bytes],
    from: &[u8],
    to: Option<&[u8]>,
) -> (usize, usize) {
    let first = shard_for(bounds, from);
    let last = match to {
        // `to` is exclusive: a range ending exactly on a boundary key
        // never reads the partition that starts there.
        Some(to) => bounds.partition_point(|b| b.as_ref() < to),
        None => bounds.len(),
    };
    (first, last.max(first))
}

/// Validates that `bounds` are strictly sorted (the precondition every
/// router relies on for binary-search routing).
pub(crate) fn bounds_are_sorted(bounds: &[Bytes]) -> bool {
    bounds.windows(2).all(|w| w[0] < w[1])
}

/// `n - 1` boundaries cutting the keyspace into `n` byte-wise even
/// shards: boundary `i` is the big-endian two-byte value
/// `floor(65536 * i / n)`. Even cuts are the right default for hashed
/// or uniformly distributed keys; callers with skewed keyspaces pass
/// their own boundaries.
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds 65536 (two bytes cannot cut finer).
pub(crate) fn even_bounds(n: usize) -> Vec<Bytes> {
    assert!(
        (1..=65_536).contains(&n),
        "shard count must be in 1..=65536"
    );
    (1..n)
        .map(|i| {
            let cut = ((i as u64) << 16) / n as u64;
            Bytes::copy_from_slice(&(cut as u16).to_be_bytes())
        })
        .collect()
}

/// K-way merge of sorted [`ScanItem`] streams, smallest key first, ties
/// broken by stream index (earlier stream wins, duplicate suppressed) —
/// the gather half of every scatter-gather scan. Lives beside the
/// scatter arithmetic because the two must agree on the boundary
/// convention: the scatter step visits shards in routing order, and this
/// merge's tie-break assumes that order (the earlier stream holds the
/// authoritative row for a duplicated key).
pub(crate) fn kway_merge(streams: Vec<Vec<ScanItem>>, limit: usize) -> Vec<ScanItem> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    if streams.len() == 1 {
        let mut only = streams.into_iter().next().unwrap_or_default();
        only.truncate(limit);
        return only;
    }
    let mut heap: BinaryHeap<Reverse<(Bytes, usize, usize)>> = streams
        .iter()
        .enumerate()
        .filter_map(|(s, rows)| rows.first().map(|r| Reverse((r.key.clone(), s, 0))))
        .collect();
    let mut out: Vec<ScanItem> = Vec::with_capacity(limit.min(1024));
    while let Some(Reverse((key, s, pos))) = heap.pop() {
        if out.len() >= limit {
            break;
        }
        let row = streams[s][pos].clone();
        if out.last().is_none_or(|r: &ScanItem| r.key != key) {
            out.push(row);
        }
        if let Some(next) = streams[s].get(pos + 1) {
            heap.push(Reverse((next.key.clone(), s, pos + 1)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn routing_respects_inclusive_lower_bounds() {
        let bounds = vec![Bytes::from_static(b"g"), Bytes::from_static(b"p")];
        assert_eq!(shard_for(&bounds, b""), 0);
        assert_eq!(shard_for(&bounds, b"f"), 0);
        assert_eq!(shard_for(&bounds, b"g"), 1);
        assert_eq!(shard_for(&bounds, b"o"), 1);
        assert_eq!(shard_for(&bounds, b"p"), 2);
        assert_eq!(shard_for(&bounds, b"zz"), 2);
    }

    #[test]
    fn overlap_covers_exactly_the_touched_shards() {
        let bounds = vec![Bytes::from_static(b"g"), Bytes::from_static(b"p")];
        assert_eq!(shards_overlapping(&bounds, b"a", Some(b"c")), (0, 0));
        assert_eq!(shards_overlapping(&bounds, b"a", Some(b"h")), (0, 1));
        assert_eq!(shards_overlapping(&bounds, b"a", None), (0, 2));
        // An exclusive `to` equal to a boundary stops short of the
        // partition that starts there.
        assert_eq!(shards_overlapping(&bounds, b"a", Some(b"g")), (0, 0));
        assert_eq!(shards_overlapping(&bounds, b"h", Some(b"q")), (1, 2));
        // Degenerate (empty) range still yields a well-formed pair.
        assert_eq!(shards_overlapping(&bounds, b"q", Some(b"a")), (2, 2));
    }

    fn item(k: &str, v: &str) -> ScanItem {
        ScanItem {
            key: Bytes::copy_from_slice(k.as_bytes()),
            value: Bytes::copy_from_slice(v.as_bytes()),
        }
    }

    #[test]
    fn kway_merge_interleaves_and_dedupes() {
        let merged = kway_merge(
            vec![
                vec![item("a", "1"), item("c", "1"), item("e", "1")],
                vec![item("b", "2"), item("c", "2"), item("d", "2")],
            ],
            10,
        );
        let keys: Vec<&[u8]> = merged.iter().map(|r| r.key.as_ref()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b", b"c", b"d", b"e"]);
        // The tie on "c" kept the earlier stream's row.
        assert_eq!(merged[2].value.as_ref(), b"1");
        // Limit truncates.
        assert_eq!(
            kway_merge(vec![vec![item("a", "1")], vec![item("b", "2")]], 1).len(),
            1
        );
    }

    #[test]
    fn kway_merge_handles_empty_inputs() {
        // No streams at all (a scan that overlapped zero shards).
        assert!(kway_merge(Vec::new(), 10).is_empty());
        // Every stream empty (shards overlapped, none had rows).
        assert!(kway_merge(vec![Vec::new(), Vec::new()], 10).is_empty());
        // Empty streams interleaved with full ones must not stall the
        // heap or shift the order.
        let merged = kway_merge(
            vec![
                Vec::new(),
                vec![item("b", "2")],
                Vec::new(),
                vec![item("a", "4")],
            ],
            10,
        );
        let keys: Vec<&[u8]> = merged.iter().map(|r| r.key.as_ref()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b"]);
        // A single stream (the common one-shard scan) fast-paths but
        // still honors the limit; zero limit yields zero rows.
        assert_eq!(
            kway_merge(vec![vec![item("a", "1"), item("b", "1")]], 1).len(),
            1
        );
        assert!(kway_merge(vec![vec![item("a", "1")]], 0).is_empty());
    }

    #[test]
    fn kway_merge_dedupes_across_three_streams() {
        // The same key in *every* stream (a row duplicated across shards
        // mid-migration): exactly one survivor, from the lowest stream
        // index, and later keys are unaffected.
        let merged = kway_merge(
            vec![
                vec![item("k", "s0"), item("z", "s0")],
                vec![item("k", "s1")],
                vec![item("k", "s2"), item("m", "s2")],
            ],
            10,
        );
        let keys: Vec<&[u8]> = merged.iter().map(|r| r.key.as_ref()).collect();
        assert_eq!(keys, vec![b"k" as &[u8], b"m", b"z"]);
        assert_eq!(merged[0].value.as_ref(), b"s0");
    }

    #[test]
    fn kway_merge_dedupe_does_not_eat_the_limit() {
        // limit counts *emitted* rows: with limit 2 and a duplicated
        // head key, the suppressed duplicate must not consume a slot.
        let merged = kway_merge(
            vec![
                vec![item("a", "s0"), item("c", "s0")],
                vec![item("a", "s1"), item("b", "s1")],
            ],
            2,
        );
        let keys: Vec<&[u8]> = merged.iter().map(|r| r.key.as_ref()).collect();
        assert_eq!(keys, vec![b"a" as &[u8], b"b"]);
    }

    #[test]
    fn overlap_with_unbounded_end_reaches_the_last_shard() {
        let bounds = vec![Bytes::from_static(b"g"), Bytes::from_static(b"p")];
        // Unbounded-end scans cover through the final shard from any
        // starting shard.
        assert_eq!(shards_overlapping(&bounds, b"", None), (0, 2));
        assert_eq!(shards_overlapping(&bounds, b"h", None), (1, 2));
        assert_eq!(shards_overlapping(&bounds, b"zz", None), (2, 2));
        // A start exactly on a boundary begins in the shard that the
        // boundary opens.
        assert_eq!(shards_overlapping(&bounds, b"p", None), (2, 2));
        // No bounds at all: one shard owns everything, bounded or not.
        assert_eq!(shards_overlapping(&[], b"anything", None), (0, 0));
        assert_eq!(shards_overlapping(&[], b"", Some(b"zzz")), (0, 0));
    }

    #[test]
    fn even_bounds_cut_the_keyspace() {
        assert!(even_bounds(1).is_empty());
        let b4 = even_bounds(4);
        assert_eq!(b4.len(), 3);
        assert!(bounds_are_sorted(&b4));
        assert_eq!(b4[0].as_ref(), &[0x40, 0x00]);
        assert_eq!(b4[1].as_ref(), &[0x80, 0x00]);
        assert_eq!(b4[2].as_ref(), &[0xC0, 0x00]);
        // Every first byte routes somewhere, and the spread is even.
        let mut counts = vec![0usize; 4];
        for byte in 0..=255u8 {
            counts[shard_for(&b4, &[byte, 0])] += 1;
        }
        assert!(counts.iter().all(|&c| c == 64), "{counts:?}");
    }
}
