//! Level merge schedulers — the paper's primary contribution.
//!
//! "We distinguish level schedulers from existing partition schedulers and
//! present a level scheduler we call the spring and gear scheduler" (§1).
//! A level scheduler decides *which level to merge next and how fast*
//! (Figure 4), as opposed to a partition scheduler, which decides which
//! key-range partition to merge (Figure 3).
//!
//! The engine consults the scheduler before every application write; the
//! returned [`WorkPlan`] says how many input bytes each running merge must
//! consume before the write may proceed, and whether writes are currently
//! blocked outright. Because merge work is paced in small inline quanta,
//! write latency is bounded by the plan size — this is how the paper
//! "bounds write latency without impacting throughput" (abstract).

use crate::progress::{outprogress, MergeProgress};

/// The spring-and-gear watermark state, exported as a shared backpressure
/// signal (§4.3's "spring").
///
/// The scheduler keeps `C0` occupancy between a low and a high water mark;
/// this enum names which regime the tree is in so layers *outside* the
/// engine — the serving layer's admission control, the STATS wire command —
/// read the same signal the scheduler paces writes with, instead of
/// inventing their own thresholds. Ordered by severity, so accumulating
/// partitions can take the `max`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum BackpressureLevel {
    /// `C0` is below the low water mark: writes flow freely, downstream
    /// merges idle.
    #[default]
    Idle,
    /// Between the marks: the spring is winding. The payload is how far
    /// into the band occupancy sits, in per-mille (0 = at the low mark,
    /// 1000 = at the high mark); merge work per write scales with it.
    Paced(u16),
    /// At or above the high water mark: backpressure ramps super-linearly
    /// and the engine is one spike away from the hard `C0` cap.
    Saturated,
}

impl BackpressureLevel {
    /// Classifies `C0` occupancy against the watermark fractions.
    pub fn from_occupancy(c0_bytes: u64, c0_cap: u64, low: f64, high: f64) -> BackpressureLevel {
        let occ = c0_bytes as f64 / c0_cap.max(1) as f64;
        if occ < low {
            BackpressureLevel::Idle
        } else if occ < high {
            let frac = (occ - low) / (high - low).max(f64::EPSILON);
            BackpressureLevel::Paced((frac.clamp(0.0, 1.0) * 1000.0).round() as u16)
        } else {
            BackpressureLevel::Saturated
        }
    }

    /// The winding fraction in `[0, 1]`: 0 when idle, 1 when saturated.
    pub fn fraction(&self) -> f64 {
        match self {
            BackpressureLevel::Idle => 0.0,
            BackpressureLevel::Paced(permille) => f64::from(*permille) / 1000.0,
            BackpressureLevel::Saturated => 1.0,
        }
    }

    /// True once occupancy has crossed the high water mark.
    pub fn is_saturated(&self) -> bool {
        matches!(self, BackpressureLevel::Saturated)
    }
}

/// Snapshot of tree state handed to the scheduler before each write.
#[derive(Debug, Clone, Copy)]
pub struct SchedInputs {
    /// Bytes currently buffered in `C0` (all tables).
    pub c0_bytes: u64,
    /// The `C0` fill unit (whole budget with snowshoveling, half without).
    pub c0_fill: u64,
    /// Hard cap on `C0` (the full memory budget).
    pub c0_cap: u64,
    /// Bytes of the incoming write.
    pub incoming: u64,
    /// Progress of the running `C0:C1` merge, if any.
    pub m01: Option<MergeProgress>,
    /// `C0` bytes consumed by the running `C0:C1` merge's input estimate
    /// (`|C0'|` at pass start).
    pub m01_c0_input: u64,
    /// Progress of the running `C1':C2` merge, if any.
    pub m12: Option<MergeProgress>,
    /// Current size of `C1` in data bytes.
    pub c1_bytes: u64,
    /// `ceil(R)` — the target level size ratio.
    pub r_ceil: u64,
}

/// How much merge work to perform before admitting the next write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkPlan {
    /// Input bytes the `C0:C1` merge must consume.
    pub merge01_bytes: u64,
    /// Input bytes the `C1':C2` merge must consume.
    pub merge12_bytes: u64,
}

/// A level scheduler (Figure 4): paces the two merges of the three-level
/// tree and applies backpressure to the application.
pub trait MergeScheduler: Send {
    /// Plans inline merge work for the next write.
    fn plan(&mut self, s: &SchedInputs) -> WorkPlan;

    /// True when a `C0:C1` merge pass should be started given current
    /// occupancy (and none is running).
    fn should_start_merge01(&self, s: &SchedInputs) -> bool;

    /// True if, upon `C0:C1` completion with `C1` over target, the engine
    /// must run the whole `C1':C2` merge synchronously (the naive
    /// scheduler's unbounded pause).
    fn blocking_merge12(&self) -> bool;

    /// Scheduler name for experiment output.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Naive
// ---------------------------------------------------------------------------

/// Merge-when-full (§3.2's strawman): no inline pacing at all. When `C0`
/// fills, the engine blocks the write and runs the entire merge; if `C1` is
/// also full it then runs the entire `C1':C2` merge too. Reproduces the
/// multi-second pauses of Figure 7 (right).
#[derive(Debug, Default)]
pub struct NaiveScheduler;

impl MergeScheduler for NaiveScheduler {
    fn plan(&mut self, _s: &SchedInputs) -> WorkPlan {
        WorkPlan::default()
    }

    fn should_start_merge01(&self, s: &SchedInputs) -> bool {
        // Only once completely full — the engine will then block on it.
        s.c0_bytes + s.incoming > s.c0_fill
    }

    fn blocking_merge12(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

// ---------------------------------------------------------------------------
// Gear
// ---------------------------------------------------------------------------

/// The gear scheduler (§4.1): merge completions are synchronized with the
/// processes that fill each component, like clock gears meeting at 12.
///
/// * The `C0:C1` merge is driven so `inprogress_1` matches the fill
///   fraction of the *other* `C0` half — when `C0` fills, the previous
///   `C0'` has been fully consumed and the hand-off is instantaneous.
/// * The `C1':C2` merge is driven so `inprogress_2` tracks
///   `outprogress_1` — after `ceil(R)` upstream sweeps (one "hour"), the
///   downstream merge completes exactly as `C1` fills.
#[derive(Debug, Default)]
pub struct GearScheduler;

impl MergeScheduler for GearScheduler {
    fn plan(&mut self, s: &SchedInputs) -> WorkPlan {
        let mut plan = WorkPlan::default();
        let mut out1 = None;
        if let Some(m01) = &s.m01 {
            // Fill fraction of the currently-filling C0 half.
            let fill = ((s.c0_bytes + s.incoming) as f64 / s.c0_fill.max(1) as f64).min(1.0);
            let target = fill;
            let deficit = (target - m01.inprogress()).max(0.0);
            plan.merge01_bytes = (deficit * m01.input_total as f64).ceil() as u64;
            out1 = Some(outprogress(
                (m01.inprogress() + deficit).min(1.0),
                s.c1_bytes,
                s.c0_fill,
                s.r_ceil,
            ));
        }
        if let Some(m12) = &s.m12 {
            // Without a running upstream merge, outprogress_1 still advances
            // with C1's accumulated fills.
            let target = out1.unwrap_or_else(|| outprogress(0.0, s.c1_bytes, s.c0_fill, s.r_ceil));
            let deficit = (target - m12.inprogress()).max(0.0);
            plan.merge12_bytes = (deficit * m12.input_total as f64).ceil() as u64;
        }
        plan
    }

    fn should_start_merge01(&self, s: &SchedInputs) -> bool {
        // Start as soon as a fill unit is ready; the merge then has the
        // whole next fill interval to complete.
        s.c0_bytes >= s.c0_fill
    }

    fn blocking_merge12(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "gear"
    }
}

// ---------------------------------------------------------------------------
// Spring and gear
// ---------------------------------------------------------------------------

/// The spring and gear scheduler (§4.3, Figure 6).
///
/// The gear scheduler's `C0`-side coupling is replaced by "a more natural
/// progress indicator: the fraction of C0 currently in use". `C0` is kept
/// between a low and a high water mark: below the low mark downstream
/// merges pause; between the marks merge work per write scales linearly
/// (the spring winds); above the high mark backpressure ramps
/// super-linearly so occupancy cannot pass the hard cap. This both
/// "absorbs load spikes" and keeps enough data in `C0` for snowshoveling
/// to pick long runs.
#[derive(Debug)]
pub struct SpringGearScheduler {
    /// Low water mark as a fraction of the hard cap.
    pub low: f64,
    /// High water mark as a fraction of the hard cap.
    pub high: f64,
}

impl SpringGearScheduler {
    /// Creates the scheduler with the given watermark fractions.
    pub fn new(low: f64, high: f64) -> SpringGearScheduler {
        assert!(0.0 < low && low < high && high <= 1.0);
        SpringGearScheduler { low, high }
    }
}

impl MergeScheduler for SpringGearScheduler {
    fn plan(&mut self, s: &SchedInputs) -> WorkPlan {
        let mut plan = WorkPlan::default();
        let occ = (s.c0_bytes + s.incoming) as f64 / s.c0_cap.max(1) as f64;
        let mut out1 = None;
        if let Some(m01) = &s.m01 {
            // The spring: proportional backpressure. At the low mark the
            // merge idles; at the high mark it consumes input at
            // steady-state rate × 2, pulling occupancy back down.
            let throttle = ((occ - self.low) / (self.high - self.low)).max(0.0);
            let throttle = throttle * throttle.clamp(1.0, 2.0); // super-linear above high
                                                                // Steady state: per byte written, the merge must consume
                                                                // input_total / c0_input bytes (it eats C0 plus the whole of C1
                                                                // over one pass).
            let rate = m01.input_total as f64 / s.m01_c0_input.max(1) as f64;
            plan.merge01_bytes = (s.incoming as f64 * rate * throttle).ceil() as u64;
            out1 = Some(outprogress(
                m01.inprogress(),
                s.c1_bytes,
                s.c0_cap,
                s.r_ceil,
            ));
        }
        if let Some(m12) = &s.m12 {
            // Downstream keeps the gear rule, as §4.3 prescribes ("the
            // downstream merge processes behave as they did in the gear
            // scheduler"). It also pauses when C0 drains below the low
            // mark, because outprogress_1 stops advancing then.
            let target = out1.unwrap_or_else(|| outprogress(0.0, s.c1_bytes, s.c0_cap, s.r_ceil));
            let deficit = (target - m12.inprogress()).max(0.0);
            plan.merge12_bytes = (deficit * m12.input_total as f64).ceil() as u64;
        }
        plan
    }

    fn should_start_merge01(&self, s: &SchedInputs) -> bool {
        // Passes begin at the high water mark: proportional backpressure
        // then holds occupancy there, so runs are nearly a full C0 long
        // (throughput parity with merge-when-full) while the band between
        // the marks absorbs load spikes (§4.3).
        s.c0_bytes as f64 >= self.high * s.c0_cap as f64
    }

    fn blocking_merge12(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "spring-and-gear"
    }
}

/// Constructs the configured scheduler.
pub fn make_scheduler(config: &crate::BLsmConfig) -> Box<dyn MergeScheduler> {
    match config.scheduler {
        crate::SchedulerKind::Naive => Box::new(NaiveScheduler),
        crate::SchedulerKind::Gear => Box::new(GearScheduler),
        crate::SchedulerKind::SpringGear => Box::new(SpringGearScheduler::new(
            config.low_water,
            config.high_water,
        )),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn inputs() -> SchedInputs {
        SchedInputs {
            c0_bytes: 0,
            c0_fill: 1000,
            c0_cap: 1000,
            incoming: 10,
            m01: None,
            m01_c0_input: 1000,
            m12: None,
            c1_bytes: 0,
            r_ceil: 4,
        }
    }

    #[test]
    fn naive_never_plans_inline_work() {
        let mut s = NaiveScheduler;
        let mut inp = inputs();
        inp.m01 = Some(MergeProgress {
            bytes_read: 0,
            input_total: 5000,
        });
        inp.c0_bytes = 990;
        assert_eq!(s.plan(&inp), WorkPlan::default());
        assert!(s.blocking_merge12());
    }

    #[test]
    fn naive_starts_merge_only_when_full() {
        let s = NaiveScheduler;
        let mut inp = inputs();
        inp.c0_bytes = 900;
        assert!(!s.should_start_merge01(&inp));
        inp.c0_bytes = 995;
        assert!(s.should_start_merge01(&inp));
    }

    #[test]
    fn gear_drives_inprogress_to_fill_fraction() {
        let mut s = GearScheduler;
        let mut inp = inputs();
        inp.c0_fill = 1000;
        inp.c0_bytes = 490;
        inp.m01 = Some(MergeProgress {
            bytes_read: 1000,
            input_total: 10_000,
        }); // 10% done
            // Fill is 50%, merge at 10%: deficit 40% of 10k = 4000 bytes.
        let plan = s.plan(&inp);
        assert_eq!(plan.merge01_bytes, 4000);
        // Once caught up, no further work is demanded.
        inp.m01 = Some(MergeProgress {
            bytes_read: 5_000,
            input_total: 10_000,
        });
        let plan = s.plan(&inp);
        assert_eq!(plan.merge01_bytes, 0);
    }

    #[test]
    fn gear_merge12_tracks_outprogress() {
        let mut s = GearScheduler;
        let mut inp = inputs();
        inp.c0_bytes = 500;
        inp.r_ceil = 4;
        inp.c1_bytes = 2000; // 2 fills of 1000
        inp.m01 = Some(MergeProgress {
            bytes_read: 5_100,
            input_total: 10_000,
        });
        inp.m12 = Some(MergeProgress {
            bytes_read: 0,
            input_total: 40_000,
        });
        let plan = s.plan(&inp);
        // outprogress1 ≈ (0.51 + 2)/4 ≈ 0.6275 → merge12 owes ~25,100 bytes.
        assert!(plan.merge12_bytes > 24_000 && plan.merge12_bytes < 26_000);
    }

    #[test]
    fn gear_work_per_write_is_bounded() {
        // The pacing property: per 1-byte write the plan is O(rate), not
        // O(component size). Simulate a steady loop and check the max plan.
        let mut s = GearScheduler;
        let mut m01 = MergeProgress {
            bytes_read: 0,
            input_total: 10_000,
        };
        let mut max_plan = 0u64;
        for i in 0..1000u64 {
            let inp = SchedInputs {
                c0_bytes: i, // fills 0..1000
                c0_fill: 1000,
                c0_cap: 2000,
                incoming: 1,
                m01: Some(m01),
                m01_c0_input: 1000,
                m12: None,
                c1_bytes: 0,
                r_ceil: 4,
            };
            let plan = s.plan(&inp);
            m01.bytes_read += plan.merge01_bytes; // engine does the work
            max_plan = max_plan.max(plan.merge01_bytes);
        }
        assert!(max_plan <= 30, "per-write work spiked to {max_plan} bytes");
        assert!(
            m01.inprogress() > 0.99,
            "merge kept pace: {}",
            m01.inprogress()
        );
    }

    #[test]
    fn spring_pauses_below_low_water() {
        let mut s = SpringGearScheduler::new(0.5, 0.9);
        let mut inp = inputs();
        inp.c0_bytes = 300; // 30% occupancy < low
        inp.m01 = Some(MergeProgress {
            bytes_read: 0,
            input_total: 10_000,
        });
        let plan = s.plan(&inp);
        assert_eq!(plan.merge01_bytes, 0, "merge idles below the low mark");
    }

    #[test]
    fn spring_backpressure_scales_with_occupancy() {
        let mut s = SpringGearScheduler::new(0.5, 0.9);
        let mut inp = inputs();
        inp.m01 = Some(MergeProgress {
            bytes_read: 0,
            input_total: 5_000,
        });
        inp.m01_c0_input = 1000;
        inp.c0_bytes = 600;
        let at60 = s.plan(&inp).merge01_bytes;
        inp.c0_bytes = 890;
        let at89 = s.plan(&inp).merge01_bytes;
        inp.c0_bytes = 990;
        let at99 = s.plan(&inp).merge01_bytes;
        assert!(at60 < at89 && at89 < at99, "{at60} {at89} {at99}");
        assert!(at60 > 0);
    }

    #[test]
    fn spring_starts_pass_at_high_water() {
        let s = SpringGearScheduler::new(0.5, 0.9);
        let mut inp = inputs();
        inp.c0_bytes = 899;
        assert!(!s.should_start_merge01(&inp));
        inp.c0_bytes = 900;
        assert!(s.should_start_merge01(&inp));
    }

    #[test]
    fn backpressure_level_tracks_watermarks() {
        let cap = 1000u64;
        assert_eq!(
            BackpressureLevel::from_occupancy(0, cap, 0.5, 0.9),
            BackpressureLevel::Idle
        );
        assert_eq!(
            BackpressureLevel::from_occupancy(499, cap, 0.5, 0.9),
            BackpressureLevel::Idle
        );
        assert_eq!(
            BackpressureLevel::from_occupancy(500, cap, 0.5, 0.9),
            BackpressureLevel::Paced(0)
        );
        let mid = BackpressureLevel::from_occupancy(700, cap, 0.5, 0.9);
        assert_eq!(mid, BackpressureLevel::Paced(500));
        assert!((mid.fraction() - 0.5).abs() < 1e-9);
        assert_eq!(
            BackpressureLevel::from_occupancy(900, cap, 0.5, 0.9),
            BackpressureLevel::Saturated
        );
        assert!(BackpressureLevel::from_occupancy(2000, cap, 0.5, 0.9).is_saturated());
        // Severity ordering lets partitioned stores take the max.
        assert!(BackpressureLevel::Idle < BackpressureLevel::Paced(1));
        assert!(BackpressureLevel::Paced(999) < BackpressureLevel::Saturated);
    }

    #[test]
    fn spring_never_blocks_merge12() {
        assert!(!SpringGearScheduler::new(0.5, 0.9).blocking_merge12());
        assert!(!GearScheduler.blocking_merge12());
    }
}
