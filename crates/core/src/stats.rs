//! Engine-level counters backing the paper's metrics (§2.1).

/// Counters maintained by [`crate::BLsmTree`]. Device-level seek and byte
/// counts live in `blsm_storage::DeviceStats`; these add the engine-side
/// breakdown (bloom effectiveness, merge volume, stall behaviour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Application point lookups.
    pub gets: u64,
    /// Application writes (put/delete/delta).
    pub writes: u64,
    /// Application scans.
    pub scans: u64,
    /// `insert_if_not_exists` calls.
    pub check_inserts: u64,
    /// On-disk component probes actually performed (post-bloom).
    pub disk_probes: u64,
    /// Component probes skipped because a Bloom filter said "absent".
    pub bloom_skips: u64,
    /// Reads that terminated at a base record before exhausting components.
    pub early_terminations: u64,
    /// Bytes of user data written by the application.
    pub user_bytes_written: u64,
    /// Input bytes consumed by merges (both levels).
    pub merge_bytes_consumed: u64,
    /// `C0:C1` merge passes completed.
    pub merges01: u64,
    /// `C1':C2` merges completed.
    pub merges12: u64,
    /// Writes that hit the hard `C0` cap and had to run forced merge work.
    pub forced_stalls: u64,
}

impl TreeStats {
    /// Mean disk probes per get — the measured read amplification
    /// numerator (§2.1 measures it in seeks).
    pub fn probes_per_get(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.disk_probes as f64 / self.gets as f64
        }
    }
}
