//! Engine-level counters backing the paper's metrics (§2.1).
//!
//! Counters are lock-free atomics so the read path ([`crate::ReadView`])
//! never needs `&mut` access to the tree: concurrent readers, the write
//! path and the merge thread all bump the same [`TreeStats`] cell inside
//! `TreeShared`. Consumers take a [`TreeStatsSnapshot`] — a plain `Copy`
//! struct — and do delta arithmetic on that.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::sched::BackpressureLevel;

/// Increment a statistics counter.
///
/// Relaxed is deliberate: these are monotonic counters with no
/// cross-thread ordering dependencies; snapshot readers tolerate small
/// skew between fields.
#[inline]
pub(crate) fn bump(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

/// Read a statistics counter. Relaxed for the same reason as [`bump`].
#[inline]
fn read(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed)
}

/// Counters maintained by [`crate::BLsmTree`]. Device-level seek and byte
/// counts live in `blsm_storage::DeviceStats`; these add the engine-side
/// breakdown (bloom effectiveness, merge volume, stall behaviour).
///
/// Fields mirror [`TreeStatsSnapshot`]; use [`TreeStats::snapshot`] to
/// read them coherently enough for reporting.
#[derive(Debug, Default)]
pub struct TreeStats {
    /// Application point lookups.
    pub(crate) gets: AtomicU64, // ordering: Relaxed (statistic)
    /// Application writes (put/delete/delta).
    pub(crate) writes: AtomicU64, // ordering: Relaxed (statistic)
    /// Application scans.
    pub(crate) scans: AtomicU64, // ordering: Relaxed (statistic)
    /// `insert_if_not_exists` calls.
    pub(crate) check_inserts: AtomicU64, // ordering: Relaxed (statistic)
    /// On-disk component probes actually performed (post-bloom).
    pub(crate) disk_probes: AtomicU64, // ordering: Relaxed (statistic)
    /// Component probes skipped because a Bloom filter said "absent".
    pub(crate) bloom_skips: AtomicU64, // ordering: Relaxed (statistic)
    /// Reads that terminated at a base record before exhausting components.
    pub(crate) early_terminations: AtomicU64, // ordering: Relaxed (statistic)
    /// Bytes of user data written by the application.
    pub(crate) user_bytes_written: AtomicU64, // ordering: Relaxed (statistic)
    /// Input bytes consumed by merges (both levels).
    pub(crate) merge_bytes_consumed: AtomicU64, // ordering: Relaxed (statistic)
    /// `C0:C1` merge passes completed.
    pub(crate) merges01: AtomicU64, // ordering: Relaxed (statistic)
    /// `C1':C2` merges completed.
    pub(crate) merges12: AtomicU64, // ordering: Relaxed (statistic)
    /// Writes that hit the hard `C0` cap and had to run forced merge work.
    pub(crate) forced_stalls: AtomicU64, // ordering: Relaxed (statistic)
    /// Scrub passes completed over the on-disk components.
    pub(crate) scrubs: AtomicU64, // ordering: Relaxed (statistic)
    /// Total problems reported by scrub passes.
    pub(crate) scrub_errors: AtomicU64, // ordering: Relaxed (statistic)
    /// Commit groups retired (one device sync each; see `commit.rs`).
    pub(crate) commit_groups: AtomicU64, // ordering: Relaxed (statistic)
    /// Writes retired across all commit groups — `/ commit_groups` is
    /// the mean group size, the amortization factor one fsync buys.
    pub(crate) commit_group_writes: AtomicU64, // ordering: Relaxed (statistic)
    /// Total microseconds spent in group-commit device syncs.
    pub(crate) fsync_micros_total: AtomicU64, // ordering: Relaxed (statistic)
    /// Histogram of commit-group sizes; bucket `i` counts groups of
    /// `2^i` to `2^(i+1)-1` writes (last bucket open-ended). See
    /// [`group_size_bucket`].
    pub(crate) group_size_hist: [AtomicU64; COMMIT_HIST_BUCKETS], // ordering: Relaxed (statistic)
    /// Histogram of group fsync latencies; see [`fsync_micros_bucket`]
    /// for the bucket boundaries.
    pub(crate) fsync_micros_hist: [AtomicU64; COMMIT_HIST_BUCKETS], // ordering: Relaxed (statistic)
}

/// Buckets in each commit-group histogram ([`TreeStatsSnapshot::group_size_hist`],
/// [`TreeStatsSnapshot::fsync_micros_hist`]).
pub const COMMIT_HIST_BUCKETS: usize = 8;

/// Histogram bucket for a commit group of `n` writes: bucket `i` covers
/// sizes `2^i ..= 2^(i+1)-1` (1, 2–3, 4–7, …), with the last bucket
/// collecting everything from 128 up.
pub fn group_size_bucket(n: u64) -> usize {
    (n.max(1).ilog2() as usize).min(COMMIT_HIST_BUCKETS - 1)
}

/// Histogram bucket for a group fsync that took `micros` µs: bucket 0 is
/// `< 200µs`, bucket `i` covers `100·2^i .. 100·2^(i+1)` µs (200–400µs,
/// 400–800µs, …), with the last bucket collecting everything from
/// 12.8ms up.
pub fn fsync_micros_bucket(micros: u64) -> usize {
    ((micros / 100).max(1).ilog2() as usize).min(COMMIT_HIST_BUCKETS - 1)
}

impl TreeStats {
    /// Lock-free point-in-time copy of every counter.
    pub fn snapshot(&self) -> TreeStatsSnapshot {
        let read_hist = |hist: &[AtomicU64; COMMIT_HIST_BUCKETS]| {
            let mut out = [0u64; COMMIT_HIST_BUCKETS];
            for (slot, counter) in out.iter_mut().zip(hist.iter()) {
                *slot = read(counter);
            }
            out
        };
        TreeStatsSnapshot {
            gets: read(&self.gets),
            writes: read(&self.writes),
            scans: read(&self.scans),
            check_inserts: read(&self.check_inserts),
            disk_probes: read(&self.disk_probes),
            bloom_skips: read(&self.bloom_skips),
            early_terminations: read(&self.early_terminations),
            user_bytes_written: read(&self.user_bytes_written),
            merge_bytes_consumed: read(&self.merge_bytes_consumed),
            merges01: read(&self.merges01),
            merges12: read(&self.merges12),
            forced_stalls: read(&self.forced_stalls),
            scrubs: read(&self.scrubs),
            scrub_errors: read(&self.scrub_errors),
            commit_groups: read(&self.commit_groups),
            commit_group_writes: read(&self.commit_group_writes),
            fsync_micros_total: read(&self.fsync_micros_total),
            group_size_hist: read_hist(&self.group_size_hist),
            fsync_micros_hist: read_hist(&self.fsync_micros_hist),
            backpressure: BackpressureLevel::Idle,
            recovery: RecoveryReport::default(),
            next_seqno: 0,
        }
    }
}

/// What recovery found and did when the tree was opened. `Default` means
/// a clean open: nothing rolled back, nothing truncated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// On-disk components reopened from the manifest.
    pub components_salvaged: u64,
    /// True when the newest manifest slot was damaged (torn write) and
    /// the previous epoch was used instead.
    pub manifest_rolled_back: bool,
    /// WAL records replayed into `C0`.
    pub wal_records_replayed: u64,
    /// Replayed records skipped because their effects were already
    /// durable in an on-disk component.
    pub wal_records_skipped: u64,
    /// WAL bytes scanned between the recovered head and tail.
    pub wal_recovered_bytes: u64,
    /// Estimated bytes of a partially-written frame discarded at the WAL
    /// tail (nonzero means a crash cut the final log write).
    pub wal_torn_tail_bytes: u64,
}

/// Plain-value snapshot of [`TreeStats`], safe to copy around, compare and
/// subtract. Field meanings match the atomic struct one-for-one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStatsSnapshot {
    /// Application point lookups.
    pub gets: u64,
    /// Application writes (put/delete/delta).
    pub writes: u64,
    /// Application scans.
    pub scans: u64,
    /// `insert_if_not_exists` calls.
    pub check_inserts: u64,
    /// On-disk component probes actually performed (post-bloom).
    pub disk_probes: u64,
    /// Component probes skipped because a Bloom filter said "absent".
    pub bloom_skips: u64,
    /// Reads that terminated at a base record before exhausting components.
    pub early_terminations: u64,
    /// Bytes of user data written by the application.
    pub user_bytes_written: u64,
    /// Input bytes consumed by merges (both levels).
    pub merge_bytes_consumed: u64,
    /// `C0:C1` merge passes completed.
    pub merges01: u64,
    /// `C1':C2` merges completed.
    pub merges12: u64,
    /// Writes that hit the hard `C0` cap and had to run forced merge work.
    pub forced_stalls: u64,
    /// Scrub passes completed over the on-disk components.
    pub scrubs: u64,
    /// Total problems reported by scrub passes.
    pub scrub_errors: u64,
    /// Commit groups retired (one device sync each).
    pub commit_groups: u64,
    /// Writes retired across all commit groups; `/ commit_groups` is the
    /// mean group size — how many writers each fsync amortized over.
    pub commit_group_writes: u64,
    /// Total microseconds spent in group-commit device syncs.
    pub fsync_micros_total: u64,
    /// Commit-group size histogram; see [`group_size_bucket`].
    pub group_size_hist: [u64; COMMIT_HIST_BUCKETS],
    /// Group fsync latency histogram; see [`fsync_micros_bucket`].
    pub fsync_micros_hist: [u64; COMMIT_HIST_BUCKETS],
    /// The spring-and-gear watermark regime at snapshot time — the shared
    /// backpressure signal admission control and STATS read (§4.3). Raw
    /// [`TreeStats::snapshot`] reports `Idle` (counters alone cannot see
    /// `C0`); snapshots taken through the tree or a
    /// [`crate::ReadView`] carry the live level.
    pub backpressure: BackpressureLevel,
    /// What recovery found when this tree was opened. Raw
    /// [`TreeStats::snapshot`] reports the default; snapshots taken
    /// through the tree or a [`crate::ReadView`] carry the real report.
    pub recovery: RecoveryReport,
    /// The next sequence number the tree would allocate at snapshot
    /// time. A *reservation* counter: it may run ahead of failed or
    /// in-flight applies, so the replication tier's progress meter is
    /// the applied floor ([`crate::BLsmTree::applied_seqno`]), not
    /// `next_seqno - 1`. Raw [`TreeStats::snapshot`] reports 0;
    /// snapshots taken through the tree or a [`crate::ReadView`] carry
    /// the live counter.
    pub next_seqno: u64,
}

impl TreeStatsSnapshot {
    /// Mean disk probes per get — the measured read amplification
    /// numerator (§2.1 measures it in seeks).
    pub fn probes_per_get(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.disk_probes as f64 / self.gets as f64
        }
    }

    /// Field-wise accumulate, used by `PartitionedBLsm::stats` to sum
    /// per-partition counters.
    pub fn accumulate(&mut self, other: &TreeStatsSnapshot) {
        self.gets += other.gets;
        self.writes += other.writes;
        self.scans += other.scans;
        self.check_inserts += other.check_inserts;
        self.disk_probes += other.disk_probes;
        self.bloom_skips += other.bloom_skips;
        self.early_terminations += other.early_terminations;
        self.user_bytes_written += other.user_bytes_written;
        self.merge_bytes_consumed += other.merge_bytes_consumed;
        self.merges01 += other.merges01;
        self.merges12 += other.merges12;
        self.forced_stalls += other.forced_stalls;
        self.scrubs += other.scrubs;
        self.scrub_errors += other.scrub_errors;
        self.commit_groups += other.commit_groups;
        self.commit_group_writes += other.commit_group_writes;
        self.fsync_micros_total += other.fsync_micros_total;
        for (mine, theirs) in self.group_size_hist.iter_mut().zip(other.group_size_hist) {
            *mine += theirs;
        }
        for (mine, theirs) in self
            .fsync_micros_hist
            .iter_mut()
            .zip(other.fsync_micros_hist)
        {
            *mine += theirs;
        }
        self.recovery.components_salvaged += other.recovery.components_salvaged;
        self.recovery.manifest_rolled_back |= other.recovery.manifest_rolled_back;
        self.recovery.wal_records_replayed += other.recovery.wal_records_replayed;
        self.recovery.wal_records_skipped += other.recovery.wal_records_skipped;
        self.recovery.wal_recovered_bytes += other.recovery.wal_recovered_bytes;
        self.recovery.wal_torn_tail_bytes += other.recovery.wal_torn_tail_bytes;
        // Backpressure is a level, not a counter: the store is as pressed
        // as its most-pressed partition.
        self.backpressure = self.backpressure.max(other.backpressure);
        // Seqnos are per-tree tickets, not counters: an aggregate view
        // reports the furthest-along tree.
        self.next_seqno = self.next_seqno.max(other.next_seqno);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn snapshot_reads_bumped_counters() {
        let stats = TreeStats::default();
        bump(&stats.gets, 3);
        bump(&stats.disk_probes, 6);
        let snap = stats.snapshot();
        assert_eq!(snap.gets, 3);
        assert_eq!(snap.disk_probes, 6);
        assert!((snap.probes_per_get() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn accumulate_sums_fieldwise() {
        let mut a = TreeStatsSnapshot {
            gets: 1,
            writes: 2,
            ..TreeStatsSnapshot::default()
        };
        let b = TreeStatsSnapshot {
            gets: 10,
            merges01: 4,
            ..TreeStatsSnapshot::default()
        };
        a.accumulate(&b);
        assert_eq!(a.gets, 11);
        assert_eq!(a.writes, 2);
        assert_eq!(a.merges01, 4);
    }

    #[test]
    fn histogram_buckets_cover_their_documented_ranges() {
        assert_eq!(group_size_bucket(0), 0);
        assert_eq!(group_size_bucket(1), 0);
        assert_eq!(group_size_bucket(2), 1);
        assert_eq!(group_size_bucket(3), 1);
        assert_eq!(group_size_bucket(4), 2);
        assert_eq!(group_size_bucket(127), 6);
        assert_eq!(group_size_bucket(128), 7);
        assert_eq!(group_size_bucket(u64::MAX), 7);
        assert_eq!(fsync_micros_bucket(0), 0);
        assert_eq!(fsync_micros_bucket(199), 0);
        assert_eq!(fsync_micros_bucket(200), 1);
        assert_eq!(fsync_micros_bucket(399), 1);
        assert_eq!(fsync_micros_bucket(12_800), 7);
        assert_eq!(fsync_micros_bucket(u64::MAX), 7);
    }

    #[test]
    fn accumulate_sums_commit_histograms() {
        let mut a = TreeStatsSnapshot::default();
        a.group_size_hist[2] = 5;
        a.commit_groups = 5;
        let mut b = TreeStatsSnapshot::default();
        b.group_size_hist[2] = 3;
        b.fsync_micros_hist[0] = 4;
        b.commit_groups = 4;
        b.commit_group_writes = 40;
        a.accumulate(&b);
        assert_eq!(a.group_size_hist[2], 8);
        assert_eq!(a.fsync_micros_hist[0], 4);
        assert_eq!(a.commit_groups, 9);
        assert_eq!(a.commit_group_writes, 40);
    }

    #[test]
    fn accumulate_keeps_worst_backpressure() {
        let mut a = TreeStatsSnapshot {
            backpressure: BackpressureLevel::Paced(300),
            ..TreeStatsSnapshot::default()
        };
        a.accumulate(&TreeStatsSnapshot::default());
        assert_eq!(a.backpressure, BackpressureLevel::Paced(300));
        a.accumulate(&TreeStatsSnapshot {
            backpressure: BackpressureLevel::Saturated,
            ..TreeStatsSnapshot::default()
        });
        assert_eq!(a.backpressure, BackpressureLevel::Saturated);
    }
}
