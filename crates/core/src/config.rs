//! Engine configuration.

use std::time::Duration;

/// Which merge scheduler paces background work (§3.2, §4.1, §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Merge only when a component fills, blocking writes until the merge
    /// (and, transitively, downstream merges) complete. This is the
    /// behaviour §3.2 calls "unplanned downtime" — reproduced as the
    /// baseline for Figure 7's pause measurements.
    Naive,
    /// The gear scheduler (§4.1): every merge's `inprogress` is driven to
    /// match the upstream component's fill fraction so merges complete
    /// exactly when their input fills. Incompatible with snowshoveling
    /// (§4.3), so it partitions `C0`/`C0'`.
    Gear,
    /// The spring and gear scheduler (§4.3): `C0` occupancy is kept
    /// between a low and a high water mark, backpressure is proportional,
    /// and downstream merges pause when `C0` drains. The default.
    SpringGear,
}

/// Durability of individual writes (§4.4.2, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// No logical logging at all — the paper's "degraded durability mode":
    /// after a crash, updates up to the last completed merge survive.
    None,
    /// Log records are written to the log device but not synced at commit.
    /// This is the configuration of every system in §5.1 ("none of the
    /// systems sync their logs at commit").
    Buffered,
    /// Every write syncs the log — full durability.
    Sync,
}

/// Tuning knobs for [`crate::BLsmTree`].
#[derive(Debug, Clone)]
pub struct BLsmConfig {
    /// RAM budget for `C0` in bytes (the paper dedicates 8 GB of its
    /// 10 GB to `C0`, §5.1).
    pub mem_budget: usize,
    /// Size ratio between adjacent levels. `None` derives
    /// `R = sqrt(|data| / |C0|)` after each merge, the optimum for a
    /// three-level tree (§2.3.1).
    pub r: Option<f64>,
    /// Enable snowshoveling (§4.2). Forced off by the gear scheduler,
    /// which needs the `C0`/`C0'` partition (§4.3).
    pub snowshovel: bool,
    /// Merge scheduler.
    pub scheduler: SchedulerKind,
    /// Write durability mode.
    pub durability: Durability,
    /// Spring-and-gear low water mark, as a fraction of `mem_budget`.
    pub low_water: f64,
    /// Spring-and-gear high water mark, as a fraction of `mem_budget`.
    pub high_water: f64,
    /// A `C0:C1` merge run ends once its output reaches this multiple of
    /// its input estimate, bounding run length under sorted insert storms
    /// (snowshoveling would otherwise never finish a pass).
    pub run_length_cap: f64,
    /// Ring capacity of the logical log device, bytes.
    pub wal_capacity: u64,
    /// Upper bound on merge bytes processed in one burst of inline work;
    /// bounds the latency any single write can observe from pacing.
    pub work_quantum: u64,
    /// Expected value size, used only to pre-size Bloom filters for the
    /// first merge (afterwards real counts are known).
    pub expected_value_size: usize,
    /// Upper bound on how long a group-commit leader waits for more
    /// writers to join its group before forcing the device
    /// (`Durability::Sync` only). A *deadline*, not a pause: a leader
    /// with no co-waiters syncs immediately, and the wait is cut short
    /// the moment `commit_group_count` writers (or `commit_group_bytes`
    /// bytes) are pending — so the single-writer sync latency never
    /// regresses by more than this bound. Default 1ms: comparable to a
    /// device fsync, far above a context switch.
    ///
    /// Independent of [`merge_wait_timeout`](Self::merge_wait_timeout):
    /// the two waits can stack (a sync write may first sit out a commit
    /// deadline and then its merge-kick may sit in the merge thread's
    /// wait), so each is its own knob rather than one shared "latency"
    /// setting.
    pub commit_deadline: Duration,
    /// Number of pending group-commit waiters that ends the leader's
    /// deadline wait early. Default 2: the leader stops waiting as soon
    /// as even one more writer has joined, so batching comes from
    /// writers arriving *during* the (unlocked) device sync, not from
    /// holding commits hostage to a timer.
    pub commit_group_count: usize,
    /// Pending WAL bytes that end the leader's deadline wait early,
    /// whatever the waiter count. Default 32 KiB.
    pub commit_group_bytes: u64,
    /// How long the merge thread sleeps between staleness re-checks
    /// when no writer has kicked it (the bound on how stale the
    /// spring-and-gear schedule can go while writers bypass `kick` at
    /// `Idle`). Default 10ms — the constant PR 8 hardcoded, now a knob
    /// so deployments that tighten `commit_deadline` can reason about
    /// the two waits separately.
    pub merge_wait_timeout: Duration,
    /// When true, the write path performs no merge scheduling of its own
    /// (beyond the hard `C0` cap): an external coordinator drives merges
    /// via `maintenance`. Used by `PartitionedBLsm` to layer a partition
    /// scheduler over the per-tree level scheduler, as §4 envisions
    /// ("level schedulers are designed to complement existing partition
    /// schedulers").
    pub external_pacing: bool,
}

impl Default for BLsmConfig {
    fn default() -> Self {
        BLsmConfig {
            mem_budget: 8 << 20,
            r: None,
            snowshovel: true,
            scheduler: SchedulerKind::SpringGear,
            durability: Durability::Buffered,
            low_water: 0.5,
            high_water: 0.9,
            run_length_cap: 4.0,
            wal_capacity: 256 << 20,
            work_quantum: 4 << 20,
            expected_value_size: 1000,
            commit_deadline: Duration::from_millis(1),
            commit_group_count: 2,
            commit_group_bytes: 32 << 10,
            merge_wait_timeout: Duration::from_millis(10),
            external_pacing: false,
        }
    }
}

impl BLsmConfig {
    /// Validates and normalizes the configuration.
    pub fn validated(mut self) -> BLsmConfig {
        assert!(
            self.mem_budget >= 64 << 10,
            "mem_budget must be at least 64 KiB"
        );
        assert!(
            0.0 < self.low_water && self.low_water < self.high_water && self.high_water <= 1.0,
            "watermarks must satisfy 0 < low < high <= 1"
        );
        assert!(self.run_length_cap >= 1.0, "run_length_cap must be >= 1");
        if let Some(r) = self.r {
            assert!(r >= 2.0, "R must be at least 2");
        }
        assert!(
            self.commit_group_count >= 1,
            "commit_group_count must be at least 1"
        );
        assert!(
            !self.merge_wait_timeout.is_zero(),
            "merge_wait_timeout must be nonzero (the merge thread would spin)"
        );
        // §4.3: the gear scheduler "requires a percent complete estimate for
        // merges between C0 and C1, which forces us to partition RAM".
        if self.scheduler == SchedulerKind::Gear {
            self.snowshovel = false;
        }
        self
    }

    /// The size of one `C0` fill unit: with snowshoveling the whole budget,
    /// without it half (the other half holds `C0'`, §4.2.1).
    pub fn c0_fill_bytes(&self) -> usize {
        if self.snowshovel {
            self.mem_budget
        } else {
            self.mem_budget / 2
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let c = BLsmConfig::default().validated();
        assert!(c.snowshovel);
        assert_eq!(c.scheduler, SchedulerKind::SpringGear);
    }

    #[test]
    fn gear_disables_snowshovel() {
        let c = BLsmConfig {
            scheduler: SchedulerKind::Gear,
            snowshovel: true,
            ..Default::default()
        }
        .validated();
        assert!(!c.snowshovel);
        assert_eq!(c.c0_fill_bytes(), c.mem_budget / 2);
    }

    #[test]
    fn snowshovel_uses_whole_budget() {
        let c = BLsmConfig::default().validated();
        assert_eq!(c.c0_fill_bytes(), c.mem_budget);
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn bad_watermarks_rejected() {
        BLsmConfig {
            low_water: 0.9,
            high_water: 0.5,
            ..Default::default()
        }
        .validated();
    }
}
