//! The lock-free read path.
//!
//! Point lookups, existence checks and scans all run against an immutable
//! pinned pair — a `C0` snapshot and a [`ComponentCatalog`] — so they are
//! `&self`, never block merges, and never block each other (§4.4.1:
//! merge threads must not take a coarse mutex per tuple or page).
//!
//! Pinning protocol (the other half lives in `merge.rs`): a reader
//! samples the sharded buffer's *publish epoch* (a seqlock), collects the
//! key's in-memory version chain (or the `C0` rows of a scan range),
//! loads the catalog pointer, and retries from the top if the epoch moved
//! or was odd — `C0:C1` merges publish their output and retire the
//! drained `C0` copies inside one odd-epoch window
//! ([`ConcurrentC0::end_capped_pass_with`]), so an unchanged even epoch
//! proves the pinned pair is consistent: every version of every key is
//! visible exactly once along the newest→oldest search order. Individual
//! shard reads take only that shard's lock; no tree-wide lock exists on
//! this path.
//!
//! [`ConcurrentC0::end_capped_pass_with`]: blsm_memtable::ConcurrentC0::end_capped_pass_with

use std::sync::Arc;

use bytes::Bytes;

use blsm_memtable::{Entry, MergeOperator, Versioned};
use blsm_sstable::{EntryRef, EntryStream, MergeIter, ReadMode};
use blsm_storage::Result;

use crate::catalog::{ComponentCatalog, TreeShared};
use crate::stats::{self, TreeStatsSnapshot};

/// Tree-wide outcome of a scrub pass over every on-disk component.
///
/// Produced by [`crate::BLsmTree::scrub`] / [`ReadView::scrub`]; the
/// per-component numbers are summed and every problem string is prefixed
/// with the component slot it came from.
#[derive(Debug, Clone, Default)]
pub struct TreeScrubReport {
    /// On-disk components scrubbed.
    pub components_checked: u64,
    /// Pages read back from the device and checksum-verified.
    pub pages_checked: u64,
    /// Logical entries walked during the structural passes.
    pub entries_checked: u64,
    /// Every problem found, prefixed with its component slot (empty ⇒
    /// all components are clean).
    pub errors: Vec<String>,
}

impl TreeScrubReport {
    /// True when no component reported a problem.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// One row returned by a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanItem {
    /// The key.
    pub key: Bytes,
    /// The fully resolved value (deltas folded, tombstones elided).
    pub value: Bytes,
}

/// A shareable, lock-free handle to the tree's read path.
///
/// Cheap to clone (one `Arc`), `Send + Sync`, and valid for as long as
/// the originating [`crate::BLsmTree`] world exists — including while
/// merges run: reads pin an immutable component snapshot and proceed
/// without ever taking the tree lock.
#[derive(Clone)]
pub struct ReadView {
    shared: Arc<TreeShared>,
}

impl std::fmt::Debug for ReadView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadView")
            .field("stats", &self.shared.stats.snapshot())
            .finish_non_exhaustive()
    }
}

impl ReadView {
    pub(crate) fn new(shared: Arc<TreeShared>) -> ReadView {
        ReadView { shared }
    }

    /// Point lookup. Walks components newest→oldest, consults a Bloom
    /// filter before every disk probe, folds deltas, and stops at the
    /// first base record (§3.1, §3.1.1).
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        self.shared.get(key)
    }

    /// Existence check with early termination and Bloom short-circuits.
    pub fn exists(&self, key: &[u8]) -> Result<bool> {
        self.shared.exists(key)
    }

    /// Ordered scan: up to `limit` live rows with key ≥ `from`.
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        self.shared.scan(from, None, limit)
    }

    /// Ordered scan of `[from, to)`, up to `limit` rows.
    pub fn scan_range(&self, from: &[u8], to: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        self.shared.scan(from, Some(to), limit)
    }

    /// Snapshot of the engine counters plus the live backpressure level.
    /// Fully lock-free: `C0` occupancy is an atomic counter read.
    pub fn stats(&self) -> TreeStatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// Verifies every on-disk component against the device (checksums,
    /// footers, ordering, Bloom agreement). Lock-free like every other
    /// read: the pass runs on a pinned catalog snapshot while writes and
    /// merges proceed.
    pub fn scrub(&self) -> TreeScrubReport {
        self.shared.scrub()
    }
}

/// Folds collected deltas over a base value (or its absence).
fn resolve_base(op: &dyn MergeOperator, base: Option<&[u8]>, deltas: &[Bytes]) -> Option<Bytes> {
    if deltas.is_empty() {
        return base.map(Bytes::copy_from_slice);
    }
    let refs: Vec<&[u8]> = deltas.iter().map(Bytes::as_ref).collect();
    Some(Bytes::from(op.fold(base, &refs)))
}

/// What the in-memory part of a lookup decided before disk is consulted.
enum C0Verdict {
    /// A base record terminated the search (value, or `None` for a
    /// tombstone); `deltas` collected above it still apply.
    Terminated(Option<Bytes>),
    /// Only deltas (or nothing) found; the disk components must be
    /// probed.
    Continue,
}

impl TreeShared {
    /// Pins a `(C0 version chain, catalog)` pair for `key` behind the
    /// buffer's publish epoch — the consistency unit of the whole read
    /// path. Retries while a catalog publish is in flight (odd epoch) or
    /// completed mid-read (epoch moved); publishes are rare (once per
    /// merge pass), so the loop almost always exits first try.
    fn pin_chain(&self, key: &[u8]) -> (Vec<Versioned>, Arc<ComponentCatalog>) {
        loop {
            let e1 = self.c0.publish_epoch();
            if e1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let chain = self.c0.version_chain(key);
            let catalog = self.catalog.load();
            if self.c0.publish_epoch() == e1 {
                return (chain, catalog);
            }
        }
    }

    /// Walks a pinned version chain into a get verdict, collecting deltas.
    fn pin_for_get(
        &self,
        key: &[u8],
        deltas: &mut Vec<Bytes>,
    ) -> (C0Verdict, Arc<ComponentCatalog>) {
        let (chain, catalog) = self.pin_chain(key);
        let mut verdict = C0Verdict::Continue;
        for v in &chain {
            match &v.entry {
                Entry::Put(b) => {
                    verdict = C0Verdict::Terminated(Some(b.clone()));
                    break;
                }
                Entry::Tombstone => {
                    verdict = C0Verdict::Terminated(None);
                    break;
                }
                Entry::Delta(d) => deltas.push(d.clone()),
            }
        }
        (verdict, catalog)
    }

    pub(crate) fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        stats::bump(&self.stats.gets, 1);
        let mut deltas: Vec<Bytes> = Vec::new();
        let (verdict, catalog) = self.pin_for_get(key, &mut deltas);
        match verdict {
            C0Verdict::Terminated(Some(base)) => {
                stats::bump(&self.stats.early_terminations, 1);
                return Ok(resolve_base(self.op.as_ref(), Some(&base), &deltas));
            }
            C0Verdict::Terminated(None) => {
                // Tombstone: deltas above it (if any) apply to an absent
                // base; with none, the key is simply gone.
                return Ok(
                    resolve_base(self.op.as_ref(), None, &deltas).filter(|_| !deltas.is_empty())
                );
            }
            C0Verdict::Continue => {}
        }

        for (slot, table) in catalog.named_tables() {
            if !table.may_contain(key) {
                stats::bump(&self.stats.bloom_skips, 1);
                continue;
            }
            stats::bump(&self.stats.disk_probes, 1);
            let Some(v) = table.get(key).map_err(|e| e.in_component(slot))? else {
                continue;
            };
            match v.entry {
                Entry::Put(b) => {
                    stats::bump(&self.stats.early_terminations, 1);
                    return Ok(resolve_base(self.op.as_ref(), Some(&b), &deltas));
                }
                Entry::Tombstone => {
                    return Ok(resolve_base(self.op.as_ref(), None, &deltas)
                        .filter(|_| !deltas.is_empty()));
                }
                Entry::Delta(d) => deltas.push(d),
            }
        }
        if deltas.is_empty() {
            Ok(None)
        } else {
            // Orphan deltas: apply against an absent base.
            Ok(resolve_base(self.op.as_ref(), None, &deltas))
        }
    }

    pub(crate) fn exists(&self, key: &[u8]) -> Result<bool> {
        let (chain, catalog) = self.pin_chain(key);
        if let Some(v) = chain.into_iter().next() {
            // A delta implies a live record (it materializes on read).
            return Ok(!matches!(v.entry, Entry::Tombstone));
        }
        for (slot, table) in catalog.named_tables() {
            if !table.may_contain(key) {
                stats::bump(&self.stats.bloom_skips, 1);
                continue;
            }
            stats::bump(&self.stats.disk_probes, 1);
            if let Some(v) = table.get(key).map_err(|e| e.in_component(slot))? {
                return Ok(!matches!(v.entry, Entry::Tombstone));
            }
        }
        Ok(false)
    }

    /// Newest on-disk sequence number for `key` (recovery's replay
    /// check). The seqno horizon answers "no component can cover this
    /// record" without any probe.
    pub(crate) fn disk_newest_seqno(&self, key: &[u8], at_least: u64) -> Result<Option<u64>> {
        let catalog = self.catalog.load();
        if at_least > catalog.seqno_horizon {
            return Ok(None);
        }
        for (slot, table) in catalog.named_tables() {
            if !table.may_contain(key) {
                continue;
            }
            if let Some(v) = table.get(key).map_err(|e| e.in_component(slot))? {
                return Ok(Some(v.seqno));
            }
        }
        Ok(None)
    }

    /// Scrubs every catalogued component, summing the per-component
    /// reports and prefixing each problem with its slot name. Bumps the
    /// `scrubs`/`scrub_errors` counters.
    pub(crate) fn scrub(&self) -> TreeScrubReport {
        let catalog = self.catalog.load();
        let mut report = TreeScrubReport::default();
        for (slot, table) in catalog.named_tables() {
            let r = table.scrub();
            report.components_checked += 1;
            report.pages_checked += r.pages_checked;
            report.entries_checked += r.entries_checked;
            report
                .errors
                .extend(r.errors.into_iter().map(|e| format!("{slot}: {e}")));
        }
        stats::bump(&self.stats.scrubs, 1);
        stats::bump(&self.stats.scrub_errors, report.errors.len() as u64);
        report
    }

    /// Ordered scan of `[from, to)` (unbounded above when `to` is
    /// `None`), up to `limit` live rows. Touches every component once
    /// (§3.3's two/three-seek scans).
    pub(crate) fn scan(
        &self,
        from: &[u8],
        to: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<ScanItem>> {
        stats::bump(&self.stats.scans, 1);
        // Pin: copy the C0 rows of the range and load the catalog behind
        // the publish epoch (same seqlock as `pin_chain`). The copy is
        // bounded by the C0 memory budget (and by `to` when given); disk
        // components stream lazily. Deliberate trade-off: an
        // unbounded-above scan copies the whole C0 tail and retries it
        // wholesale if a merge publishes mid-copy — publishes are
        // once-per-pass rare, and shard locks are only held per-shard, so
        // writers are never blocked for the duration of the copy.
        // Mid-pass, `range_rows` yields *every* resident version of a key
        // (a deferred Delta and the base it shadows, newest first); the
        // rows go to MergeIter below as one multi-version stream so tied
        // versions fold exactly like any other component chain.
        let (c0_rows, catalog) = loop {
            let e1 = self.c0.publish_epoch();
            if e1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let rows = self.c0.range_rows(from, to);
            let catalog = self.catalog.load();
            if self.c0.publish_epoch() == e1 {
                break (rows, catalog);
            }
        };

        let mut streams: Vec<EntryStream<'static>> = Vec::with_capacity(4);
        // C0 (freshest).
        streams.push(Box::new(
            c0_rows
                .into_iter()
                .map(|(key, version)| Ok(EntryRef { key, version })),
        ));
        for table in catalog.tables() {
            streams.push(Box::new(table.iter_from(from, ReadMode::Pooled)));
        }

        let merged = MergeIter::new(streams, self.op.clone(), true);
        let mut out = Vec::with_capacity(limit);
        for item in merged {
            let e = item?;
            if let Some(to) = to {
                if e.key.as_ref() >= to {
                    break;
                }
            }
            if let Entry::Put(value) = e.version.entry {
                out.push(ScanItem { key: e.key, value });
                if out.len() >= limit {
                    break;
                }
            }
        }
        Ok(out)
    }
}
