//! Group commit: one device sync covers many concurrent writers.
//!
//! §5.1 observes that "none of the systems sync their logs at commit" —
//! the paper dodges the fsync cost instead of amortizing it. This module
//! makes `Durability::Sync` a servable configuration by batching: a
//! writer appends to the WAL (buffered, under the `wal` mutex) and then
//! *waits for the group* instead of forcing the device itself. One
//! waiter at a time is elected **leader**; it flushes the WAL under the
//! lock, releases the lock, forces the device, and publishes the new
//! durable horizon — waking every waiter whose append the sync covered.
//!
//! There is deliberately no dedicated committer thread: the leader is
//! elected among the writers already blocked on durability, so a tree
//! with no sync writers spawns nothing, `BLsmTree` stays thread-free
//! (crash enumeration stays deterministic), and a solo writer pays
//! exactly one fsync with no hand-off latency. Batching comes from
//! *overlap*: while the leader's fsync runs outside the `wal` mutex,
//! other writers keep appending; they all retire on the next leader's
//! single sync. Group size therefore tracks the number of concurrent
//! writers — which is what makes durable throughput scale with client
//! count instead of flat-lining on device sync latency.
//!
//! The election state lives in `TreeShared.commit` (a tiny mutex ordered
//! between `merge` and `wal`; see DESIGN.md §14 and §18). The `commit`
//! lock is **never held across I/O**: the leader drops it before
//! flushing and syncing, and reacquires it only to publish the outcome.
//!
//! Crash semantics are unchanged from per-write sync: a write is acked
//! only once `durable` covers its append, and `durable` only advances
//! after a successful device sync of a flushed prefix — so a crash
//! between a group's flush and its sync loses only unacked writes (the
//! crash-enumeration harness sweeps exactly those points).

use std::sync::atomic::Ordering;
use std::time::Instant;

use bytes::Bytes;

use blsm_memtable::Entry;
use blsm_storage::wal::Lsn;
use blsm_storage::{Result, StorageError};

use crate::stats;
use crate::tree::{invariant_err, BLsmTree};

/// Group-commit election state, behind `TreeShared.commit`.
///
/// The mutex protects only this bookkeeping — never I/O. Waiters park on
/// `TreeShared.commit_cv`; the durable horizon itself is the lock-free
/// `TreeShared.durable` atomic, so satisfied writers return without ever
/// touching this lock again.
#[derive(Debug, Default)]
pub(crate) struct CommitState {
    /// True while an elected leader is driving a flush + device sync.
    /// Exactly one leader runs at a time; everyone else waits.
    pub(crate) leader_active: bool,
    /// Writers currently parked on `commit_cv` (excluding the leader).
    /// An accumulating leader reads this to cut its deadline short at
    /// `commit_group_count`.
    pub(crate) waiters: usize,
    /// Monotone count of groups whose device sync failed. A waiter
    /// records the value at entry; a bump while it waited means a sync
    /// covering (or preceding) its append failed and its durability is
    /// unknown — it errors out instead of waiting forever.
    pub(crate) failures: u64,
    /// Human-readable cause of the most recent failed group.
    pub(crate) last_error: String,
}

impl BLsmTree {
    /// LSN below which every WAL byte is known device-stable — the
    /// horizon a group-commit ack covers. One atomic read, no locks.
    /// Trees without a WAL (or that never synced) report 0.
    pub fn durable_lsn(&self) -> Lsn {
        // ordering: Acquire — pairs with the leader's AcqRel advance in
        // `lead_commit`; see the field docs in `catalog.rs`.
        self.shared.durable.load(Ordering::Acquire)
    }

    /// Forces a group commit covering everything appended so far and
    /// returns the new durable horizon. The caller joins (or leads) the
    /// current group exactly like a sync writer — this is the seam a
    /// serving tier uses after a batch of
    /// [`put_nowait`](Self::put_nowait)-style writes, and an explicit
    /// sync on a `Durability::Buffered` tree.
    ///
    /// # Errors
    ///
    /// Propagates flush/sync failures from the group's commit.
    pub fn commit_group(&self) -> Result<Lsn> {
        let target = {
            let guard = self.shared.wal.lock();
            match guard.as_ref() {
                Some(wal) => wal.tail_lsn(),
                // Degraded durability (§4.4.2): nothing to make durable.
                None => return Ok(0),
            }
        };
        self.wait_durable(target)?;
        Ok(self.durable_lsn())
    }

    /// Like [`put`](Self::put), but returns without waiting for
    /// durability. The returned LSN is the write's *commit target*: the
    /// write is durable once [`durable_lsn`](Self::durable_lsn) reaches
    /// it (0 when the configured durability never required a wait, which
    /// every horizon trivially covers). Callers batch many nowait writes
    /// and then retire them with one [`commit_group`](Self::commit_group).
    ///
    /// # Errors
    ///
    /// As [`put`](Self::put), minus sync failures (those surface at the
    /// commit wait).
    pub fn put_nowait(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<Lsn> {
        self.write_entry_nowait(key.into(), Entry::Put(value.into()))
            .map(|t| t.unwrap_or(0))
    }

    /// Nowait form of [`delete`](Self::delete); see
    /// [`put_nowait`](Self::put_nowait) for the returned commit target.
    ///
    /// # Errors
    ///
    /// As [`delete`](Self::delete), minus sync failures.
    pub fn delete_nowait(&self, key: impl Into<Bytes>) -> Result<Lsn> {
        self.write_entry_nowait(key.into(), Entry::Tombstone)
            .map(|t| t.unwrap_or(0))
    }

    /// Nowait form of [`apply_delta`](Self::apply_delta); see
    /// [`put_nowait`](Self::put_nowait) for the returned commit target.
    ///
    /// # Errors
    ///
    /// As [`apply_delta`](Self::apply_delta), minus sync failures.
    pub fn apply_delta_nowait(
        &self,
        key: impl Into<Bytes>,
        delta: impl Into<Bytes>,
    ) -> Result<Lsn> {
        self.write_entry_nowait(key.into(), Entry::Delta(delta.into()))
            .map(|t| t.unwrap_or(0))
    }

    /// Nowait form of [`insert_if_not_exists`](Self::insert_if_not_exists):
    /// `(inserted, commit_target)`. A losing check (`false`) performed no
    /// write and carries target 0.
    ///
    /// # Errors
    ///
    /// As [`insert_if_not_exists`](Self::insert_if_not_exists), minus
    /// sync failures.
    pub fn insert_if_not_exists_nowait(
        &self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Result<(bool, Lsn)> {
        let key = key.into();
        stats::bump(&self.shared.stats.check_inserts, 1);
        if self.exists(&key)? {
            return Ok((false, 0));
        }
        let target = self.write_entry_nowait(key, Entry::Put(value.into()))?;
        Ok((true, target.unwrap_or(0)))
    }

    /// Nowait form of [`apply_replicated`](Self::apply_replicated):
    /// `Some((seqno, commit_target))` for an applied record, `None` for a
    /// deduplicated one. A follower applies a shipped batch nowait and
    /// retires the whole batch with one [`commit_group`](Self::commit_group)
    /// — mirroring the leader's group instead of paying one fsync per
    /// record.
    ///
    /// # Errors
    ///
    /// As [`apply_replicated`](Self::apply_replicated), minus sync
    /// failures.
    pub fn apply_replicated_nowait(&self, payload: &[u8]) -> Result<Option<(u64, Lsn)>> {
        self.apply_replicated_inner(payload)
            .map(|r| r.map(|(seqno, t)| (seqno, t.unwrap_or(0))))
    }

    /// Blocks until the WAL is device-stable through `target`, joining
    /// (and possibly leading) a commit group. `target` is an LSN captured
    /// under the `wal` mutex after this writer's append.
    ///
    /// # Errors
    ///
    /// The leader's own flush/sync error, verbatim; or, for a waiter, an
    /// I/O error naming the failed group it was waiting behind (its
    /// durability is unknown once any covering sync fails).
    pub(crate) fn wait_durable(&self, target: Lsn) -> Result<()> {
        // Fast path: an earlier group already covered this append.
        // ordering: Acquire — pairs with the leader's AcqRel advance.
        if self.shared.durable.load(Ordering::Acquire) >= target {
            return Ok(());
        }
        let mut state = self.shared.commit.lock();
        let entry_failures = state.failures;
        loop {
            // ordering: Acquire — as above; re-checked every wakeup.
            if self.shared.durable.load(Ordering::Acquire) >= target {
                return Ok(());
            }
            if state.failures != entry_failures {
                return Err(StorageError::Io(std::io::Error::other(format!(
                    "group commit failed while waiting for lsn {target}: {}",
                    state.last_error
                ))));
            }
            if !state.leader_active {
                // Become the leader: optionally hold the door open for
                // co-waiters, then commit the group with no locks held
                // across the I/O.
                state.leader_active = true;
                self.lead_accumulate(&mut state);
                drop(state);
                let outcome = self.lead_commit();
                state = self.shared.commit.lock();
                state.leader_active = false;
                if let Err(e) = outcome {
                    state.failures += 1;
                    state.last_error = e.to_string();
                    self.shared.commit_cv.notify_all();
                    return Err(e);
                }
                self.shared.commit_cv.notify_all();
                // Loop: the group normally covers our own append (the
                // flush ran after it), but a concurrent `mark_synced`
                // race is handled by simply going around again.
            } else {
                state.waiters += 1;
                // Wake an accumulating leader so it can see the group
                // grow (co-waiters are one of its early-exit triggers).
                self.shared.commit_cv.notify_all();
                self.shared.commit_cv.wait(&mut state);
                state.waiters -= 1;
            }
        }
    }

    /// The leader's accumulation window, entered with the `commit` lock
    /// held. A leader with **no** co-waiters syncs immediately — the
    /// deadline is a bound on how long it will hold the door open for a
    /// group that is visibly forming, never a pause added to a quiet
    /// tree — and the wait is cut short the moment the group reaches
    /// `commit_group_count` writers (the leader counts as one) or
    /// `commit_group_bytes` pending bytes.
    fn lead_accumulate(&self, state: &mut parking_lot::MutexGuard<'_, CommitState>) {
        let cfg = &self.shared.config;
        if cfg.commit_deadline.is_zero() {
            return;
        }
        let deadline = Instant::now() + cfg.commit_deadline;
        while state.waiters > 0
            && state.waiters + 1 < cfg.commit_group_count
            // ordering: Acquire — counted under the wal lock by
            // appenders; a stale-low read only lengthens the wait by
            // one wakeup.
            && self.shared.unsynced_bytes.load(Ordering::Acquire) < cfg.commit_group_bytes
        {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if self
                .shared
                .commit_cv
                .wait_for(state, deadline - now)
                .timed_out()
            {
                break;
            }
        }
    }

    /// Commits one group: flush under the `wal` mutex, force the device
    /// with **no lock held** (appends overlap the sync — that overlap is
    /// where batching comes from), then record the barrier and publish
    /// the new durable horizon. Entered with no locks held.
    fn lead_commit(&self) -> Result<()> {
        let (flushed, group_writes, device) = {
            let mut guard = self.shared.wal.lock();
            let wal = guard
                .as_mut()
                .ok_or_else(|| invariant_err("group commit on a tree without a wal"))?;
            wal.flush()?;
            // The flush just covered every append counted so far: zero
            // the open-group counters under the same lock appenders
            // bump them under, so the swap reads exactly this group.
            // ordering: AcqRel swap / Release store — serialized by the
            // wal mutex; the counters are group bookkeeping, not a
            // synchronization edge.
            let group_writes = self.shared.unsynced_writes.swap(0, Ordering::AcqRel);
            self.shared.unsynced_bytes.store(0, Ordering::Release);
            (wal.flushed_lsn(), group_writes, wal.device())
        };
        let sync_started = Instant::now();
        device.sync()?;
        let fsync_micros = sync_started.elapsed().as_micros() as u64;
        {
            let mut guard = self.shared.wal.lock();
            if let Some(wal) = guard.as_mut() {
                wal.mark_synced(flushed);
            }
        }
        // ordering: AcqRel — publishes the durable horizon; pairs with
        // the Acquire fast-path loads in `wait_durable`/`durable_lsn`.
        // fetch_max, not store: a slow leader must never regress a
        // horizon a later group already published.
        self.shared.durable.fetch_max(flushed, Ordering::AcqRel);
        if group_writes > 0 {
            stats::bump(&self.shared.stats.commit_groups, 1);
            stats::bump(&self.shared.stats.commit_group_writes, group_writes);
            stats::bump(&self.shared.stats.fsync_micros_total, fsync_micros);
            stats::bump(
                &self.shared.stats.group_size_hist[stats::group_size_bucket(group_writes)],
                1,
            );
            stats::bump(
                &self.shared.stats.fsync_micros_hist[stats::fsync_micros_bucket(fsync_micros)],
                1,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use bytes::Bytes;

    use blsm_memtable::AppendOperator;
    use blsm_storage::{MemDevice, SharedDevice};

    use crate::config::{BLsmConfig, Durability};
    use crate::BLsmTree;

    fn sync_tree() -> BLsmTree {
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        let config = BLsmConfig {
            mem_budget: 1 << 20,
            wal_capacity: 8 << 20,
            durability: Durability::Sync,
            ..Default::default()
        };
        BLsmTree::open(data, wal, 4096, config, Arc::new(AppendOperator)).unwrap()
    }

    #[test]
    fn sync_put_advances_durable_lsn() {
        let t = sync_tree();
        assert_eq!(t.durable_lsn(), 0);
        t.put(Bytes::from_static(b"k"), Bytes::from_static(b"v"))
            .unwrap();
        let d1 = t.durable_lsn();
        assert!(d1 > 0, "a sync put must retire through a group");
        t.put(Bytes::from_static(b"k2"), Bytes::from_static(b"v2"))
            .unwrap();
        assert!(t.durable_lsn() > d1);
        let s = t.stats();
        assert_eq!(s.commit_group_writes, 2);
        assert!(s.commit_groups >= 1);
    }

    #[test]
    fn nowait_writes_retire_on_one_group() {
        let t = sync_tree();
        let mut targets = Vec::new();
        for i in 0..10u32 {
            targets.push(
                t.put_nowait(Bytes::from(format!("k{i}")), Bytes::from_static(b"v"))
                    .unwrap(),
            );
        }
        let max = *targets.iter().max().unwrap();
        assert!(t.durable_lsn() < max, "nowait writes must not sync inline");
        let horizon = t.commit_group().unwrap();
        assert!(horizon >= max);
        assert!(t.durable_lsn() >= max);
        // All ten writes retired on explicit groups, not per-write syncs.
        let s = t.stats();
        assert_eq!(s.commit_group_writes, 10);
        assert!(s.commit_groups <= 2);
    }

    #[test]
    fn commit_group_syncs_a_buffered_tree() {
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        let t = BLsmTree::open(
            data,
            wal,
            4096,
            BLsmConfig::default(),
            Arc::new(AppendOperator),
        )
        .unwrap();
        t.put(Bytes::from_static(b"k"), Bytes::from_static(b"v"))
            .unwrap();
        // Buffered writes wait on nothing...
        assert_eq!(t.durable_lsn(), 0);
        // ...but an explicit group is a real sync barrier.
        let horizon = t.commit_group().unwrap();
        assert!(horizon > 0);
        assert_eq!(t.durable_lsn(), horizon);
    }

    #[test]
    fn degraded_tree_commit_group_is_a_noop() {
        let data: SharedDevice = Arc::new(MemDevice::new());
        let wal: SharedDevice = Arc::new(MemDevice::new());
        let config = BLsmConfig {
            durability: Durability::None,
            ..Default::default()
        };
        let t = BLsmTree::open(data, wal, 4096, config, Arc::new(AppendOperator)).unwrap();
        t.put(Bytes::from_static(b"k"), Bytes::from_static(b"v"))
            .unwrap();
        assert_eq!(t.commit_group().unwrap(), 0);
        assert_eq!(
            t.put_nowait(Bytes::from_static(b"a"), Bytes::from_static(b"b"))
                .unwrap(),
            0
        );
    }

    #[test]
    fn concurrent_sync_writers_share_groups() {
        let t = Arc::new(sync_tree());
        let threads = 8;
        let per_thread = 25u32;
        let max_target = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for w in 0..threads {
                let t = Arc::clone(&t);
                let max_target = Arc::clone(&max_target);
                s.spawn(move || {
                    for i in 0..per_thread {
                        t.put(
                            Bytes::from(format!("w{w}-k{i}")),
                            Bytes::from_static(b"value"),
                        )
                        .unwrap();
                        // ordering: AcqRel — test bookkeeping only.
                        max_target.fetch_max(t.durable_lsn(), Ordering::AcqRel);
                    }
                });
            }
        });
        let s = t.stats();
        let total = u64::from(threads * per_thread);
        assert_eq!(s.commit_group_writes, total);
        assert!(s.commit_groups >= 1 && s.commit_groups <= total);
        // Every write returned only after its append was durable.
        // ordering: Acquire — test bookkeeping only.
        assert!(t.durable_lsn() >= max_target.load(Ordering::Acquire));
        for w in 0..threads {
            for i in (0..per_thread).step_by(7) {
                assert!(t.get(format!("w{w}-k{i}").as_bytes()).unwrap().is_some());
            }
        }
    }

    #[test]
    fn replicated_records_can_batch_through_one_group() {
        let leader = sync_tree();
        let follower = sync_tree();
        for i in 0..20u32 {
            leader
                .put(Bytes::from(format!("k{i}")), Bytes::from(format!("v{i}")))
                .unwrap();
        }
        let (records, _) = leader.wal_records_from(0).unwrap();
        assert_eq!(records.len(), 20);
        let mut max_target = 0;
        for rec in &records {
            let (_seqno, target) = follower
                .apply_replicated_nowait(&rec.payload)
                .unwrap()
                .expect("fresh record applies");
            max_target = max_target.max(target);
        }
        assert!(follower.commit_group().unwrap() >= max_target);
        assert!(follower.get(b"k7").unwrap().is_some());
        // Duplicated delivery stays a no-op through the nowait path.
        assert!(follower
            .apply_replicated_nowait(&records[0].payload)
            .unwrap()
            .is_none());
    }
}
