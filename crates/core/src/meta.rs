//! Engine metadata persisted through the manifest (shadow-paged root).
//!
//! Saved atomically at every merge installation; recovery reads it back,
//! reopens the listed components, and replays the logical log (§4.4.2).

use blsm_storage::codec::{self, Reader};
use blsm_storage::{Lsn, PageId, Region, RegionAllocator, Result, StorageError};

/// Which slot of the three-level tree a persisted component occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentSlot {
    /// `C1` — the middle component.
    C1,
    /// `C1'` — the `C1` snapshot being merged into `C2`.
    C1Prime,
    /// `C2` — the largest component.
    C2,
}

impl ComponentSlot {
    fn to_u8(self) -> u8 {
        match self {
            ComponentSlot::C1 => 1,
            ComponentSlot::C1Prime => 2,
            ComponentSlot::C2 => 3,
        }
    }

    fn from_u8(v: u8) -> Result<ComponentSlot> {
        Ok(match v {
            1 => ComponentSlot::C1,
            2 => ComponentSlot::C1Prime,
            3 => ComponentSlot::C2,
            other => {
                return Err(StorageError::InvalidFormat(format!(
                    "bad component slot {other}"
                )))
            }
        })
    }
}

/// The persisted root of the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeMeta {
    /// Live components and their (exact-sized) regions.
    pub components: Vec<(ComponentSlot, Region)>,
    /// Region allocator state at save time.
    pub allocator: RegionAllocator,
    /// Regions of retired components still allocated at save time (a
    /// reader pinning an old catalog kept them alive). The retired list
    /// itself does not survive a restart, so reopen reclaims these —
    /// otherwise a component retired-but-pinned at the final manifest
    /// save would leak its region on disk permanently.
    pub retired: Vec<Region>,
    /// Logical-log truncation point: replay starts here.
    pub wal_head: Lsn,
    /// Next sequence number to assign (replayed records may push it up).
    pub next_seqno: u64,
}

const META_MAGIC: u32 = 0x4d53_4c42; // "BLSM"

impl TreeMeta {
    /// Serializes for the manifest slot.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.components.len() * 24);
        codec::put_u32(&mut out, META_MAGIC);
        codec::put_u64(&mut out, self.wal_head);
        codec::put_u64(&mut out, self.next_seqno);
        codec::put_varint(&mut out, self.components.len() as u64);
        for (slot, region) in &self.components {
            codec::put_u8(&mut out, slot.to_u8());
            codec::put_u64(&mut out, region.start.0);
            codec::put_u64(&mut out, region.pages);
        }
        self.allocator.encode(&mut out);
        codec::put_varint(&mut out, self.retired.len() as u64);
        for region in &self.retired {
            codec::put_u64(&mut out, region.start.0);
            codec::put_u64(&mut out, region.pages);
        }
        out
    }

    /// Deserializes a manifest payload.
    pub fn decode(bytes: &[u8]) -> Result<TreeMeta> {
        let mut r = Reader::new(bytes);
        let magic = r.u32()?;
        if magic != META_MAGIC {
            return Err(StorageError::InvalidFormat(format!(
                "bad tree meta magic {magic:#x}"
            )));
        }
        let wal_head = r.u64()?;
        let next_seqno = r.u64()?;
        let n = r.varint()?;
        let mut components = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let slot = ComponentSlot::from_u8(r.u8()?)?;
            let start = r.u64()?;
            let pages = r.u64()?;
            components.push((
                slot,
                Region {
                    start: PageId(start),
                    pages,
                },
            ));
        }
        let allocator = RegionAllocator::decode(&mut r)?;
        // Optional trailer: manifests written before retired-region
        // persistence end at the allocator state.
        let mut retired = Vec::new();
        if r.position() < bytes.len() {
            let n = r.varint()?;
            for _ in 0..n {
                let start = r.u64()?;
                let pages = r.u64()?;
                retired.push(Region {
                    start: PageId(start),
                    pages,
                });
            }
        }
        Ok(TreeMeta {
            components,
            allocator,
            wal_head,
            next_seqno,
            retired,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn roundtrip() {
        let mut allocator = RegionAllocator::new(128);
        let r1 = allocator.alloc(100);
        let r2 = allocator.alloc(500);
        let _r3 = allocator.alloc(7);
        allocator.free(r1);
        let meta = TreeMeta {
            components: vec![
                (ComponentSlot::C1, r2),
                (
                    ComponentSlot::C2,
                    Region {
                        start: PageId(700),
                        pages: 42,
                    },
                ),
            ],
            allocator,
            wal_head: 123_456,
            next_seqno: 999,
            retired: vec![Region {
                start: PageId(2000),
                pages: 64,
            }],
        };
        let enc = meta.encode();
        assert_eq!(TreeMeta::decode(&enc).unwrap(), meta);
    }

    #[test]
    fn decode_tolerates_missing_retired_trailer() {
        // A pre-trailer manifest ends at the allocator state. With no
        // retired regions, the trailer is a single varint 0 — strip it to
        // emulate the legacy layout.
        let meta = TreeMeta {
            components: vec![],
            allocator: RegionAllocator::new(128),
            wal_head: 7,
            next_seqno: 3,
            retired: vec![],
        };
        let enc = meta.encode();
        let legacy = &enc[..enc.len() - 1];
        assert_eq!(TreeMeta::decode(legacy).unwrap(), meta);
    }

    #[test]
    fn rejects_garbage() {
        assert!(TreeMeta::decode(&[0u8; 3]).is_err());
        assert!(TreeMeta::decode(&[0xff; 64]).is_err());
    }

    #[test]
    fn empty_components_ok() {
        let meta = TreeMeta {
            components: vec![],
            allocator: RegionAllocator::new(128),
            wal_head: 0,
            next_seqno: 1,
            retired: vec![],
        };
        assert_eq!(TreeMeta::decode(&meta.encode()).unwrap(), meta);
    }
}
