//! Key-range partitioning — the paper's declared future work, implemented.
//!
//! "We have not yet implemented partitioning" (§4); the paper nonetheless
//! argues for it in three places, all of which this module realizes:
//!
//! * §2.3.2 — "partitioning is the best way to allow LSM-Trees to
//!   leverage write skew": merge activity concentrates on frequently
//!   updated key ranges, because a partition that receives no writes
//!   never merges.
//! * §3.3 — "we can further improve short-scan performance in conjunction
//!   with partitioning ... only a small fraction of the tree would be
//!   subject to merging at any given time. The remainder of the tree
//!   would require two seeks per scan."
//! * §4.2.2 — partitioning bounds the stalls snowshoveling can introduce
//!   when the distributions of `C0` and `C1` keys diverge, because each
//!   partition's `C1` only covers its own range.
//!
//! [`PartitionedBLsm`] routes each key to one of a fixed set of
//! range-partitioned [`BLsmTree`]s (each the paper's three-level tree with
//! its own spring-and-gear scheduler); scans stitch partitions together in
//! key order. Partition boundaries are fixed at creation — dynamic
//! re-partitioning belongs to systems like partitioned exponential
//! files (ref. \[16\]) and is out of scope here, as it was for the paper.
//!
//! # Relation to [`crate::ShardedBLsm`]
//!
//! Two deliberately distinct layers share one keyspace-splitting idea
//! (and share its arithmetic through [`crate::route`]):
//!
//! * **This module** is the *in-process scheduling experiment*: `&mut
//!   self`, single-threaded, one coordinated partition scheduler
//!   driving merge quanta across partitions (`external_pacing`), so the
//!   §2.3.2/§4.2.2 skew arguments can be measured deterministically.
//! * **[`crate::ShardedBLsm`]** is the *durable serving tier*: each
//!   shard is a whole engine behind [`crate::ThreadedBLsm`] — its own
//!   WAL, directory, merge thread and recovery — plus a persisted shard
//!   manifest and per-shard backpressure for the network router.
//!
//! Neither subsumes the other: collapsing this facade into the sharded
//! tier would lose the deterministic coordinated-scheduler experiments,
//! and building the serving tier on `&mut self` partitions would
//! serialize all shards behind one borrow.

use std::sync::Arc;

use bytes::Bytes;

use blsm_memtable::MergeOperator;
use blsm_storage::{Result, SharedDevice};

use crate::config::BLsmConfig;
use crate::read::ScanItem;
use crate::stats::TreeStatsSnapshot;
use crate::tree::BLsmTree;

/// A set of range-partitioned bLSM trees behind one keyspace.
///
/// When created with `coordinated = true`, the store becomes the
/// partition scheduler of Figure 3 layered over each tree's level
/// scheduler: per-tree pacing is disabled (`external_pacing`) and merge
/// work is granted to *one focused partition at a time*, rotating when
/// the focus quiesces. At any instant only a small fraction of the
/// keyspace is under merge, which is what buys §3.3's two-seek scans.
pub struct PartitionedBLsm {
    /// `bounds[i]` is the inclusive lower bound of partition `i + 1`;
    /// partition 0 covers everything below `bounds[0]`.
    bounds: Vec<Bytes>,
    partitions: Vec<BLsmTree>,
    /// Partition currently granted merge work (coordinated mode).
    focus: usize,
    coordinated: bool,
}

impl std::fmt::Debug for PartitionedBLsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedBLsm")
            .field("partitions", &self.bounds.len().saturating_add(1))
            .field("coordinated", &self.coordinated)
            .finish_non_exhaustive()
    }
}

impl PartitionedBLsm {
    /// Creates `bounds.len() + 1` partitions. `devices(i)` supplies the
    /// (data, log) device pair for partition `i`; each partition gets
    /// `pool_pages` of cache and a clone of `config` (so the memory
    /// budget given in `config` is *per partition*).
    pub fn create(
        bounds: Vec<Bytes>,
        devices: impl Fn(usize) -> (SharedDevice, SharedDevice),
        pool_pages: usize,
        config: BLsmConfig,
        op: Arc<dyn MergeOperator>,
    ) -> Result<PartitionedBLsm> {
        Self::create_with_mode(bounds, devices, pool_pages, config, op, true)
    }

    /// As [`create`](Self::create), with explicit control over merge
    /// coordination (`false` = every partition paces itself).
    pub fn create_with_mode(
        bounds: Vec<Bytes>,
        devices: impl Fn(usize) -> (SharedDevice, SharedDevice),
        pool_pages: usize,
        mut config: BLsmConfig,
        op: Arc<dyn MergeOperator>,
        coordinated: bool,
    ) -> Result<PartitionedBLsm> {
        assert!(
            crate::route::bounds_are_sorted(&bounds),
            "bounds must be sorted"
        );
        config.external_pacing = coordinated;
        let mut partitions = Vec::with_capacity(bounds.len() + 1);
        for i in 0..=bounds.len() {
            let (data, wal) = devices(i);
            partitions.push(BLsmTree::open(
                data,
                wal,
                pool_pages,
                config.clone(),
                op.clone(),
            )?);
        }
        Ok(PartitionedBLsm {
            bounds,
            partitions,
            focus: 0,
            coordinated,
        })
    }

    /// The partition scheduler: grant merge work to the focused partition,
    /// rotating focus when it quiesces. `incoming` is the byte size of the
    /// write that just happened anywhere in the store; the granted budget
    /// covers the whole store's steady-state merge debt for that write.
    fn drive_merges(&mut self, incoming: u64) -> Result<()> {
        if !self.coordinated {
            return Ok(());
        }
        let n = self.partitions.len();
        for _ in 0..n {
            let p = &mut self.partitions[self.focus];
            let (m01, m12) = p.merges_active();
            let c0 = p.c0_bytes() as f64;
            let start_mark = p.config().high_water * p.config().mem_budget as f64;
            if m01 || m12 || c0 >= start_mark {
                let r = p.current_r();
                let budget = (incoming as f64 * (2.0 + 2.0 * r)).ceil() as u64 + 512;
                p.maintenance(budget)?;
                return Ok(());
            }
            self.focus = (self.focus + 1) % n;
        }
        Ok(())
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Index of the partition owning `key` (shared routing arithmetic,
    /// see [`crate::route`]).
    pub fn partition_for(&self, key: &[u8]) -> usize {
        crate::route::shard_for(&self.bounds, key)
    }

    /// Access a partition's tree (diagnostics, per-partition stats).
    pub fn partition(&self, i: usize) -> &BLsmTree {
        &self.partitions[i]
    }

    /// Blind write.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        let value = value.into();
        let incoming = (key.len() + value.len()) as u64;
        let p = self.partition_for(&key);
        self.partitions[p].put(key, value)?;
        self.drive_merges(incoming)
    }

    /// Delete.
    pub fn delete(&mut self, key: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        let incoming = key.len() as u64 + 16;
        let p = self.partition_for(&key);
        self.partitions[p].delete(key)?;
        self.drive_merges(incoming)
    }

    /// Blind delta.
    pub fn apply_delta(&mut self, key: impl Into<Bytes>, delta: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        let delta = delta.into();
        let incoming = (key.len() + delta.len()) as u64;
        let p = self.partition_for(&key);
        self.partitions[p].apply_delta(key, delta)?;
        self.drive_merges(incoming)
    }

    /// Point lookup (lock-free against each partition's merges).
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let p = self.partition_for(key);
        self.partitions[p].get(key)
    }

    /// Checked insert.
    pub fn insert_if_not_exists(
        &mut self,
        key: impl Into<Bytes>,
        value: impl Into<Bytes>,
    ) -> Result<bool> {
        let key = key.into();
        let value = value.into();
        let incoming = (key.len() + value.len()) as u64;
        let p = self.partition_for(&key);
        let inserted = self.partitions[p].insert_if_not_exists(key, value)?;
        self.drive_merges(incoming)?;
        Ok(inserted)
    }

    /// Ordered scan across partition boundaries: partitions hold disjoint
    /// ranges, so results concatenate in key order.
    pub fn scan(&self, from: &[u8], limit: usize) -> Result<Vec<ScanItem>> {
        let mut out = Vec::with_capacity(limit);
        let first = self.partition_for(from);
        for p in first..self.partitions.len() {
            let start = if p == first { from } else { &[][..] };
            let chunk = self.partitions[p].scan(start, limit - out.len())?;
            out.extend(chunk);
            if out.len() >= limit {
                break;
            }
        }
        Ok(out)
    }

    /// Runs merge work on every partition.
    pub fn maintenance(&mut self, budget_per_partition: u64) -> Result<()> {
        for p in &mut self.partitions {
            p.maintenance(budget_per_partition)?;
        }
        Ok(())
    }

    /// Checkpoints every partition.
    pub fn checkpoint(&mut self) -> Result<()> {
        for p in &mut self.partitions {
            p.checkpoint()?;
        }
        Ok(())
    }

    /// Sum of per-partition stats.
    pub fn stats(&self) -> TreeStatsSnapshot {
        let mut total = TreeStatsSnapshot::default();
        for p in &self.partitions {
            total.accumulate(&p.stats());
        }
        total
    }

    /// How many partitions currently have a merge in flight — the §3.3
    /// argument is that this stays a small fraction of the total.
    pub fn partitions_merging(&self) -> usize {
        self.partitions
            .iter()
            .filter(|p| {
                let (a, b) = p.merges_active();
                a || b
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use blsm_memtable::AppendOperator;
    use blsm_storage::MemDevice;

    fn mem_devices(_: usize) -> (SharedDevice, SharedDevice) {
        (Arc::new(MemDevice::new()), Arc::new(MemDevice::new()))
    }

    fn key(i: u32) -> Bytes {
        Bytes::from(format!("user{i:08}"))
    }

    fn new_store(partitions: usize, records_hint: u32) -> PartitionedBLsm {
        // Evenly spaced bounds over the key space.
        let bounds: Vec<Bytes> = (1..partitions)
            .map(|p| key((records_hint as u64 * p as u64 / partitions as u64) as u32))
            .collect();
        PartitionedBLsm::create(
            bounds,
            mem_devices,
            256,
            BLsmConfig {
                mem_budget: 64 << 10,
                ..Default::default()
            },
            Arc::new(AppendOperator),
        )
        .unwrap()
    }

    #[test]
    fn routing_covers_whole_keyspace() {
        let store = new_store(8, 8_000);
        assert_eq!(store.partition_count(), 8);
        assert_eq!(store.partition_for(b""), 0);
        assert_eq!(store.partition_for(key(0).as_ref()), 0);
        assert_eq!(store.partition_for(key(7_999).as_ref()), 7);
        assert_eq!(store.partition_for(b"zzzz"), 7);
        // Boundary keys go to the right-hand partition (inclusive lower
        // bound).
        assert_eq!(store.partition_for(key(1_000).as_ref()), 1);
        assert_eq!(store.partition_for(key(999).as_ref()), 0);
    }

    #[test]
    fn put_get_scan_across_partitions() {
        let mut store = new_store(4, 4_000);
        for i in 0..4_000u32 {
            store.put(key(i), Bytes::from(format!("v{i}"))).unwrap();
        }
        for i in (0..4_000u32).step_by(173) {
            assert_eq!(
                store.get(&key(i)).unwrap().unwrap(),
                Bytes::from(format!("v{i}"))
            );
        }
        // A scan that spans two partition boundaries.
        let rows = store.scan(&key(950), 200).unwrap();
        assert_eq!(rows.len(), 200);
        for (j, row) in rows.iter().enumerate() {
            assert_eq!(row.key, key(950 + j as u32));
        }
    }

    #[test]
    fn skewed_writes_merge_only_hot_partitions() {
        // §2.3.2: merge activity must concentrate on frequently updated
        // ranges. Hammer one partition; the others must never merge.
        let mut store = new_store(8, 8_000);
        for i in 0..8_000u32 {
            store.put(key(i), Bytes::from(vec![0u8; 64])).unwrap();
        }
        store.checkpoint().unwrap();
        let before: Vec<u64> = (0..8)
            .map(|p| store.partition(p).stats().merges01)
            .collect();
        // All subsequent writes land in partition 2's range.
        for round in 0..30_000u32 {
            let i = 2_000 + (round % 1_000);
            store.put(key(i), Bytes::from(vec![1u8; 64])).unwrap();
        }
        let hot = store.partition(2).stats().merges01 - before[2];
        assert!(hot > 0, "the hot partition must have merged");
        for p in [0usize, 1, 3, 4, 5, 6, 7] {
            let cold = store.partition(p).stats().merges01 - before[p];
            assert_eq!(cold, 0, "cold partition {p} merged needlessly");
        }
    }

    #[test]
    fn most_partitions_are_merge_free_at_any_instant() {
        // §3.3: "only a small fraction of the tree would be subject to
        // merging at any given time", so most scans see a quiescent
        // partition.
        let mut store = new_store(8, 8_000);
        let mut rng = 0x9a7u64;
        let mut max_merging = 0;
        for _ in 0..40_000u32 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = ((rng >> 33) % 8_000) as u32;
            store.put(key(i), Bytes::from(vec![0u8; 64])).unwrap();
            max_merging = max_merging.max(store.partitions_merging());
        }
        assert!(
            max_merging <= store.partition_count(),
            "sanity: {max_merging}"
        );
        // With uniform writes all partitions fill at the same rate; the
        // interesting observable is that each individual partition's
        // merges are short (input = 1/8th of the data), so scans blocked
        // by merging ranges are 8x rarer in time x space. Spot-check that
        // scans work mid-merge across all partitions.
        let rows = store.scan(&key(0), 64).unwrap();
        assert_eq!(rows.len(), 64);
    }

    #[test]
    fn deltas_and_checked_inserts_route_correctly() {
        let mut store = new_store(3, 3_000);
        store.put(key(10), Bytes::from_static(b"a")).unwrap();
        store
            .apply_delta(key(10), Bytes::from_static(b"b"))
            .unwrap();
        store
            .apply_delta(key(2_500), Bytes::from_static(b"solo"))
            .unwrap();
        assert_eq!(store.get(&key(10)).unwrap().unwrap().as_ref(), b"ab");
        assert_eq!(store.get(&key(2_500)).unwrap().unwrap().as_ref(), b"solo");
        assert!(!store
            .insert_if_not_exists(key(10), Bytes::from_static(b"x"))
            .unwrap());
        assert!(store
            .insert_if_not_exists(key(11), Bytes::from_static(b"y"))
            .unwrap());
        store.delete(key(10)).unwrap();
        assert!(store.get(&key(10)).unwrap().is_none());
    }
}
