//! Property-based tests for on-disk components.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    missing_debug_implementations
)]

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;

use blsm_memtable::{AppendOperator, Entry, Versioned};
use blsm_sstable::{EntryStream, MergeIter, PageVersion, ReadMode, Sstable, SstableBuilder};
use blsm_storage::{BufferPool, MemDevice, PageId, Region};

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(Arc::new(MemDevice::new()), 8192))
}

fn build(pool: &Arc<BufferPool>, start: u64, entries: &BTreeMap<Bytes, Versioned>) -> Arc<Sstable> {
    let region = Region {
        start: PageId(start),
        pages: 8192,
    };
    let mut b = SstableBuilder::new(pool.clone(), region, entries.len() as u64);
    for (k, v) in entries {
        b.add(k, v).unwrap();
    }
    Arc::new(b.finish().unwrap())
}

fn arb_entries(max: usize) -> impl Strategy<Value = BTreeMap<Bytes, Versioned>> {
    proptest::collection::btree_map(
        proptest::collection::vec(any::<u8>(), 1..24).prop_map(Bytes::from),
        (
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..2048),
            0u8..3,
        )
            .prop_map(|(seq, val, kind)| match kind {
                0 => Versioned::put(seq, Bytes::from(val)),
                1 => Versioned::delta(seq, Bytes::from(val)),
                _ => Versioned::tombstone(seq),
            }),
        1..max,
    )
}

/// Like [`arb_entries`] but with values up to 6 KiB, so some records span
/// overflow pages.
fn arb_entries_spanning(max: usize) -> impl Strategy<Value = BTreeMap<Bytes, Versioned>> {
    proptest::collection::btree_map(
        proptest::collection::vec(any::<u8>(), 1..24).prop_map(Bytes::from),
        (any::<u64>(), 1usize..6000)
            .prop_map(|(seq, len)| Versioned::put(seq, Bytes::from(vec![(seq % 251) as u8; len]))),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Build → read-back equivalence: every entry is retrievable by point
    /// lookup, iteration returns exactly the input in order, and the bloom
    /// filter has no false negatives. Also covers page-spanning values.
    #[test]
    fn build_readback_roundtrip(entries in arb_entries(120)) {
        let pool = pool();
        let table = build(&pool, 0, &entries);
        prop_assert_eq!(table.entry_count(), entries.len() as u64);
        for (k, v) in &entries {
            prop_assert!(table.may_contain(k), "bloom false negative");
            let got = table.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        for mode in [ReadMode::Pooled, ReadMode::Buffered(8)] {
            let scanned: Vec<(Bytes, Versioned)> = table
                .iter(mode)
                .map(|r| r.unwrap())
                .map(|e| (e.key, e.version))
                .collect();
            let want: Vec<(Bytes, Versioned)> =
                entries.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(&scanned, &want);
        }
    }

    /// Read compat: a component written in the v1 page layout (no entry
    /// offset tables) — including page-spanning records — reads back
    /// identically to a v2 build of the same entries, both through the
    /// building pool and after a cold reopen from the device.
    #[test]
    fn v1_layout_reads_back_identically(entries in arb_entries_spanning(40)) {
        let pool = pool();
        let region_v1 = Region { start: PageId(0), pages: 4096 };
        let region_v2 = Region { start: PageId(8192), pages: 4096 };
        let mut builds = Vec::new();
        for (region, version) in [(region_v1, PageVersion::V1), (region_v2, PageVersion::V2)] {
            let mut b = SstableBuilder::new(pool.clone(), region, entries.len() as u64)
                .with_page_version(version);
            for (k, v) in &entries {
                b.add(k, v).unwrap();
            }
            builds.push(Arc::new(b.finish().unwrap()));
        }
        let (v1, v2) = (&builds[0], &builds[1]);
        prop_assert_eq!(v1.meta().entry_count, v2.meta().entry_count);
        for (k, v) in &entries {
            prop_assert_eq!(v1.get(k).unwrap().as_ref(), Some(v));
            prop_assert_eq!(v2.get(k).unwrap().as_ref(), Some(v));
        }
        let scan = |t: &Arc<Sstable>| -> Vec<(Bytes, Versioned)> {
            t.iter(ReadMode::Pooled)
                .map(|r| r.unwrap())
                .map(|e| (e.key, e.version))
                .collect()
        };
        prop_assert_eq!(scan(v1), scan(v2));

        // Cold reopen of the v1 component: the layout is self-describing
        // per page, so no flag is needed to read old components.
        let region = v1.region();
        drop(builds);
        pool.drop_clean();
        let reopened = Sstable::open(pool, region).unwrap();
        for (k, v) in &entries {
            prop_assert_eq!(reopened.get(k).unwrap().as_ref(), Some(v));
        }
        let report = reopened.scrub();
        prop_assert!(report.errors.is_empty(), "v1 scrub found: {:?}", report.errors);
    }

    /// Recovery equivalence: reopening the component from its region gives
    /// identical contents and metadata.
    #[test]
    fn open_recovers_identical_table(entries in arb_entries(60)) {
        let pool = pool();
        let table = build(&pool, 0, &entries);
        let region = table.region();
        let meta = table.meta().clone();
        drop(table);
        pool.drop_clean();
        let reopened = Sstable::open(pool, region).unwrap();
        prop_assert_eq!(reopened.meta(), &meta);
        for (k, v) in &entries {
            let got = reopened.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }

    /// iter_from(k) returns exactly the suffix of entries with key >= k.
    #[test]
    fn iter_from_is_exact_suffix(entries in arb_entries(80), probe in proptest::collection::vec(any::<u8>(), 0..24)) {
        let pool = pool();
        let table = build(&pool, 0, &entries);
        let probe = Bytes::from(probe);
        let got: Vec<Bytes> = table
            .iter_from(&probe, ReadMode::Pooled)
            .map(|r| r.unwrap().key)
            .collect();
        let want: Vec<Bytes> = entries.range(probe..).map(|(k, _)| k.clone()).collect();
        prop_assert_eq!(got, want);
    }

    /// A two-table MergeIter resolves to newest-wins with bottom-level
    /// tombstone elision, matching a map-overlay model.
    #[test]
    fn merge_iter_matches_overlay_model(
        old in arb_entries(60),
        new in arb_entries(60),
    ) {
        let pool = pool();
        // Force the "new" table to have strictly newer seqnos.
        let new: BTreeMap<Bytes, Versioned> = new
            .into_iter()
            .map(|(k, mut v)| {
                v.seqno |= 1 << 63;
                (k, v)
            })
            .collect();
        let old: BTreeMap<Bytes, Versioned> = old
            .into_iter()
            .map(|(k, mut v)| {
                v.seqno &= !(1 << 63);
                (k, v)
            })
            .collect();
        let t_old = build(&pool, 0, &old);
        let t_new = build(&pool, 20_000, &new);
        let streams: Vec<EntryStream<'static>> = vec![
            Box::new(t_new.iter(ReadMode::Pooled)),
            Box::new(t_old.iter(ReadMode::Pooled)),
        ];
        let merged: BTreeMap<Bytes, Versioned> =
            MergeIter::new(streams, Arc::new(AppendOperator), true)
                .map(|r| r.unwrap())
                .map(|e| (e.key, e.version))
                .collect();

        // Model: overlay new on old, resolve per §3.1.1 at the bottom.
        let mut keys: std::collections::BTreeSet<Bytes> = old.keys().cloned().collect();
        keys.extend(new.keys().cloned());
        for k in keys {
            let mut versions = Vec::new();
            if let Some(v) = new.get(&k) {
                versions.push(v.clone());
            }
            if let Some(v) = old.get(&k) {
                versions.push(v.clone());
            }
            let want = blsm_memtable::merge_versions(&AppendOperator, &versions, true);
            let got = merged.get(&k).cloned();
            prop_assert_eq!(got, want, "key {:?}", k);
            if let Some(v) = merged.get(&k) {
                prop_assert!(
                    matches!(v.entry, Entry::Put(_)),
                    "bottom-level merge output must be base records"
                );
            }
        }
    }

    /// The builder's readable view agrees with the finished table at every
    /// prefix of the build.
    #[test]
    fn builder_view_is_consistent_prefix(entries in arb_entries(60), checkpoint in 0usize..60) {
        let pool = pool();
        let region = Region { start: PageId(0), pages: 8192 };
        let mut b = SstableBuilder::new(pool, region, entries.len() as u64)
            .with_flush_pages(2);
        let items: Vec<(&Bytes, &Versioned)> = entries.iter().collect();
        let cut = checkpoint.min(items.len());
        for (k, v) in &items[..cut] {
            b.add(k, v).unwrap();
        }
        let view = b.view();
        for (i, (k, v)) in items.iter().enumerate() {
            if i < cut {
                let got = view.get(k).unwrap();
                prop_assert_eq!(got.as_ref(), Some(*v));
            } else {
                prop_assert!(view.get(k).unwrap().is_none());
            }
        }
        let seen: Vec<Bytes> = view.iter_from(b"").map(|r| r.unwrap().key).collect();
        let want: Vec<Bytes> = items[..cut].iter().map(|(k, _)| (*k).clone()).collect();
        prop_assert_eq!(seen, want);
    }
}
