//! On-disk encoding of entries, data pages, index pages and footers.
//!
//! All multi-byte integers are little-endian; variable-length quantities
//! use LEB128 (see `blsm_storage::codec`).
//!
//! Entry encoding:
//! `varint key_len | key | kind(1) | varint seqno | [varint val_len | val]`
//! where `kind` is 0=Put, 1=Delta, 2=Tombstone (value present for 0 and 1).
//!
//! Data page payload (v1, `PageType::Data`):
//! `count(2) | overflow_pages(2) | entries...`
//! When the *last* entry's value does not fit, its remaining bytes continue
//! in `overflow_pages` raw overflow pages immediately following the leaf.
//!
//! Data page payload (v2, `PageType::DataV2`):
//! `count(2) | overflow_pages(2) | entries... | pad | offset_table`
//! identical to v1 except for a trailing table of `count` little-endian
//! `u16` payload offsets — one per entry, in entry order — that lets a
//! point lookup binary-search the leaf in O(log n) entry decodes instead
//! of scanning it. Spanning records (`overflow_pages > 0`) are always
//! written in the v1 layout; a v2 page claiming overflow pages is corrupt.
//!
//! Decoding is **zero-copy**: the page payload is held as an `Arc`-backed
//! [`Bytes`] and every decoded key and value is a subslice of it, so a
//! lookup that decodes a dozen non-matching entries performs no per-entry
//! heap allocation. The sole exception is reassembling a spanning value
//! from its overflow pages, which by nature concatenates buffers.

use bytes::Bytes;

use blsm_memtable::{Entry, Versioned};
use blsm_storage::codec::{self, Reader};
use blsm_storage::page::{SharedPage, PAGE_HEADER_LEN};
use blsm_storage::{ComponentId, Result, StorageError};

/// Borrowed view of a decoded entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryRef {
    /// The key.
    pub key: Bytes,
    /// The versioned record.
    pub version: Versioned,
}

/// Encodes one entry.
pub fn encode_entry(out: &mut Vec<u8>, key: &[u8], v: &Versioned) {
    codec::put_bytes(out, key);
    match &v.entry {
        Entry::Put(val) => {
            codec::put_u8(out, 0);
            codec::put_varint(out, v.seqno);
            codec::put_bytes(out, val);
        }
        Entry::Delta(val) => {
            codec::put_u8(out, 1);
            codec::put_varint(out, v.seqno);
            codec::put_bytes(out, val);
        }
        Entry::Tombstone => {
            codec::put_u8(out, 2);
            codec::put_varint(out, v.seqno);
        }
    }
}

/// Size in bytes [`encode_entry`] would produce.
pub fn encoded_len(key: &[u8], v: &Versioned) -> usize {
    let mut n = varint_len(key.len() as u64) + key.len() + 1 + varint_len(v.seqno);
    match &v.entry {
        Entry::Put(val) | Entry::Delta(val) => {
            n += varint_len(val.len() as u64) + val.len();
        }
        Entry::Tombstone => {}
    }
    n
}

fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Decodes one entry zero-copy: the key and value of the result are
/// subslices of `payload`, not copies. `r` must be a cursor over exactly
/// `payload`'s bytes so its positions index into the shared buffer.
///
/// # Errors
///
/// Fails with [`StorageError::InvalidFormat`] on a truncated or malformed
/// encoding (unknown kind tag, field overruns the buffer).
pub fn decode_entry(payload: &Bytes, r: &mut Reader<'_>) -> Result<EntryRef> {
    let key_len = r.varint()? as usize;
    let key_start = r.position();
    r.skip(key_len)?;
    let key = payload.slice(key_start..key_start + key_len);
    let kind = r.u8()?;
    let seqno = r.varint()?;
    let entry = match kind {
        0 | 1 => {
            let val_len = r.varint()? as usize;
            let val_start = r.position();
            r.skip(val_len)?;
            let val = payload.slice(val_start..val_start + val_len);
            if kind == 0 {
                Entry::Put(val)
            } else {
                Entry::Delta(val)
            }
        }
        2 => Entry::Tombstone,
        other => {
            return Err(StorageError::InvalidFormat(format!(
                "bad entry kind {other}"
            )))
        }
    };
    Ok(EntryRef {
        key,
        version: Versioned { seqno, entry },
    })
}

/// Header bytes at the start of every data page payload.
pub const DATA_PAGE_HEADER: usize = 4;

/// Bytes per slot in the v2 trailing entry-offset table.
pub const ENTRY_OFFSET_SLOT: usize = 2;

/// Writes a data page payload header.
pub fn write_data_page_header(payload: &mut [u8], count: u16, overflow_pages: u16) {
    payload[0..2].copy_from_slice(&count.to_le_bytes());
    payload[2..4].copy_from_slice(&overflow_pages.to_le_bytes());
}

/// Writes the v2 trailing entry-offset table: `offsets[i]` is the payload
/// offset where entry `i` begins. The table occupies the last
/// `offsets.len() * 2` payload bytes.
///
/// # Panics
/// Panics if the table would not fit in `payload`.
pub fn write_entry_offsets(payload: &mut [u8], offsets: &[u16]) {
    let table_start = payload.len() - offsets.len() * ENTRY_OFFSET_SLOT;
    for (i, off) in offsets.iter().enumerate() {
        let at = table_start + i * ENTRY_OFFSET_SLOT;
        payload[at..at + 2].copy_from_slice(&off.to_le_bytes());
    }
}

/// Reads a little-endian `u16` from the first 2 bytes of `b`.
///
/// # Panics
/// Panics if `b` is shorter than 2 bytes.
pub(crate) fn le_u16(b: &[u8]) -> u16 {
    let mut a = [0u8; 2];
    a.copy_from_slice(&b[..2]);
    u16::from_le_bytes(a)
}

/// Reads `(count, overflow_pages)` from a data page payload.
pub fn read_data_page_header(payload: &[u8]) -> (u16, u16) {
    let count = le_u16(&payload[0..2]);
    let overflow = le_u16(&payload[2..4]);
    (count, overflow)
}

/// The payload of a cached page as a zero-copy [`Bytes`] view: the page's
/// `Arc` backs the buffer, so slices of the payload stay valid for as long
/// as any of them is held, independent of the pool's eviction.
pub fn shared_payload(page: &SharedPage) -> Bytes {
    Bytes::from_owner(page.clone()).slice(PAGE_HEADER_LEN..)
}

/// A parsed data-page payload supporting lazy, zero-copy entry access.
///
/// Holds the payload as a shared buffer; entries are decoded on demand and
/// their keys/values alias the buffer. For v2 pages the trailing offset
/// table (validated at parse time) enables O(log n) in-page binary search.
#[derive(Debug, Clone)]
pub struct LeafPage {
    payload: Bytes,
    count: usize,
    n_overflow: u16,
    /// True for the v2 layout (trailing entry-offset table present).
    has_offsets: bool,
}

impl LeafPage {
    /// Parses a data-page payload. `has_offsets` is true for
    /// `PageType::DataV2` pages; their offset table is validated here
    /// (in-bounds, strictly ascending, first entry right after the header)
    /// so later access can trust it.
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::Corruption`] on an invalid offset table
    /// or a v2 page claiming overflow pages, and with
    /// [`StorageError::InvalidFormat`] on a malformed header.
    pub fn parse(payload: Bytes, has_offsets: bool) -> Result<LeafPage> {
        if payload.len() < DATA_PAGE_HEADER {
            return Err(StorageError::InvalidFormat(format!(
                "data page payload too short: {} bytes",
                payload.len()
            )));
        }
        let (count, n_overflow) = read_data_page_header(&payload);
        let count = count as usize;
        if n_overflow > 0 {
            if has_offsets {
                return Err(StorageError::corruption(
                    ComponentId::Sstable,
                    None,
                    "v2 data page claims overflow pages; spanning records use the v1 layout",
                ));
            }
            if count != 1 {
                return Err(StorageError::InvalidFormat(format!(
                    "overflow data page must hold exactly 1 entry, found {count}"
                )));
            }
        }
        let leaf = LeafPage {
            payload,
            count,
            n_overflow,
            has_offsets,
        };
        if has_offsets {
            leaf.validate_offsets()?;
        }
        Ok(leaf)
    }

    /// Cheap structural validation of the v2 offset table: fits in the
    /// payload, strictly ascending, first entry starts right after the
    /// header, and no entry starts inside the table itself. O(count) u16
    /// reads, no entry decodes, no allocation.
    fn validate_offsets(&self) -> Result<()> {
        let corrupt = |what: String| {
            StorageError::corruption(
                ComponentId::Sstable,
                None,
                format!("entry-offset table corrupt: {what}"),
            )
        };
        let table_bytes = self.count * ENTRY_OFFSET_SLOT;
        let Some(entries_end) = self.payload.len().checked_sub(table_bytes) else {
            return Err(corrupt(format!(
                "{} entries need a {table_bytes}-byte table, payload is {} bytes",
                self.count,
                self.payload.len()
            )));
        };
        if entries_end < DATA_PAGE_HEADER {
            return Err(corrupt("table overlaps the page header".into()));
        }
        let mut prev = 0usize;
        for i in 0..self.count {
            let off = self.offset_of(i);
            if i == 0 && off != DATA_PAGE_HEADER {
                return Err(corrupt(format!(
                    "first entry offset {off} != header size {DATA_PAGE_HEADER}"
                )));
            }
            if i > 0 && off <= prev {
                return Err(corrupt(format!(
                    "offsets not strictly ascending at slot {i}: {prev} then {off}"
                )));
            }
            if off >= entries_end {
                return Err(corrupt(format!(
                    "slot {i} offset {off} reaches into the table (entries end at {entries_end})"
                )));
            }
            prev = off;
        }
        Ok(())
    }

    /// Entries on this page.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Overflow pages following this leaf (0 unless spanning).
    pub fn overflow_pages(&self) -> u16 {
        self.n_overflow
    }

    /// Whether this leaf holds a single record spanning overflow pages.
    pub fn is_spanning(&self) -> bool {
        self.n_overflow > 0
    }

    /// Whether this is a v2 page with a trailing offset table.
    pub fn has_offset_table(&self) -> bool {
        self.has_offsets
    }

    /// Payload offset of entry `i` from the v2 table (callers ensure
    /// `i < count` and `has_offsets`).
    fn offset_of(&self, i: usize) -> usize {
        let table_start = self.payload.len() - self.count * ENTRY_OFFSET_SLOT;
        le_u16(&self.payload[table_start + i * ENTRY_OFFSET_SLOT..]) as usize
    }

    /// The raw key bytes of entry `i` via the v2 offset table, without
    /// decoding the rest of the entry.
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::InvalidFormat`] if the entry's key field
    /// is truncated.
    fn key_at(&self, i: usize) -> Result<&[u8]> {
        let mut r = Reader::new(&self.payload);
        r.skip(self.offset_of(i))?;
        let key_len = r.varint()? as usize;
        let start = r.position();
        r.skip(key_len)?;
        Ok(&self.payload[start..start + key_len])
    }

    /// Decodes entry `i` via the v2 offset table (zero-copy).
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::InvalidFormat`] on a malformed entry.
    pub fn entry_at(&self, i: usize) -> Result<EntryRef> {
        debug_assert!(self.has_offsets && i < self.count);
        let mut r = Reader::new(&self.payload);
        r.skip(self.offset_of(i))?;
        decode_entry(&self.payload, &mut r)
    }

    /// Point lookup within a non-spanning leaf. v2 pages binary-search the
    /// offset table — O(log n) key decodes; v1 pages scan with early exit
    /// (leaf keys are strictly ascending). Only the matching entry is fully
    /// decoded, and nothing is copied either way.
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::InvalidFormat`] on a malformed entry.
    pub fn find(&self, key: &[u8]) -> Result<Option<EntryRef>> {
        debug_assert!(!self.is_spanning(), "spanning leaves use spanning_entry");
        if self.has_offsets {
            let mut lo = 0usize;
            let mut hi = self.count;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                match self.key_at(mid)?.cmp(key) {
                    std::cmp::Ordering::Less => lo = mid + 1,
                    std::cmp::Ordering::Greater => hi = mid,
                    std::cmp::Ordering::Equal => return self.entry_at(mid).map(Some),
                }
            }
            return Ok(None);
        }
        // v1: lazy forward scan, skipping value bytes of non-matching
        // entries and stopping at the first key past the target.
        let mut r = Reader::new(&self.payload);
        r.skip(DATA_PAGE_HEADER)?;
        for _ in 0..self.count {
            let key_len = r.varint()? as usize;
            let key_start = r.position();
            r.skip(key_len)?;
            let this_key = &self.payload[key_start..key_start + key_len];
            match this_key.cmp(key) {
                std::cmp::Ordering::Equal => {
                    let kind = r.u8()?;
                    let seqno = r.varint()?;
                    let entry = match kind {
                        0 | 1 => {
                            let val_len = r.varint()? as usize;
                            let val_start = r.position();
                            r.skip(val_len)?;
                            let val = self.payload.slice(val_start..val_start + val_len);
                            if kind == 0 {
                                Entry::Put(val)
                            } else {
                                Entry::Delta(val)
                            }
                        }
                        2 => Entry::Tombstone,
                        other => {
                            return Err(StorageError::InvalidFormat(format!(
                                "bad entry kind {other}"
                            )))
                        }
                    };
                    return Ok(Some(EntryRef {
                        key: self.payload.slice(key_start..key_start + key_len),
                        version: Versioned { seqno, entry },
                    }));
                }
                std::cmp::Ordering::Greater => return Ok(None),
                std::cmp::Ordering::Less => skip_entry_tail(&mut r)?,
            }
        }
        Ok(None)
    }

    /// Decodes every entry of a non-spanning leaf (zero-copy), in order.
    /// Iterators and integrity checks use this; point lookups use
    /// [`find`](Self::find).
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::InvalidFormat`] on a malformed entry.
    pub fn entries(&self) -> Result<Vec<EntryRef>> {
        debug_assert!(!self.is_spanning(), "spanning leaves use spanning_entry");
        let mut r = Reader::new(&self.payload);
        r.skip(DATA_PAGE_HEADER)?;
        let mut out = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            out.push(decode_entry(&self.payload, &mut r)?);
        }
        Ok(out)
    }

    /// Walks a v2 leaf start to end verifying that the offset table agrees
    /// with the actual entry boundaries: slot `i` must name exactly where
    /// entry `i` begins. Used by integrity checks; the hot path trusts the
    /// parse-time structural validation instead.
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::Corruption`] on any disagreement and
    /// with [`StorageError::InvalidFormat`] on a malformed entry.
    pub fn verify_offset_table(&self) -> Result<()> {
        if !self.has_offsets {
            return Ok(());
        }
        let mut r = Reader::new(&self.payload);
        r.skip(DATA_PAGE_HEADER)?;
        for i in 0..self.count {
            let off = self.offset_of(i);
            if r.position() != off {
                return Err(StorageError::corruption(
                    ComponentId::Sstable,
                    None,
                    format!(
                        "entry-offset table corrupt: slot {i} says {off}, entry {i} begins at {}",
                        r.position()
                    ),
                ));
            }
            decode_entry(&self.payload, &mut r)?;
        }
        let entries_end = self.payload.len() - self.count * ENTRY_OFFSET_SLOT;
        if r.position() > entries_end {
            return Err(StorageError::corruption(
                ComponentId::Sstable,
                None,
                format!(
                    "entry-offset table corrupt: entries end at {}, table begins at {entries_end}",
                    r.position()
                ),
            ));
        }
        Ok(())
    }

    /// The key of a spanning leaf's single record, zero-copy — so a lookup
    /// can reject a non-matching spanning leaf *before* reading any of its
    /// overflow pages.
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::InvalidFormat`] if the key field is
    /// malformed.
    pub fn spanning_key(&self) -> Result<Bytes> {
        debug_assert!(self.is_spanning());
        let mut r = Reader::new(&self.payload);
        r.skip(DATA_PAGE_HEADER)?;
        let key_len = r.varint()? as usize;
        let start = r.position();
        r.skip(key_len)?;
        Ok(self.payload.slice(start..start + key_len))
    }

    /// Reassembles a spanning leaf's single record. `overflow` supplies the
    /// concatenated payloads of the leaf's overflow pages; the value is the
    /// one place decoding allocates, because it spans physical pages.
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::InvalidFormat`] if the record is
    /// malformed, names a tombstone (tombstones never span), or promises
    /// more overflow bytes than were supplied.
    pub fn spanning_entry(&self, overflow: &[u8]) -> Result<EntryRef> {
        debug_assert!(self.is_spanning());
        let mut r = Reader::new(&self.payload);
        r.skip(DATA_PAGE_HEADER)?;
        let key_len = r.varint()? as usize;
        let key_start = r.position();
        r.skip(key_len)?;
        let key = self.payload.slice(key_start..key_start + key_len);
        let kind = r.u8()?;
        let seqno = r.varint()?;
        if kind == 2 {
            return Err(StorageError::InvalidFormat(
                "tombstone cannot span pages".into(),
            ));
        }
        if kind > 2 {
            return Err(StorageError::InvalidFormat(format!(
                "bad entry kind {kind}"
            )));
        }
        let val_len = r.varint()? as usize;
        let in_page = r.remaining();
        let from_page = &self.payload[self.payload.len() - in_page..];
        let needed_from_overflow = val_len.saturating_sub(in_page.min(val_len));
        if overflow.len() < needed_from_overflow {
            return Err(StorageError::InvalidFormat(format!(
                "spanning record needs {needed_from_overflow} overflow bytes, have {}",
                overflow.len()
            )));
        }
        let mut val = Vec::with_capacity(val_len);
        val.extend_from_slice(&from_page[..in_page.min(val_len)]);
        val.extend_from_slice(&overflow[..val_len - val.len()]);
        let entry = if kind == 0 {
            Entry::Put(Bytes::from(val))
        } else {
            Entry::Delta(Bytes::from(val))
        };
        Ok(EntryRef {
            key,
            version: Versioned { seqno, entry },
        })
    }
}

/// Skips the remainder of an entry (kind, seqno, value) whose key has
/// already been consumed.
fn skip_entry_tail(r: &mut Reader<'_>) -> Result<()> {
    let kind = r.u8()?;
    r.varint()?; // seqno
    match kind {
        0 | 1 => {
            let val_len = r.varint()? as usize;
            r.skip(val_len)
        }
        2 => Ok(()),
        other => Err(StorageError::InvalidFormat(format!(
            "bad entry kind {other}"
        ))),
    }
}

/// Parses all entries of a data page. `overflow` supplies the concatenated
/// payloads of the page's overflow pages (empty when the header says there
/// are none); `has_offsets` is true for v2 (`PageType::DataV2`) payloads.
///
/// # Errors
///
/// Fails with [`StorageError::InvalidFormat`] on malformed entries and
/// with [`StorageError::Corruption`] on an invalid v2 offset table.
pub fn parse_data_page(
    payload: &Bytes,
    overflow: &[u8],
    has_offsets: bool,
) -> Result<Vec<EntryRef>> {
    let leaf = LeafPage::parse(payload.clone(), has_offsets)?;
    if leaf.is_spanning() {
        Ok(vec![leaf.spanning_entry(overflow)?])
    } else {
        leaf.entries()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn v_put(seq: u64, val: &[u8]) -> Versioned {
        Versioned::put(seq, Bytes::copy_from_slice(val))
    }

    #[test]
    fn entry_roundtrip_all_kinds() {
        let cases = [
            ("k1", Versioned::put(7, Bytes::from_static(b"value"))),
            ("k2", Versioned::delta(8, Bytes::from_static(b"+1"))),
            ("k3", Versioned::tombstone(9)),
            ("", Versioned::put(0, Bytes::from_static(b""))),
        ];
        let mut buf = Vec::new();
        for (k, v) in &cases {
            let before = buf.len();
            encode_entry(&mut buf, k.as_bytes(), v);
            assert_eq!(buf.len() - before, encoded_len(k.as_bytes(), v));
        }
        let shared = Bytes::from(buf);
        let mut r = Reader::new(&shared);
        for (k, v) in &cases {
            let e = decode_entry(&shared, &mut r).unwrap();
            assert_eq!(e.key.as_ref(), k.as_bytes());
            assert_eq!(&e.version, v);
        }
    }

    #[test]
    fn decode_is_zero_copy() {
        let mut buf = Vec::new();
        encode_entry(&mut buf, b"somekey", &v_put(1, b"somevalue"));
        let shared = Bytes::from(buf);
        let base = shared.as_slice().as_ptr() as usize;
        let end = base + shared.len();
        let mut r = Reader::new(&shared);
        let e = decode_entry(&shared, &mut r).unwrap();
        let kp = e.key.as_slice().as_ptr() as usize;
        assert!((base..end).contains(&kp), "key must alias the buffer");
        match &e.version.entry {
            Entry::Put(v) => {
                let vp = v.as_slice().as_ptr() as usize;
                assert!((base..end).contains(&vp), "value must alias the buffer");
            }
            other => panic!("expected Put, got {other:?}"),
        }
    }

    fn make_page(entries: &[(&[u8], Versioned)], v2: bool) -> Bytes {
        let mut payload = vec![0u8; 4088];
        let mut body = Vec::new();
        let mut offsets = Vec::new();
        for (k, v) in entries {
            offsets.push((DATA_PAGE_HEADER + body.len()) as u16);
            encode_entry(&mut body, k, v);
        }
        payload[DATA_PAGE_HEADER..DATA_PAGE_HEADER + body.len()].copy_from_slice(&body);
        write_data_page_header(&mut payload, entries.len() as u16, 0);
        if v2 {
            write_entry_offsets(&mut payload, &offsets);
        }
        Bytes::from(payload)
    }

    #[test]
    fn data_page_roundtrip_v1_and_v2() {
        let entries = vec![
            (b"alpha".as_slice(), v_put(1, b"one")),
            (b"beta".as_slice(), v_put(2, b"two")),
            (b"gamma".as_slice(), Versioned::tombstone(3)),
        ];
        for v2 in [false, true] {
            let payload = make_page(&entries, v2);
            let got = parse_data_page(&payload, &[], v2).unwrap();
            assert_eq!(got.len(), 3, "v2={v2}");
            assert_eq!(got[0].key.as_ref(), b"alpha");
            assert_eq!(got[2].key.as_ref(), b"gamma");

            let leaf = LeafPage::parse(payload, v2).unwrap();
            leaf.verify_offset_table().unwrap();
            for (k, v) in &entries {
                let e = leaf.find(k).unwrap().expect("present");
                assert_eq!(&e.version, v);
            }
            assert!(leaf.find(b"aaaa").unwrap().is_none());
            assert!(leaf.find(b"betaa").unwrap().is_none());
            assert!(leaf.find(b"zzz").unwrap().is_none());
        }
    }

    #[test]
    fn v2_entry_at_random_access() {
        let entries: Vec<(Vec<u8>, Versioned)> = (0..40u32)
            .map(|i| (format!("key{i:04}").into_bytes(), v_put(u64::from(i), b"v")))
            .collect();
        let refs: Vec<(&[u8], Versioned)> = entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.clone()))
            .collect();
        let leaf = LeafPage::parse(make_page(&refs, true), true).unwrap();
        assert_eq!(leaf.count(), 40);
        for i in [0usize, 1, 20, 39] {
            let e = leaf.entry_at(i).unwrap();
            assert_eq!(e.key.as_ref(), refs[i].0);
        }
    }

    #[test]
    fn corrupt_offset_tables_are_typed_corruption() {
        let entries = vec![
            (b"aa".as_slice(), v_put(1, b"x")),
            (b"bb".as_slice(), v_put(2, b"y")),
        ];
        let good = make_page(&entries, true);
        assert!(LeafPage::parse(good.clone(), true).is_ok());

        let table_start = good.len() - 2 * ENTRY_OFFSET_SLOT;
        // Non-ascending offsets.
        let mut bad = good.to_vec();
        bad[table_start + 2..table_start + 4].copy_from_slice(&2u16.to_le_bytes());
        let err = LeafPage::parse(Bytes::from(bad), true).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
        // First offset not at the header boundary.
        let mut bad = good.to_vec();
        bad[table_start..table_start + 2].copy_from_slice(&9u16.to_le_bytes());
        let err = LeafPage::parse(Bytes::from(bad), true).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
        // Offset pointing into the table region.
        let mut bad = good.to_vec();
        bad[table_start + 2..table_start + 4]
            .copy_from_slice(&((good.len() - 1) as u16).to_le_bytes());
        let err = LeafPage::parse(Bytes::from(bad), true).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
        // A slot that parses but disagrees with the real entry boundary.
        let real_second = le_u16(&good[table_start + 2..]);
        let mut bad = good.to_vec();
        bad[table_start + 2..table_start + 4].copy_from_slice(&(real_second - 1).to_le_bytes());
        let leaf = LeafPage::parse(Bytes::from(bad), true).unwrap();
        let err = leaf.verify_offset_table().unwrap_err();
        assert!(err.is_corruption(), "got {err}");
        // A v2 page claiming overflow pages.
        let mut bad = good.to_vec();
        write_data_page_header(&mut bad, 1, 3);
        let err = LeafPage::parse(Bytes::from(bad), true).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
    }

    #[test]
    fn spanning_record_reassembles() {
        let big_val = vec![0xabu8; 10_000];
        let mut full = Vec::new();
        encode_entry(&mut full, b"bigkey", &v_put(5, &big_val));
        // Split: page payload holds the header + first chunk; rest overflows.
        let page_cap = 4000usize;
        let mut payload = vec![0u8; page_cap];
        payload[DATA_PAGE_HEADER..].copy_from_slice(&full[..page_cap - DATA_PAGE_HEADER]);
        write_data_page_header(&mut payload, 1, 2);
        let payload = Bytes::from(payload);
        let overflow = &full[page_cap - DATA_PAGE_HEADER..];
        let leaf = LeafPage::parse(payload.clone(), false).unwrap();
        assert!(leaf.is_spanning());
        assert_eq!(leaf.spanning_key().unwrap().as_ref(), b"bigkey");
        let entries = parse_data_page(&payload, overflow, false).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key.as_ref(), b"bigkey");
        match &entries[0].version.entry {
            Entry::Put(v) => assert_eq!(v.as_ref(), &big_val[..]),
            other => panic!("expected Put, got {other:?}"),
        }
    }

    #[test]
    fn bad_kind_is_rejected() {
        let mut buf = Vec::new();
        codec::put_bytes(&mut buf, b"k");
        codec::put_u8(&mut buf, 9);
        codec::put_varint(&mut buf, 1);
        let shared = Bytes::from(buf);
        let mut r = Reader::new(&shared);
        assert!(decode_entry(&shared, &mut r).is_err());
    }
}
