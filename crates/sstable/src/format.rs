//! On-disk encoding of entries, data pages, index pages and footers.
//!
//! All multi-byte integers are little-endian; variable-length quantities
//! use LEB128 (see `blsm_storage::codec`).
//!
//! Entry encoding:
//! `varint key_len | key | kind(1) | varint seqno | [varint val_len | val]`
//! where `kind` is 0=Put, 1=Delta, 2=Tombstone (value present for 0 and 1).
//!
//! Data page payload:
//! `count(2) | overflow_pages(2) | entries...`
//! When the *last* entry's value does not fit, its remaining bytes continue
//! in `overflow_pages` raw overflow pages immediately following the leaf.

use bytes::Bytes;

use blsm_memtable::{Entry, Versioned};
use blsm_storage::codec::{self, Reader};
use blsm_storage::{Result, StorageError};

/// Borrowed view of a decoded entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryRef {
    /// The key.
    pub key: Bytes,
    /// The versioned record.
    pub version: Versioned,
}

/// Encodes one entry.
pub fn encode_entry(out: &mut Vec<u8>, key: &[u8], v: &Versioned) {
    codec::put_bytes(out, key);
    match &v.entry {
        Entry::Put(val) => {
            codec::put_u8(out, 0);
            codec::put_varint(out, v.seqno);
            codec::put_bytes(out, val);
        }
        Entry::Delta(val) => {
            codec::put_u8(out, 1);
            codec::put_varint(out, v.seqno);
            codec::put_bytes(out, val);
        }
        Entry::Tombstone => {
            codec::put_u8(out, 2);
            codec::put_varint(out, v.seqno);
        }
    }
}

/// Size in bytes [`encode_entry`] would produce.
pub fn encoded_len(key: &[u8], v: &Versioned) -> usize {
    let mut n = varint_len(key.len() as u64) + key.len() + 1 + varint_len(v.seqno);
    match &v.entry {
        Entry::Put(val) | Entry::Delta(val) => {
            n += varint_len(val.len() as u64) + val.len();
        }
        Entry::Tombstone => {}
    }
    n
}

fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Decodes one entry.
pub fn decode_entry(r: &mut Reader<'_>) -> Result<EntryRef> {
    let key = Bytes::copy_from_slice(r.bytes()?);
    let kind = r.u8()?;
    let seqno = r.varint()?;
    let entry = match kind {
        0 => Entry::Put(Bytes::copy_from_slice(r.bytes()?)),
        1 => Entry::Delta(Bytes::copy_from_slice(r.bytes()?)),
        2 => Entry::Tombstone,
        other => {
            return Err(StorageError::InvalidFormat(format!(
                "bad entry kind {other}"
            )))
        }
    };
    Ok(EntryRef {
        key,
        version: Versioned { seqno, entry },
    })
}

/// Header bytes at the start of every data page payload.
pub const DATA_PAGE_HEADER: usize = 4;

/// Writes a data page payload header.
pub fn write_data_page_header(payload: &mut [u8], count: u16, overflow_pages: u16) {
    payload[0..2].copy_from_slice(&count.to_le_bytes());
    payload[2..4].copy_from_slice(&overflow_pages.to_le_bytes());
}

/// Reads a little-endian `u16` from the first 2 bytes of `b`.
///
/// # Panics
/// Panics if `b` is shorter than 2 bytes.
pub(crate) fn le_u16(b: &[u8]) -> u16 {
    let mut a = [0u8; 2];
    a.copy_from_slice(&b[..2]);
    u16::from_le_bytes(a)
}

/// Reads `(count, overflow_pages)` from a data page payload.
pub fn read_data_page_header(payload: &[u8]) -> (u16, u16) {
    let count = le_u16(&payload[0..2]);
    let overflow = le_u16(&payload[2..4]);
    (count, overflow)
}

/// Parses the entries of a data page. `overflow` supplies the concatenated
/// payloads of the page's overflow pages (empty when the header says there
/// are none); the final entry's value continues there.
pub fn parse_data_page(payload: &[u8], overflow: &[u8]) -> Result<Vec<EntryRef>> {
    let (count, n_overflow) = read_data_page_header(payload);
    let mut entries = Vec::with_capacity(count as usize);
    if n_overflow == 0 {
        let mut r = Reader::new(&payload[DATA_PAGE_HEADER..]);
        for _ in 0..count {
            entries.push(decode_entry(&mut r)?);
        }
        return Ok(entries);
    }
    // Spanning record: the page holds exactly one entry whose value is
    // split between this page and the overflow pages.
    if count != 1 {
        return Err(StorageError::InvalidFormat(format!(
            "overflow data page must hold exactly 1 entry, found {count}"
        )));
    }
    let mut r = Reader::new(&payload[DATA_PAGE_HEADER..]);
    let key = Bytes::copy_from_slice(r.bytes()?);
    let kind = r.u8()?;
    let seqno = r.varint()?;
    if kind == 2 {
        return Err(StorageError::InvalidFormat(
            "tombstone cannot span pages".into(),
        ));
    }
    let val_len = r.varint()? as usize;
    let in_page = r.remaining();
    let from_page = &payload[payload.len() - in_page..];
    let needed_from_overflow = val_len.saturating_sub(in_page.min(val_len));
    if overflow.len() < needed_from_overflow {
        return Err(StorageError::InvalidFormat(format!(
            "spanning record needs {needed_from_overflow} overflow bytes, have {}",
            overflow.len()
        )));
    }
    let mut val = Vec::with_capacity(val_len);
    val.extend_from_slice(&from_page[..in_page.min(val_len)]);
    val.extend_from_slice(&overflow[..val_len - val.len()]);
    let entry = if kind == 0 {
        Entry::Put(Bytes::from(val))
    } else {
        Entry::Delta(Bytes::from(val))
    };
    entries.push(EntryRef {
        key,
        version: Versioned { seqno, entry },
    });
    Ok(entries)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    fn v_put(seq: u64, val: &[u8]) -> Versioned {
        Versioned::put(seq, Bytes::copy_from_slice(val))
    }

    #[test]
    fn entry_roundtrip_all_kinds() {
        let cases = [
            ("k1", Versioned::put(7, Bytes::from_static(b"value"))),
            ("k2", Versioned::delta(8, Bytes::from_static(b"+1"))),
            ("k3", Versioned::tombstone(9)),
            ("", Versioned::put(0, Bytes::from_static(b""))),
        ];
        let mut buf = Vec::new();
        for (k, v) in &cases {
            let before = buf.len();
            encode_entry(&mut buf, k.as_bytes(), v);
            assert_eq!(buf.len() - before, encoded_len(k.as_bytes(), v));
        }
        let mut r = Reader::new(&buf);
        for (k, v) in &cases {
            let e = decode_entry(&mut r).unwrap();
            assert_eq!(e.key.as_ref(), k.as_bytes());
            assert_eq!(&e.version, v);
        }
    }

    #[test]
    fn data_page_roundtrip() {
        let mut payload = vec![0u8; 4096];
        let mut body = Vec::new();
        encode_entry(&mut body, b"alpha", &v_put(1, b"one"));
        encode_entry(&mut body, b"beta", &v_put(2, b"two"));
        payload[DATA_PAGE_HEADER..DATA_PAGE_HEADER + body.len()].copy_from_slice(&body);
        write_data_page_header(&mut payload, 2, 0);
        // Non-overflow parse must tolerate trailing zero padding... it reads
        // exactly `count` entries, so padding is ignored.
        let entries = parse_data_page(&payload, &[]).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].key.as_ref(), b"alpha");
        assert_eq!(entries[1].key.as_ref(), b"beta");
    }

    #[test]
    fn spanning_record_reassembles() {
        let big_val = vec![0xabu8; 10_000];
        let mut full = Vec::new();
        encode_entry(&mut full, b"bigkey", &v_put(5, &big_val));
        // Split: page payload holds the header + first chunk; rest overflows.
        let page_cap = 4000usize;
        let mut payload = vec![0u8; page_cap];
        payload[DATA_PAGE_HEADER..].copy_from_slice(&full[..page_cap - DATA_PAGE_HEADER]);
        write_data_page_header(&mut payload, 1, 2);
        let overflow = &full[page_cap - DATA_PAGE_HEADER..];
        let entries = parse_data_page(&payload, overflow).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key.as_ref(), b"bigkey");
        match &entries[0].version.entry {
            Entry::Put(v) => assert_eq!(v.as_ref(), &big_val[..]),
            other => panic!("expected Put, got {other:?}"),
        }
    }

    #[test]
    fn bad_kind_is_rejected() {
        let mut buf = Vec::new();
        codec::put_bytes(&mut buf, b"k");
        codec::put_u8(&mut buf, 9);
        codec::put_varint(&mut buf, 1);
        let mut r = Reader::new(&buf);
        assert!(decode_entry(&mut r).is_err());
    }
}
