//! Ordered iteration over components and k-way merging.
//!
//! Two read modes mirror the two consumers in the paper:
//!
//! * [`ReadMode::Pooled`] — application scans: each leaf is fetched through
//!   the buffer pool (a cold scan costs one seek per component and then
//!   sequential reads, §3.3).
//! * [`ReadMode::Buffered`] — merge inputs: leaves are prefetched directly
//!   from the device in large chunks, amortizing the seek between the
//!   merge's read and write streams (the paper's merges are pure
//!   sequential-bandwidth costs, §2.1/§2.3.1).

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;

use blsm_memtable::{merge_versions, MergeOperator};
use blsm_storage::page::{verify_page_image, PageType, PAGE_HEADER_LEN, PAGE_SIZE};
use blsm_storage::{Result, StorageError};

use crate::format::{shared_payload, EntryRef, LeafPage};
use crate::table::Sstable;

/// How an iterator fetches pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Through the buffer pool, one page at a time (application reads).
    Pooled,
    /// Direct device reads with the given readahead in pages (merges).
    Buffered(usize),
}

/// Ordered iterator over one component. Owns a shared handle to the
/// table, so merge jobs can hold it across engine calls.
pub struct SstIterator {
    table: Arc<Sstable>,
    /// Position in the leaf index of the next leaf to load.
    next_leaf_pos: usize,
    pending: VecDeque<EntryRef>,
    skip_below: Option<Vec<u8>>,
    mode: ReadMode,
    /// Prefetch buffer: raw page images starting at `buf_start`, held as a
    /// shared buffer so decoded entries can alias it zero-copy.
    buf: Bytes,
    buf_start: u64,
}

impl std::fmt::Debug for SstIterator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SstIterator")
            .field("next_leaf_pos", &self.next_leaf_pos)
            .finish_non_exhaustive()
    }
}

impl SstIterator {
    pub(crate) fn new(
        table: Arc<Sstable>,
        start_leaf_pos: usize,
        skip_below: Option<Vec<u8>>,
        mode: ReadMode,
    ) -> SstIterator {
        SstIterator {
            table,
            next_leaf_pos: start_leaf_pos,
            pending: VecDeque::new(),
            skip_below,
            mode,
            buf: Bytes::new(),
            buf_start: 0,
        }
    }

    /// Reads the page at region-relative `idx`, honouring the read mode.
    /// Returns the page's payload as a zero-copy shared buffer plus its
    /// type: pooled pages alias the cached `Arc<Page>`, buffered pages
    /// alias the prefetch chunk (checksum-verified in place).
    fn fetch_page(&mut self, idx: u64) -> Result<(Bytes, PageType)> {
        match self.mode {
            ReadMode::Pooled => {
                let page = self.table.pool().read(self.table.region().page(idx))?;
                let ty = page.page_type()?;
                Ok((shared_payload(&page), ty))
            }
            ReadMode::Buffered(readahead) => {
                let have = self.buf.len() as u64 / PAGE_SIZE as u64;
                if idx < self.buf_start || idx >= self.buf_start + have {
                    // Prefetch a chunk, clamped to the data area.
                    let n_data = self.table.meta().n_data_pages;
                    let n = (readahead as u64)
                        .max(1)
                        .min(n_data.saturating_sub(idx))
                        .max(1);
                    let mut chunk = vec![0u8; (n as usize) * PAGE_SIZE];
                    let off = self.table.region().page(idx).offset();
                    self.table.pool().device().read_at(off, &mut chunk)?;
                    self.buf = Bytes::from(chunk);
                    self.buf_start = idx;
                }
                let off = ((idx - self.buf_start) as usize) * PAGE_SIZE;
                let pid = self.table.region().page(idx);
                let ty = verify_page_image(&self.buf[off..off + PAGE_SIZE], pid)?;
                let payload = self.buf.slice(off + PAGE_HEADER_LEN..off + PAGE_SIZE);
                Ok((payload, ty))
            }
        }
    }

    /// Loads and parses the next leaf into `pending`. Returns false at EOF.
    fn load_next_leaf(&mut self) -> Result<bool> {
        let index = self.table.leaf_index();
        if self.next_leaf_pos >= index.len() {
            return Ok(false);
        }
        let leaf_idx = u64::from(index[self.next_leaf_pos].1);
        self.next_leaf_pos += 1;
        let (payload, ty) = self.fetch_page(leaf_idx)?;
        let leaf = LeafPage::parse(payload, ty == PageType::DataV2)?;
        if !leaf.is_spanning() {
            self.pending.extend(leaf.entries()?);
            return Ok(true);
        }
        let mut overflow = Vec::new();
        for i in 0..u64::from(leaf.overflow_pages()) {
            let (opayload, _) = self.fetch_page(leaf_idx + 1 + i)?;
            overflow.extend_from_slice(&opayload);
        }
        self.pending.push_back(leaf.spanning_entry(&overflow)?);
        Ok(true)
    }
}

impl Iterator for SstIterator {
    type Item = Result<EntryRef>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(e) = self.pending.pop_front() {
                let skip = self
                    .skip_below
                    .as_ref()
                    .is_some_and(|from| e.key.as_ref() < from.as_slice());
                if skip {
                    continue; // drain pending before touching the next leaf
                }
                return Some(Ok(e));
            }
            match self.load_next_leaf() {
                Ok(true) => {} // another leaf queued; retry pending
                Ok(false) => return None,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// A boxed key-ordered entry stream. `Send` so merge state (and thus the
/// whole tree) can move across threads for the background merge driver.
pub type EntryStream<'a> = Box<dyn Iterator<Item = Result<EntryRef>> + Send + 'a>;

/// K-way merge over key-ordered entry streams.
///
/// Streams must be supplied **newest first**; when several streams hold the
/// same key, their versions are resolved with [`merge_versions`] — which
/// orders by seqno, using stream position only to break ties, so a
/// seqno-ticket race that left an older version in a fresher component
/// still resolves to the newest write. A single
/// stream may also carry *several consecutive versions of one key* (newest
/// first, all newer than any same-key entry in later streams) — the `C0`
/// snapshot of a scan does this mid-merge-pass, when a fresh `Delta` in
/// the deferred table shadows a base that only lives in the drained
/// (retained) copies. Every tied version is collected before folding.
pub struct MergeIter<'a> {
    streams: Vec<std::iter::Peekable<EntryStream<'a>>>,
    op: Arc<dyn MergeOperator>,
    bottom: bool,
    errored: bool,
}

impl std::fmt::Debug for MergeIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeIter")
            .field("streams", &self.streams.len())
            .field("bottom", &self.bottom)
            .field("errored", &self.errored)
            .finish_non_exhaustive()
    }
}

impl<'a> MergeIter<'a> {
    /// Creates a merge over `streams` (newest first).
    pub fn new(
        streams: Vec<EntryStream<'a>>,
        op: Arc<dyn MergeOperator>,
        bottom: bool,
    ) -> MergeIter<'a> {
        MergeIter {
            streams: streams.into_iter().map(Iterator::peekable).collect(),
            op,
            bottom,
            errored: false,
        }
    }
}

impl Iterator for MergeIter<'_> {
    type Item = Result<EntryRef>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.errored {
            return None;
        }
        loop {
            // Find the smallest key across stream heads.
            let mut min_key: Option<Bytes> = None;
            for s in &mut self.streams {
                match s.peek() {
                    Some(Ok(e)) if min_key.as_ref().is_none_or(|m| e.key < *m) => {
                        min_key = Some(e.key.clone());
                    }
                    Some(Ok(_)) => {}
                    Some(Err(_)) => {
                        self.errored = true;
                        // Surface the error by consuming it; peek() just
                        // returned Err, so next() must yield the same entry.
                        let err = match s.next() {
                            Some(Err(err)) => err,
                            _ => StorageError::corruption(
                                blsm_storage::ComponentId::Sstable,
                                None,
                                "error entry vanished between peek and next",
                            ),
                        };
                        return Some(Err(err));
                    }
                    None => {}
                }
            }
            let key = min_key?;
            // Collect all versions of that key, newest stream first —
            // draining *every* consecutive same-key entry a stream holds,
            // not just its head (multi-version streams, see type docs).
            let mut versions = Vec::new();
            for s in &mut self.streams {
                while matches!(s.peek(), Some(Ok(e)) if e.key == key) {
                    if let Some(Ok(e)) = s.next() {
                        versions.push(e.version);
                    }
                }
            }
            // `None` means dropped (bottom-level tombstone): keep looping.
            if let Some(version) = merge_versions(self.op.as_ref(), &versions, self.bottom) {
                return Some(Ok(EntryRef { key, version }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::builder::SstableBuilder;
    use blsm_memtable::{merge_versions, AddOperator, AppendOperator, Entry, Versioned};
    use blsm_storage::{BufferPool, MemDevice, PageId, Region};

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDevice::new()), 4096))
    }

    fn build_table(
        pool: &Arc<BufferPool>,
        start_page: u64,
        entries: &[(&str, Versioned)],
    ) -> Arc<Sstable> {
        let region = Region {
            start: PageId(start_page),
            pages: 1024,
        };
        let mut b = SstableBuilder::new(pool.clone(), region, entries.len() as u64);
        for (k, v) in entries {
            b.add(&Bytes::copy_from_slice(k.as_bytes()), v).unwrap();
        }
        Arc::new(b.finish().unwrap())
    }

    fn put(seq: u64, val: &str) -> Versioned {
        Versioned::put(seq, Bytes::copy_from_slice(val.as_bytes()))
    }

    #[test]
    fn full_scan_in_order() {
        let pool = pool();
        let entries: Vec<(String, Versioned)> = (0..3000u32)
            .map(|i| (format!("k{i:06}"), put(1, "v")))
            .collect();
        let refs: Vec<(&str, Versioned)> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        let t = build_table(&pool, 0, &refs);
        for mode in [ReadMode::Pooled, ReadMode::Buffered(16)] {
            let keys: Vec<_> = t.iter(mode).map(|r| r.unwrap().key).collect();
            assert_eq!(keys.len(), 3000, "{mode:?}");
            assert!(keys.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn iter_from_starts_at_bound() {
        let pool = pool();
        let entries: Vec<(String, Versioned)> = (0..100u32)
            .map(|i| (format!("k{i:03}"), put(1, "v")))
            .collect();
        let refs: Vec<(&str, Versioned)> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        let t = build_table(&pool, 0, &refs);
        let keys: Vec<_> = t
            .iter_from(b"k050", ReadMode::Pooled)
            .map(|r| r.unwrap().key)
            .collect();
        assert_eq!(keys.len(), 50);
        assert_eq!(keys[0].as_ref(), b"k050");
        // A bound between keys starts at the next key.
        let keys: Vec<_> = t
            .iter_from(b"k0505", ReadMode::Pooled)
            .map(|r| r.unwrap().key)
            .collect();
        assert_eq!(keys[0].as_ref(), b"k051");
    }

    #[test]
    fn buffered_scan_uses_few_device_reads() {
        use blsm_storage::device::Device;
        let dev = Arc::new(MemDevice::new());
        let pool = Arc::new(BufferPool::new(dev.clone(), 4096));
        let entries: Vec<(String, Versioned)> = (0..5000u32)
            .map(|i| (format!("k{i:06}"), put(1, &"x".repeat(100))))
            .collect();
        let refs: Vec<(&str, Versioned)> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        let t = build_table(&pool, 0, &refs);
        pool.drop_clean();
        let before = dev.stats();
        let n = t.iter(ReadMode::Buffered(64)).count();
        assert_eq!(n, 5000);
        let d = dev.stats().delta_since(&before);
        let reads = d.random_reads + d.sequential_reads;
        assert!(reads < 10, "buffered scan did {reads} device reads");
    }

    #[test]
    fn merge_versions_newest_base_wins() {
        let op = AppendOperator;
        let v = merge_versions(&op, &[put(5, "new"), put(3, "old")], false).unwrap();
        assert_eq!(v.entry, Entry::Put(Bytes::from_static(b"new")));
        assert_eq!(v.seqno, 5);
    }

    #[test]
    fn merge_versions_folds_deltas_onto_base() {
        let op = AppendOperator;
        let v = merge_versions(
            &op,
            &[
                Versioned::delta(5, Bytes::from_static(b"c")),
                Versioned::delta(4, Bytes::from_static(b"b")),
                put(3, "a"),
            ],
            false,
        )
        .unwrap();
        assert_eq!(v.entry, Entry::Put(Bytes::from_static(b"abc")));
    }

    #[test]
    fn merge_versions_tombstone_handling() {
        let op = AppendOperator;
        // Tombstone at non-bottom level is preserved.
        let v = merge_versions(&op, &[Versioned::tombstone(5), put(3, "x")], false).unwrap();
        assert_eq!(v.entry, Entry::Tombstone);
        // At the bottom it is dropped.
        assert!(merge_versions(&op, &[Versioned::tombstone(5), put(3, "x")], true).is_none());
        // Deltas newer than a tombstone rebuild from nothing.
        let v = merge_versions(
            &op,
            &[
                Versioned::delta(6, Bytes::from_static(b"d")),
                Versioned::tombstone(5),
            ],
            false,
        )
        .unwrap();
        assert_eq!(v.entry, Entry::Put(Bytes::from_static(b"d")));
    }

    #[test]
    fn merge_versions_orphan_deltas() {
        let op = AddOperator;
        let d = |seq, n: i64| Versioned::delta(seq, Bytes::copy_from_slice(&n.to_le_bytes()));
        // Non-bottom: stays a (combined) delta.
        let v = merge_versions(&op, &[d(5, 3), d(4, 4)], false).unwrap();
        match &v.entry {
            Entry::Delta(b) => assert_eq!(i64::from_le_bytes(b[..8].try_into().unwrap()), 7),
            other => panic!("expected delta, got {other:?}"),
        }
        // Bottom: materialized as a base record.
        let v = merge_versions(&op, &[d(5, 3), d(4, 4)], true).unwrap();
        match &v.entry {
            Entry::Put(b) => assert_eq!(i64::from_le_bytes(b[..8].try_into().unwrap()), 7),
            other => panic!("expected put, got {other:?}"),
        }
    }

    #[test]
    fn merge_iter_two_tables() {
        let pool = pool();
        let old = build_table(
            &pool,
            0,
            &[
                ("a", put(1, "a-old")),
                ("b", put(2, "b-old")),
                ("d", put(3, "d-old")),
            ],
        );
        let new = build_table(
            &pool,
            2000,
            &[("b", put(10, "b-new")), ("c", put(11, "c-new"))],
        );
        let streams: Vec<EntryStream<'static>> = vec![
            Box::new(new.iter(ReadMode::Pooled)),
            Box::new(old.iter(ReadMode::Pooled)),
        ];
        let merged: Vec<_> = MergeIter::new(streams, Arc::new(AppendOperator), true)
            .map(|r| r.unwrap())
            .collect();
        let got: Vec<(String, String)> = merged
            .iter()
            .map(|e| {
                let val = match &e.version.entry {
                    Entry::Put(v) => String::from_utf8_lossy(v).to_string(),
                    other => panic!("{other:?}"),
                };
                (String::from_utf8_lossy(&e.key).to_string(), val)
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".into(), "a-old".into()),
                ("b".into(), "b-new".into()),
                ("c".into(), "c-new".into()),
                ("d".into(), "d-old".into()),
            ]
        );
    }

    #[test]
    fn merge_iter_folds_multi_version_stream() {
        // A stream carrying two consecutive versions of one key (newest
        // first) — the shape a C0 scan snapshot produces mid-merge-pass —
        // must have both folded into one output entry, not emitted twice.
        let pool = pool();
        let disk = build_table(&pool, 0, &[("a", put(1, "old")), ("c", put(1, "c"))]);
        let mem: Vec<std::result::Result<EntryRef, blsm_storage::StorageError>> = vec![
            Ok(EntryRef {
                key: Bytes::from_static(b"a"),
                version: Versioned::delta(9, Bytes::from_static(b"+d")),
            }),
            Ok(EntryRef {
                key: Bytes::from_static(b"a"),
                version: put(8, "base"),
            }),
        ];
        let streams: Vec<EntryStream<'static>> = vec![
            Box::new(mem.into_iter()),
            Box::new(disk.iter(ReadMode::Pooled)),
        ];
        let merged: Vec<_> = MergeIter::new(streams, Arc::new(AppendOperator), true)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(merged.len(), 2, "no duplicate keys in the output");
        assert_eq!(merged[0].key.as_ref(), b"a");
        assert_eq!(
            merged[0].version.entry,
            Entry::Put(Bytes::from_static(b"base+d")),
            "delta folded over the same-stream base, shadowing disk"
        );
        assert_eq!(merged[1].key.as_ref(), b"c");
    }

    #[test]
    fn merge_iter_drops_bottom_tombstones() {
        let pool = pool();
        let old = build_table(&pool, 0, &[("a", put(1, "v")), ("b", put(1, "v"))]);
        let new = build_table(&pool, 2000, &[("a", Versioned::tombstone(9))]);
        let streams: Vec<EntryStream<'static>> = vec![
            Box::new(new.iter(ReadMode::Pooled)),
            Box::new(old.iter(ReadMode::Pooled)),
        ];
        let keys: Vec<_> = MergeIter::new(streams, Arc::new(AppendOperator), true)
            .map(|r| r.unwrap().key)
            .collect();
        assert_eq!(keys, vec![Bytes::from_static(b"b")]);
    }
}
