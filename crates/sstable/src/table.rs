//! Finished, immutable on-disk components.

use std::sync::Arc;

use bytes::Bytes;

use blsm_bloom::BloomFilter;
use blsm_memtable::Versioned;
use blsm_storage::codec::{self, Reader};
use blsm_storage::page::{Page, PageType};
use blsm_storage::{BufferPool, ComponentId, Region, Result, StorageError, PAGE_SIZE};

use crate::format::{self, shared_payload, EntryRef, LeafPage};
use crate::iter::{ReadMode, SstIterator};

/// Component metadata persisted in the footer page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SstableMeta {
    /// Number of data + overflow pages (region-relative pages `0..n`).
    pub n_data_pages: u64,
    /// Region-relative page where the serialized index begins.
    pub index_start: u64,
    /// Number of index pages.
    pub n_index_pages: u64,
    /// Region-relative page where the Bloom filter image begins.
    pub bloom_start: u64,
    /// Byte length of the Bloom filter image.
    pub bloom_len: u64,
    /// Entries stored (one per key).
    pub entry_count: u64,
    /// User bytes (keys + payloads).
    pub data_bytes: u64,
    /// Tombstones among the entries.
    pub tombstones: u64,
    /// Smallest sequence number stored.
    pub min_seqno: u64,
    /// Largest sequence number stored.
    pub max_seqno: u64,
    /// Smallest key stored.
    pub min_key: Bytes,
    /// Largest key stored.
    pub max_key: Bytes,
}

/// Original footer format: fields only, protected solely by the page CRC.
const FOOTER_MAGIC_V1: u32 = 0x5353_4C42; // "BLSS"
/// Current footer format: the v1 fields followed by a crc32c over them, so
/// the footer carries its own checksum independent of the page framing.
const FOOTER_MAGIC: u32 = 0x3253_4C42; // "BLS2"

impl SstableMeta {
    /// Serializes the footer body (current format, with trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(100 + self.min_key.len() + self.max_key.len());
        codec::put_u32(&mut out, FOOTER_MAGIC);
        codec::put_u64(&mut out, self.n_data_pages);
        codec::put_u64(&mut out, self.index_start);
        codec::put_u64(&mut out, self.n_index_pages);
        codec::put_u64(&mut out, self.bloom_start);
        codec::put_u64(&mut out, self.bloom_len);
        codec::put_u64(&mut out, self.entry_count);
        codec::put_u64(&mut out, self.data_bytes);
        codec::put_u64(&mut out, self.tombstones);
        codec::put_u64(&mut out, self.min_seqno);
        codec::put_u64(&mut out, self.max_seqno);
        codec::put_bytes(&mut out, &self.min_key);
        codec::put_bytes(&mut out, &self.max_key);
        let crc = codec::crc32c(&out);
        codec::put_u32(&mut out, crc);
        out
    }

    /// Deserializes a footer body. Accepts both the current checksummed
    /// format and the original v1 format (components written before the
    /// footer carried its own CRC stay readable).
    pub fn decode(bytes: &[u8]) -> Result<SstableMeta> {
        let mut r = Reader::new(bytes);
        let magic = r.u32()?;
        if magic != FOOTER_MAGIC && magic != FOOTER_MAGIC_V1 {
            return Err(StorageError::InvalidFormat(format!(
                "bad sstable footer magic {magic:#x}"
            )));
        }
        let meta = SstableMeta {
            n_data_pages: r.u64()?,
            index_start: r.u64()?,
            n_index_pages: r.u64()?,
            bloom_start: r.u64()?,
            bloom_len: r.u64()?,
            entry_count: r.u64()?,
            data_bytes: r.u64()?,
            tombstones: r.u64()?,
            min_seqno: r.u64()?,
            max_seqno: r.u64()?,
            min_key: Bytes::copy_from_slice(r.bytes()?),
            max_key: Bytes::copy_from_slice(r.bytes()?),
        };
        if magic == FOOTER_MAGIC {
            let body_len = r.position();
            let stored = r.u32()?;
            let actual = codec::crc32c(&bytes[..body_len]);
            if stored != actual {
                return Err(StorageError::corruption(
                    ComponentId::Sstable,
                    None,
                    format!("footer checksum mismatch: stored {stored:#x}, computed {actual:#x}"),
                ));
            }
        }
        Ok(meta)
    }
}

/// Outcome of a [`Sstable::scrub`] pass over one component.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Pages read back from the device and checksum-verified.
    pub pages_checked: u64,
    /// Logical entries walked during the structural pass.
    pub entries_checked: u64,
    /// Description of every problem found (empty ⇒ component is clean).
    pub errors: Vec<String>,
}

impl ScrubReport {
    /// True when the scrub found nothing wrong.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Folds another component's report into this one.
    pub fn merge(&mut self, other: ScrubReport) {
        self.pages_checked += other.pages_checked;
        self.entries_checked += other.entries_checked;
        self.errors.extend(other.errors);
    }
}

/// An immutable on-disk tree component.
///
/// The leaf index and Bloom filter live in RAM (§2.2, §3.1), so an uncached
/// point lookup costs exactly one leaf-page read — read amplification 1.
pub struct Sstable {
    pool: Arc<BufferPool>,
    region: Region,
    meta: SstableMeta,
    /// `(first_key, region-relative page)` per leaf, in key order.
    index: Vec<(Bytes, u32)>,
    /// RAM held by `index`, computed once at assembly — stats calls must
    /// not re-walk the whole index.
    index_ram: usize,
    bloom: Arc<BloomFilter>,
}

impl std::fmt::Debug for Sstable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sstable")
            .field("region", &self.region)
            .field("meta", &self.meta)
            .finish_non_exhaustive()
    }
}

impl Sstable {
    pub(crate) fn assemble(
        pool: Arc<BufferPool>,
        region: Region,
        meta: SstableMeta,
        index: Vec<(Bytes, u32)>,
        bloom: Arc<BloomFilter>,
    ) -> Sstable {
        let index_ram = index
            .iter()
            .map(|(k, _)| k.len() + std::mem::size_of::<(Bytes, u32)>())
            .sum();
        Sstable {
            pool,
            region,
            meta,
            index,
            index_ram,
            bloom,
        }
    }

    /// Opens a component from a region whose last page is its footer —
    /// the recovery path. Reads footer, index and Bloom image (the paper
    /// does not persist filters and rebuilds at recovery, §4.4.3; we
    /// persist them with the component, a simplification documented in
    /// DESIGN.md, so recovery is a few page reads).
    pub fn open(pool: Arc<BufferPool>, region: Region) -> Result<Sstable> {
        assert!(region.pages >= 1, "region too small for a footer");
        let footer = pool.read(region.page(region.pages - 1))?;
        if footer.page_type()? != PageType::Footer {
            return Err(StorageError::InvalidFormat(
                "last region page is not a footer".into(),
            ));
        }
        let meta = SstableMeta::decode(footer.payload())?;

        // Index pages.
        let mut index = Vec::with_capacity(meta.entry_count as usize / 3);
        for i in 0..meta.n_index_pages {
            let page = pool.read(region.page(meta.index_start + i))?;
            if page.page_type()? != PageType::Index {
                return Err(StorageError::InvalidFormat("expected index page".into()));
            }
            let payload = page.payload();
            let count = format::le_u16(&payload[..2]);
            let mut r = Reader::new(&payload[2..]);
            for _ in 0..count {
                let key = Bytes::copy_from_slice(r.bytes()?);
                let page_idx = r.u32()?;
                index.push((key, page_idx));
            }
        }

        // Bloom pages.
        let mut bloom_bytes = Vec::with_capacity(meta.bloom_len as usize);
        let mut remaining = meta.bloom_len as usize;
        let mut i = 0;
        while remaining > 0 {
            let page = pool.read(region.page(meta.bloom_start + i))?;
            if page.page_type()? != PageType::Bloom {
                return Err(StorageError::InvalidFormat("expected bloom page".into()));
            }
            let n = remaining.min(page.payload().len());
            bloom_bytes.extend_from_slice(&page.payload()[..n]);
            remaining -= n;
            i += 1;
        }
        let bloom = BloomFilter::from_bytes(&bloom_bytes).ok_or_else(|| {
            StorageError::corruption(
                ComponentId::Bloom,
                Some(region.page(meta.bloom_start).offset()),
                "bloom filter image fails to decode",
            )
        })?;

        Ok(Sstable::assemble(
            pool,
            region,
            meta,
            index,
            Arc::new(bloom),
        ))
    }

    /// Component metadata.
    pub fn meta(&self) -> &SstableMeta {
        &self.meta
    }

    /// The (exact-sized) region this component occupies.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Shared handle to the component's Bloom filter.
    pub fn bloom(&self) -> &Arc<BloomFilter> {
        &self.bloom
    }

    /// The buffer pool this component reads through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// User bytes stored (keys + payloads).
    pub fn data_bytes(&self) -> u64 {
        self.meta.data_bytes
    }

    /// Entries stored.
    pub fn entry_count(&self) -> u64 {
        self.meta.entry_count
    }

    /// Total device bytes occupied.
    pub fn disk_bytes(&self) -> u64 {
        self.region.len_bytes()
    }

    /// RAM consumed by the in-memory leaf index — the denominator of the
    /// paper's *read fanout* metric (§2.1). Cached at assembly; O(1).
    pub fn index_ram_bytes(&self) -> usize {
        self.index_ram
    }

    /// Bloom filter probe. False ⇒ key definitely absent (0 seeks spent).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.bloom.contains(key)
    }

    /// Leaf-index position for `key`: the leaf that could contain it.
    fn leaf_for(&self, key: &[u8]) -> Option<u64> {
        let pos = self.index.partition_point(|(k, _)| k.as_ref() <= key);
        if pos == 0 {
            None
        } else {
            Some(u64::from(self.index[pos - 1].1))
        }
    }

    /// Reads and parses the leaf (data) page at region-relative `idx` into
    /// a lazily-decodable [`LeafPage`] (v1 or v2 dispatched on page type).
    pub(crate) fn read_leaf_page(&self, idx: u64) -> Result<LeafPage> {
        let page = self.pool.read(self.region.page(idx))?;
        let v2 = page.page_type()? == PageType::DataV2;
        LeafPage::parse(shared_payload(&page), v2)
    }

    /// Concatenated overflow-page payloads for the spanning leaf at `idx`.
    fn read_overflow(&self, idx: u64, n_overflow: u16) -> Result<Vec<u8>> {
        let mut overflow = Vec::new();
        for i in 0..u64::from(n_overflow) {
            let opage = self.pool.read(self.region.page(idx + 1 + i))?;
            overflow.extend_from_slice(opage.payload());
        }
        Ok(overflow)
    }

    /// Reads and fully decodes the leaf at region-relative `idx`,
    /// reassembling any overflow pages. Scans and integrity checks use
    /// this; point lookups go through [`read_leaf_page`] and decode lazily.
    ///
    /// [`read_leaf_page`]: Self::read_leaf_page
    pub(crate) fn read_leaf(&self, idx: u64) -> Result<Vec<EntryRef>> {
        let leaf = self.read_leaf_page(idx)?;
        if !leaf.is_spanning() {
            return leaf.entries();
        }
        let overflow = self.read_overflow(idx, leaf.overflow_pages())?;
        Ok(vec![leaf.spanning_entry(&overflow)?])
    }

    /// Point lookup without consulting the Bloom filter (at most one leaf
    /// read — plus overflow pages for huge records). Decoding is lazy and
    /// zero-copy: a v2 leaf is binary-searched via its offset table, a v1
    /// leaf is scanned with early exit, and non-matching entries are never
    /// materialized. A non-matching spanning leaf is rejected on its key
    /// alone, before any overflow page is touched.
    pub fn get(&self, key: &[u8]) -> Result<Option<Versioned>> {
        let Some(idx) = self.leaf_for(key) else {
            return Ok(None);
        };
        let leaf = self.read_leaf_page(idx)?;
        if leaf.is_spanning() {
            if leaf.spanning_key()? != key {
                return Ok(None);
            }
            let overflow = self.read_overflow(idx, leaf.overflow_pages())?;
            return Ok(Some(leaf.spanning_entry(&overflow)?.version));
        }
        Ok(leaf.find(key)?.map(|e| e.version))
    }

    /// Point lookup that consults the Bloom filter first: the paper's read
    /// path (§3.1). Returns `(value, probed_disk)`.
    pub fn get_filtered(&self, key: &[u8]) -> Result<(Option<Versioned>, bool)> {
        if !self.may_contain(key) {
            return Ok((None, false));
        }
        Ok((self.get(key)?, true))
    }

    /// Full-table iterator.
    pub fn iter(self: &Arc<Self>, mode: ReadMode) -> SstIterator {
        SstIterator::new(self.clone(), 0, None, mode)
    }

    /// Iterator from the first key ≥ `from`.
    pub fn iter_from(self: &Arc<Self>, from: &[u8], mode: ReadMode) -> SstIterator {
        let start_leaf_pos = {
            let pos = self.index.partition_point(|(k, _)| k.as_ref() <= from);
            pos.saturating_sub(1)
        };
        SstIterator::new(self.clone(), start_leaf_pos, Some(from.to_vec()), mode)
    }

    /// The leaf index (first key + region-relative page per leaf).
    pub(crate) fn leaf_index(&self) -> &[(Bytes, u32)] {
        &self.index
    }

    /// Verifies the component's structural invariants: the in-RAM leaf
    /// fences are strictly ascending and agree with the footer's key range,
    /// and — for up to `max_leaves` leaves sampled starting at `offset`
    /// (wrapping, so successive calls rotate coverage) — leaf entries are
    /// strictly ascending, sit inside their fence interval, and probe
    /// positive in the Bloom filter. A stored key the filter denies would
    /// be a lost read: §4.4.3 tolerates false positives, never false
    /// negatives.
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::Corruption`] naming the first violated
    /// invariant, or propagates device errors from the sampled leaf reads.
    pub fn verify_integrity(&self, max_leaves: usize, offset: usize) -> Result<()> {
        fn broken(what: String) -> StorageError {
            StorageError::corruption(
                ComponentId::Sstable,
                None,
                format!("sstable invariant violated: {what}"),
            )
        }
        if self.meta.entry_count == 0 {
            return Ok(());
        }
        if self.meta.min_key > self.meta.max_key {
            return Err(broken(format!(
                "footer key range inverted: {:?} > {:?}",
                self.meta.min_key, self.meta.max_key
            )));
        }
        for (i, w) in self.index.windows(2).enumerate() {
            if w[0].0 >= w[1].0 {
                return Err(broken(format!(
                    "leaf fences out of order at {i}: {:?} >= {:?}",
                    w[0].0, w[1].0
                )));
            }
        }
        match self.index.first() {
            Some((first, _)) if *first == self.meta.min_key => {}
            Some((first, _)) => {
                return Err(broken(format!(
                    "first fence {first:?} != footer min_key {:?}",
                    self.meta.min_key
                )))
            }
            None => return Err(broken("entries recorded but no leaf fences".into())),
        }

        let n = self.index.len();
        let sample = max_leaves.min(n).max(1);
        for s in 0..sample {
            let li = (offset + s * n / sample) % n;
            let (fence, page_idx) = &self.index[li];
            let upper = self.index.get(li + 1).map(|(k, _)| k);
            let page_idx = u64::from(*page_idx);
            // v2 leaves: the offset table must agree with the real entry
            // boundaries (a wrong slot would silently misroute binary
            // search on the hot path).
            let leaf = self.read_leaf_page(page_idx)?;
            leaf.verify_offset_table()?;
            let entries = if leaf.is_spanning() {
                let overflow = self.read_overflow(page_idx, leaf.overflow_pages())?;
                vec![leaf.spanning_entry(&overflow)?]
            } else {
                leaf.entries()?
            };
            let mut prev: Option<&Bytes> = None;
            for e in &entries {
                if prev.is_some_and(|p| *p >= e.key) {
                    return Err(broken(format!(
                        "leaf {li} keys out of order: {prev:?} >= {:?}",
                        e.key
                    )));
                }
                prev = Some(&e.key);
                if e.key < *fence || upper.is_some_and(|u| e.key >= *u) {
                    return Err(broken(format!(
                        "leaf {li} key {:?} outside fence interval [{fence:?}, {upper:?})",
                        e.key
                    )));
                }
                if e.key > self.meta.max_key {
                    return Err(broken(format!(
                        "leaf {li} key {:?} above footer max_key {:?}",
                        e.key, self.meta.max_key
                    )));
                }
                if !self.bloom.contains(&e.key) {
                    return Err(broken(format!(
                        "bloom filter denies stored key {:?} (false negative)",
                        e.key
                    )));
                }
            }
            match entries.first() {
                Some(e) if e.key == *fence => {}
                _ => {
                    return Err(broken(format!(
                        "leaf {li} first entry does not match its fence {fence:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Full verification sweep: every page of the region is read *directly
    /// from the device* (the buffer-pool cache would mask on-media
    /// corruption) and its checksum verified, the on-device footer is
    /// re-decoded (which re-checks the footer's own CRC) and compared to
    /// the in-memory metadata, and a complete [`verify_integrity`] pass
    /// walks every leaf checking ordering, fences, Bloom agreement, and
    /// the entry count against the footer. Problems are collected into the
    /// report rather than failing fast, so one bad page cannot hide
    /// another.
    ///
    /// [`verify_integrity`]: Self::verify_integrity
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::default();
        let device = self.pool.device();
        let mut buf = vec![0u8; PAGE_SIZE];
        for pid in self.region.iter_pages() {
            match device.read_at(pid.offset(), &mut buf) {
                Ok(()) => match Page::from_bytes(&buf, pid) {
                    Ok(_) => report.pages_checked += 1,
                    Err(e) => report.errors.push(e.to_string()),
                },
                Err(e) => report.errors.push(format!("page {pid} unreadable: {e}")),
            }
        }
        let footer_pid = self.region.page(self.region.pages - 1);
        if device.read_at(footer_pid.offset(), &mut buf).is_ok() {
            match Page::from_bytes(&buf, footer_pid).and_then(|p| SstableMeta::decode(p.payload()))
            {
                Ok(meta) if meta == self.meta => {}
                Ok(_) => report
                    .errors
                    .push("on-device footer disagrees with in-memory metadata".into()),
                Err(e) => report.errors.push(format!("footer undecodable: {e}")),
            }
        }
        if let Err(e) = self.verify_integrity(self.index.len().max(1), 0) {
            report.errors.push(e.to_string());
        }
        let mut entries = 0u64;
        for (_, page_idx) in &self.index {
            // Leaf reads go through the pool; physical damage was already
            // reported by the device pass above.
            if let Ok(es) = self.read_leaf(u64::from(*page_idx)) {
                entries += es.len() as u64;
            }
        }
        report.entries_checked = entries;
        if entries != self.meta.entry_count && report.is_clean() {
            report.errors.push(format!(
                "leaves hold {entries} entries but footer records {}",
                self.meta.entry_count
            ));
        }
        report
    }

    /// Drops this component's pages from the buffer pool cache (used after
    /// a merge retires the component and its region is freed).
    pub fn evict_from_pool(&self) {
        for pid in self.region.iter_pages() {
            self.pool.discard(pid);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::builder::SstableBuilder;
    use blsm_storage::{MemDevice, PageId};

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDevice::new()), 2048))
    }

    fn build(pool: &Arc<BufferPool>, n: u32, start_page: u64) -> Sstable {
        let region = Region {
            start: PageId(start_page),
            pages: 1024,
        };
        let mut b = SstableBuilder::new(pool.clone(), region, u64::from(n));
        for i in 0..n {
            b.add(
                &Bytes::from(format!("key{i:08}")),
                &Versioned::put(u64::from(i) + 1, Bytes::from(vec![i as u8; 64])),
            )
            .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn meta_roundtrip() {
        let m = SstableMeta {
            n_data_pages: 10,
            index_start: 10,
            n_index_pages: 1,
            bloom_start: 11,
            bloom_len: 123,
            entry_count: 42,
            data_bytes: 9000,
            tombstones: 3,
            min_seqno: 5,
            max_seqno: 99,
            min_key: Bytes::from_static(b"aaa"),
            max_key: Bytes::from_static(b"zzz"),
        };
        let enc = m.encode();
        assert_eq!(SstableMeta::decode(&enc).unwrap(), m);
        assert!(SstableMeta::decode(&enc[..10]).is_err());
    }

    #[test]
    fn decode_accepts_v1_footer() {
        let m = SstableMeta {
            n_data_pages: 10,
            index_start: 10,
            n_index_pages: 1,
            bloom_start: 11,
            bloom_len: 123,
            entry_count: 42,
            data_bytes: 9000,
            tombstones: 3,
            min_seqno: 5,
            max_seqno: 99,
            min_key: Bytes::from_static(b"aaa"),
            max_key: Bytes::from_static(b"zzz"),
        };
        // A v1 footer is the v2 encoding with the old magic and no
        // trailing checksum.
        let mut v1 = m.encode();
        v1.truncate(v1.len() - 4);
        v1[..4].copy_from_slice(&FOOTER_MAGIC_V1.to_le_bytes());
        assert_eq!(SstableMeta::decode(&v1).unwrap(), m);
    }

    #[test]
    fn footer_checksum_catches_field_corruption() {
        let m = SstableMeta {
            n_data_pages: 10,
            index_start: 10,
            n_index_pages: 1,
            bloom_start: 11,
            bloom_len: 123,
            entry_count: 42,
            data_bytes: 9000,
            tombstones: 3,
            min_seqno: 5,
            max_seqno: 99,
            min_key: Bytes::from_static(b"aaa"),
            max_key: Bytes::from_static(b"zzz"),
        };
        let mut enc = m.encode();
        enc[12] ^= 0x01; // flip a bit inside index_start
        let err = SstableMeta::decode(&enc).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
    }

    #[test]
    fn scrub_clean_table_reports_no_errors() {
        let pool = pool();
        let t = build(&pool, 500, 0);
        let report = t.scrub();
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        assert_eq!(report.pages_checked, t.region().pages);
        assert_eq!(report.entries_checked, 500);
    }

    #[test]
    fn scrub_detects_single_bit_flip_in_any_page() {
        use blsm_storage::device::Device;
        let dev = Arc::new(MemDevice::new());
        let pool = Arc::new(BufferPool::new(dev.clone(), 2048));
        let t = build(&pool, 500, 0);
        // Flip one bit in every page of the region in turn; the scrub must
        // flag each one, including index, bloom and footer pages.
        for pid in t.region().iter_pages() {
            let offset = pid.offset() + 1000;
            let mut byte = [0u8; 1];
            dev.read_at(offset, &mut byte).unwrap();
            dev.write_at(offset, &[byte[0] ^ 0x40]).unwrap();
            let report = t.scrub();
            assert!(!report.is_clean(), "bit flip in {pid} went undetected");
            dev.write_at(offset, &byte).unwrap();
        }
        assert!(t.scrub().is_clean());
    }

    #[test]
    fn corrupt_offset_table_surfaces_as_typed_corruption() {
        use blsm_storage::device::Device;
        use blsm_storage::page::{Page, PageType};
        let dev = Arc::new(MemDevice::new());
        let pool = Arc::new(BufferPool::new(dev.clone(), 2048));
        let t = build(&pool, 500, 0);

        // Craft a DataV2 page whose offset table points past the entry
        // bytes — a logically corrupt but correctly checksummed image, so
        // the page layer accepts it and the leaf parser must catch it.
        let mut page = Page::new(PageType::DataV2);
        let real = pool.read(t.region().page(0)).unwrap();
        page.payload_mut().copy_from_slice(real.payload());
        let payload_len = page.payload().len();
        page.payload_mut()[payload_len - 2..].copy_from_slice(&0xfff0u16.to_le_bytes());
        dev.write_at(t.region().page(0).offset(), &page.to_bytes())
            .unwrap();
        pool.drop_clean();

        let err = t.get(b"key00000000").unwrap_err();
        assert!(err.is_corruption(), "got {err}");
        let report = t.scrub();
        assert!(
            report.errors.iter().any(|e| e.contains("offset table")),
            "scrub missed the bad table: {:?}",
            report.errors
        );
    }

    #[test]
    fn open_recovers_everything() {
        let pool = pool();
        let t = build(&pool, 2000, 0);
        let region = t.region();
        let meta = t.meta().clone();
        drop(t);
        pool.drop_clean();
        let t2 = Sstable::open(pool, region).unwrap();
        assert_eq!(t2.meta(), &meta);
        for i in (0..2000u32).step_by(113) {
            let key = format!("key{i:08}");
            assert!(t2.may_contain(key.as_bytes()));
            let v = t2.get(key.as_bytes()).unwrap().expect("present");
            assert_eq!(v.seqno, u64::from(i) + 1);
        }
        assert!(t2.get(b"absent").unwrap().is_none());
    }

    #[test]
    fn point_lookup_is_one_leaf_read() {
        use blsm_storage::device::Device;
        let dev = Arc::new(MemDevice::new());
        let pool = Arc::new(BufferPool::new(dev.clone(), 2048));
        let t = build(&pool, 2000, 0);
        pool.drop_clean(); // cold cache
        let before = dev.stats();
        let v = t.get(b"key00001000").unwrap();
        assert!(v.is_some());
        let d = dev.stats().delta_since(&before);
        assert_eq!(
            d.random_reads + d.sequential_reads,
            1,
            "exactly one page read"
        );
    }

    #[test]
    fn bloom_avoids_io_for_absent_keys() {
        use blsm_storage::device::Device;
        let dev = Arc::new(MemDevice::new());
        let pool = Arc::new(BufferPool::new(dev.clone(), 2048));
        let t = build(&pool, 2000, 0);
        pool.drop_clean();
        let before = dev.stats();
        let mut probed = 0u32;
        for i in 0..1000u32 {
            // In-range absent keys, so a Bloom false positive really costs
            // a leaf read.
            let (v, hit_disk) = t.get_filtered(format!("key{i:08}x").as_bytes()).unwrap();
            assert!(v.is_none());
            if hit_disk {
                probed += 1;
            }
        }
        let d = dev.stats().delta_since(&before);
        // ~1% false positive rate ⇒ ~10 probes out of 1000.
        assert!(
            probed <= 40,
            "bloom let {probed} of 1000 absent probes through"
        );
        // Each false positive costs at most one leaf read (repeat probes of
        // the same leaf hit the pool cache).
        assert!(d.bytes_read <= u64::from(probed) * 4096);
        assert!(d.bytes_read > 0);
    }

    #[test]
    fn get_min_max_key_boundaries() {
        let pool = pool();
        let t = build(&pool, 100, 0);
        assert_eq!(t.meta().min_key, Bytes::from(format!("key{:08}", 0)));
        assert_eq!(t.meta().max_key, Bytes::from(format!("key{:08}", 99)));
        // A key below min: no leaf could hold it, zero reads.
        assert!(t.get(b"a").unwrap().is_none());
    }

    #[test]
    fn empty_table_roundtrip() {
        let pool = pool();
        let region = Region {
            start: PageId(0),
            pages: 16,
        };
        let b = SstableBuilder::new(pool.clone(), region, 1);
        let t = b.finish().unwrap();
        assert_eq!(t.entry_count(), 0);
        assert!(t.get(b"x").unwrap().is_none());
        let region = t.region();
        drop(t);
        pool.drop_clean();
        let t2 = Sstable::open(pool, region).unwrap();
        assert_eq!(t2.entry_count(), 0);
    }

    #[test]
    fn index_ram_matches_read_fanout_model() {
        // Appendix A: read fanout ≈ page_size / key_size. With 11-byte keys
        // + 24 bytes of pointer overhead and ~50 entries per 4K page, the
        // index should be a small fraction of the data size.
        let pool = pool();
        let t = build(&pool, 5000, 0);
        let index_ram = t.index_ram_bytes();
        let data = t.data_bytes() as usize;
        assert!(index_ram * 10 < data, "index {index_ram}B vs data {data}B");
    }
}
