//! Append-only on-disk tree components ("sstables") for the bLSM
//! reproduction.
//!
//! The paper's `C1`, `C1'` and `C2` are "append-only B-Trees" stored "in
//! key order on disk" (§2.3.1). Each component here occupies a contiguous
//! region (courtesy of the Stasis-style region allocator, §4.4.2) laid out
//! as:
//!
//! ```text
//! [ data pages | overflow pages ... | index pages | bloom pages | footer ]
//! ```
//!
//! * Data pages are the paper's "simple append-only data page format that
//!   efficiently stores records that span multiple pages" (Appendix A.2):
//!   a record larger than a page spills into overflow pages.
//! * The index — one `(first_key, page)` pair per leaf — is kept in RAM
//!   (§2.2 "assuming that keys fit in memory") and serialized for
//!   recovery, so a point lookup costs exactly one device read: the
//!   paper's read amplification of 1.
//! * The Bloom filter image is persisted with the component (§4.4.3).
//!
//! [`SstableBuilder`] supports *incremental* construction with a readable
//! view of already-flushed pages: this is what lets reads proceed against
//! a half-merged component while snowshoveling drains `C0` (§4.2).

mod builder;
mod format;
mod iter;
mod table;

pub use blsm_memtable::merge_versions;
pub use builder::{PageVersion, SstableBuilder};
pub use format::{decode_entry, encode_entry, parse_data_page, shared_payload, EntryRef, LeafPage};
pub use iter::{EntryStream, MergeIter, ReadMode, SstIterator};
pub use table::{ScrubReport, Sstable, SstableMeta};
