//! Incremental sstable construction with a readable view.
//!
//! Merges write their output through this builder. Two properties matter
//! for fidelity to the paper:
//!
//! 1. **Sequential writes.** Completed pages accumulate in a write buffer
//!    that is flushed to the device in multi-page chunks, so the cost of
//!    interleaving merge reads and writes on one spindle is one seek per
//!    chunk, not per page — this is what makes LSM write amplification a
//!    *bandwidth* figure (§2.1).
//! 2. **Readable while under construction.** Snowshoveling removes entries
//!    from `C0` as the merge consumes them (§4.2), so lookups and scans
//!    must be able to find those entries in the partially-built output
//!    component. [`SstableBuilder::view`] exposes point lookups and ordered
//!    iteration over everything added so far, backed by the incremental
//!    index, the incremental Bloom filter, the flushed pages, and the
//!    in-memory tail.

use std::sync::Arc;

use bytes::Bytes;

use blsm_bloom::{BloomFilter, BloomParams};
use blsm_memtable::{Entry, Versioned};
use blsm_storage::page::{Page, PageType, PAGE_PAYLOAD_LEN};
use blsm_storage::{BufferPool, Region, Result, StorageError, PAGE_SIZE};

use crate::format::{
    encode_entry, encoded_len, shared_payload, write_data_page_header, write_entry_offsets,
    EntryRef, LeafPage, DATA_PAGE_HEADER, ENTRY_OFFSET_SLOT,
};
use crate::table::{Sstable, SstableMeta};

/// Entry bytes that fit in one leaf page.
pub const LEAF_CAPACITY: usize = PAGE_PAYLOAD_LEN - DATA_PAGE_HEADER;

/// Default write-buffer size in pages (256 KiB): the chunk granularity at
/// which merge output reaches the device.
pub const DEFAULT_FLUSH_PAGES: usize = 64;

/// Which data-page layout the builder writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageVersion {
    /// Original layout: entries only, lookups scan the leaf.
    V1,
    /// Current layout: trailing entry-offset table enabling in-page binary
    /// search. Each entry reserves one two-byte table slot, so a page
    /// holds at most `count * 2` bytes less than a v1 page — under 0.2%
    /// for paper-sized values and ~3% for the densest tiny-value pages,
    /// where the O(log n) lookup more than pays for it. Spanning records
    /// still use the v1 layout either way.
    #[default]
    V2,
}

/// Streaming builder for one on-disk component.
pub struct SstableBuilder {
    pool: Arc<BufferPool>,
    region: Region,
    /// Open leaf: encoded entries waiting to fill a page.
    leaf: Vec<u8>,
    leaf_count: u16,
    leaf_first_key: Option<Bytes>,
    /// Payload offset of each open-leaf entry, for the v2 offset table.
    leaf_offsets: Vec<u16>,
    page_version: PageVersion,
    /// Decoded copies of the open leaf's entries, for the readable view.
    leaf_entries: Vec<EntryRef>,
    /// Sealed page images not yet flushed to the device.
    chunk: Vec<u8>,
    /// Region-relative index of the first page in `chunk`.
    chunk_start: u64,
    /// Next region-relative page index to assign.
    next_page: u64,
    flush_pages: usize,
    index: Vec<(Bytes, u32)>,
    bloom: BloomFilter,
    entry_count: u64,
    data_bytes: u64,
    tombstones: u64,
    min_seqno: u64,
    max_seqno: u64,
    min_key: Option<Bytes>,
    last_key: Option<Bytes>,
}

impl std::fmt::Debug for SstableBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SstableBuilder")
            .field("region", &self.region)
            .finish_non_exhaustive()
    }
}

impl SstableBuilder {
    /// Starts building into `region` (which must be generously sized; the
    /// unused tail can be freed after [`finish`](Self::finish)).
    /// `expected_keys` sizes the Bloom filter for the paper's <1% false
    /// positive rate.
    pub fn new(pool: Arc<BufferPool>, region: Region, expected_keys: u64) -> SstableBuilder {
        SstableBuilder {
            pool,
            region,
            leaf: Vec::with_capacity(LEAF_CAPACITY),
            leaf_count: 0,
            leaf_first_key: None,
            leaf_offsets: Vec::new(),
            page_version: PageVersion::default(),
            leaf_entries: Vec::new(),
            chunk: Vec::new(),
            chunk_start: 0,
            next_page: 0,
            flush_pages: DEFAULT_FLUSH_PAGES,
            index: Vec::new(),
            bloom: BloomFilter::new(BloomParams::for_fp_rate(expected_keys, 0.01)),
            entry_count: 0,
            data_bytes: 0,
            tombstones: 0,
            min_seqno: u64::MAX,
            max_seqno: 0,
            min_key: None,
            last_key: None,
        }
    }

    /// Overrides the write-buffer chunk size (in pages).
    pub fn with_flush_pages(mut self, pages: usize) -> SstableBuilder {
        self.flush_pages = pages.max(1);
        self
    }

    /// Overrides the data-page layout. The default is
    /// [`PageVersion::V2`]; tests use [`PageVersion::V1`] to exercise the
    /// read-compat path for components written before the offset table.
    pub fn with_page_version(mut self, version: PageVersion) -> SstableBuilder {
        self.page_version = version;
        self
    }

    /// Number of entries added so far.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// User bytes (keys + payloads) added so far.
    pub fn data_bytes(&self) -> u64 {
        self.data_bytes
    }

    /// Pages assigned so far (flushed or pending).
    pub fn pages_written(&self) -> u64 {
        self.next_page
    }

    /// The largest key added so far — the merge's output cursor.
    pub fn last_key(&self) -> Option<&Bytes> {
        self.last_key.as_ref()
    }

    /// Adds the next entry. Keys must arrive in strictly increasing order
    /// (a component holds one version per key).
    pub fn add(&mut self, key: &Bytes, v: &Versioned) -> Result<()> {
        if let Some(last) = &self.last_key {
            assert!(
                key > last,
                "sstable entries must be added in strictly increasing key order"
            );
        }
        let len = encoded_len(key, v);
        // v2 entries each reserve a two-byte offset-table slot, so the
        // sealed leaf can always carry its table.
        let reserve = if self.page_version == PageVersion::V2 {
            (self.leaf_offsets.len() + 1) * ENTRY_OFFSET_SLOT
        } else {
            0
        };
        if self.leaf.len() + len + reserve > LEAF_CAPACITY {
            self.seal_leaf()?;
        }
        if len > LEAF_CAPACITY {
            self.add_spanning(key, v)?;
        } else {
            if self.leaf_first_key.is_none() {
                self.leaf_first_key = Some(key.clone());
            }
            self.leaf_offsets
                .push((DATA_PAGE_HEADER + self.leaf.len()) as u16);
            encode_entry(&mut self.leaf, key, v);
            self.leaf_count += 1;
            self.leaf_entries.push(EntryRef {
                key: key.clone(),
                version: v.clone(),
            });
        }
        self.bloom.insert(key);
        self.entry_count += 1;
        self.data_bytes += (key.len() + v.entry.payload_len()) as u64;
        if matches!(v.entry, Entry::Tombstone) {
            self.tombstones += 1;
        }
        self.min_seqno = self.min_seqno.min(v.seqno);
        self.max_seqno = self.max_seqno.max(v.seqno);
        if self.min_key.is_none() {
            self.min_key = Some(key.clone());
        }
        self.last_key = Some(key.clone());
        Ok(())
    }

    /// Seals the open leaf into a data page.
    fn seal_leaf(&mut self) -> Result<()> {
        if self.leaf_count == 0 {
            return Ok(());
        }
        let Some(first_key) = self.leaf_first_key.take() else {
            return Err(StorageError::corruption(
                blsm_storage::ComponentId::Sstable,
                None,
                "open leaf has entries but no first key",
            ));
        };
        // `add` reserved a slot per entry, so the table fits — except for
        // a lone entry that fills the page so exactly that even one slot
        // cannot squeeze in, which seals in the v1 layout instead.
        let with_table = self.page_version == PageVersion::V2
            && self.leaf.len() + self.leaf_offsets.len() * ENTRY_OFFSET_SLOT <= LEAF_CAPACITY;
        let mut page = if with_table {
            Page::new(PageType::DataV2)
        } else {
            Page::new(PageType::Data)
        };
        write_data_page_header(page.payload_mut(), self.leaf_count, 0);
        page.payload_mut()[DATA_PAGE_HEADER..DATA_PAGE_HEADER + self.leaf.len()]
            .copy_from_slice(&self.leaf);
        if with_table {
            write_entry_offsets(page.payload_mut(), &self.leaf_offsets);
        }
        let idx = self.emit_page(page)?;
        self.index.push((first_key, idx as u32));
        self.leaf.clear();
        self.leaf_count = 0;
        self.leaf_entries.clear();
        self.leaf_offsets.clear();
        Ok(())
    }

    /// Emits a record too large for one page: a data page holding the entry
    /// header plus a value prefix filling the page exactly, followed by raw
    /// overflow pages.
    fn add_spanning(&mut self, key: &Bytes, v: &Versioned) -> Result<()> {
        debug_assert!(self.leaf_count == 0, "leaf sealed before spanning record");
        let val = match &v.entry {
            Entry::Put(val) | Entry::Delta(val) => val.clone(),
            Entry::Tombstone => unreachable!("tombstones never exceed a page"),
        };
        let mut head = Vec::new();
        encode_entry(&mut head, key, v);
        let header_len = head.len() - val.len();
        let in_page = LEAF_CAPACITY - header_len;
        let overflow_bytes = val.len() - in_page;
        let n_overflow = overflow_bytes.div_ceil(PAGE_PAYLOAD_LEN);
        assert!(n_overflow <= u16::MAX as usize, "record too large");

        let mut page = Page::new(PageType::Data);
        write_data_page_header(page.payload_mut(), 1, n_overflow as u16);
        page.payload_mut()[DATA_PAGE_HEADER..].copy_from_slice(&head[..LEAF_CAPACITY]);
        let idx = self.emit_page(page)?;
        self.index.push((key.clone(), idx as u32));

        let mut rest = &head[LEAF_CAPACITY..];
        for _ in 0..n_overflow {
            let mut page = Page::new(PageType::Overflow);
            let n = rest.len().min(PAGE_PAYLOAD_LEN);
            page.payload_mut()[..n].copy_from_slice(&rest[..n]);
            rest = &rest[n..];
            self.emit_page(page)?;
        }
        debug_assert!(rest.is_empty());
        Ok(())
    }

    /// Appends a sealed page to the write buffer, flushing when full.
    /// Returns the page's region-relative index.
    fn emit_page(&mut self, page: Page) -> Result<u64> {
        let idx = self.next_page;
        if idx >= self.region.pages {
            return Err(StorageError::OutOfSpace { requested_pages: 1 });
        }
        self.chunk.extend_from_slice(&page.to_bytes());
        self.next_page += 1;
        if self.chunk.len() >= self.flush_pages * PAGE_SIZE {
            self.flush_chunk()?;
        }
        Ok(idx)
    }

    /// Writes the buffered chunk to the device in one call — one seek,
    /// arbitrarily many pages of transfer.
    fn flush_chunk(&mut self) -> Result<()> {
        if self.chunk.is_empty() {
            return Ok(());
        }
        let offset = self.region.page(self.chunk_start).offset();
        self.pool.device().write_at(offset, &self.chunk)?;
        self.chunk_start = self.next_page;
        self.chunk.clear();
        Ok(())
    }

    /// Reads a region-relative page, preferring the in-memory write buffer.
    fn read_page(&self, idx: u64) -> Result<blsm_storage::page::SharedPage> {
        if idx >= self.chunk_start {
            let off = ((idx - self.chunk_start) as usize) * PAGE_SIZE;
            let bytes = &self.chunk[off..off + PAGE_SIZE];
            Ok(Arc::new(Page::from_bytes(bytes, self.region.page(idx))?))
        } else {
            self.pool.read(self.region.page(idx))
        }
    }

    /// Parses the data page at `idx` (including overflow reassembly).
    fn read_leaf(&self, idx: u64) -> Result<Vec<EntryRef>> {
        let page = self.read_page(idx)?;
        let v2 = page.page_type()? == PageType::DataV2;
        let leaf = LeafPage::parse(shared_payload(&page), v2)?;
        if !leaf.is_spanning() {
            return leaf.entries();
        }
        let mut overflow = Vec::new();
        for i in 0..u64::from(leaf.overflow_pages()) {
            let opage = self.read_page(idx + 1 + i)?;
            overflow.extend_from_slice(opage.payload());
        }
        Ok(vec![leaf.spanning_entry(&overflow)?])
    }

    /// A readable view of everything added so far.
    pub fn view(&self) -> BuilderView<'_> {
        BuilderView { builder: self }
    }

    /// Completes the component: seals the open leaf, writes index, Bloom
    /// filter and footer pages, and returns the finished table. The
    /// returned table's region is trimmed to the pages actually used; the
    /// caller should free the tail `[used, region.pages)` back to its
    /// allocator.
    pub fn finish(mut self) -> Result<Sstable> {
        self.seal_leaf()?;
        let n_data_pages = self.next_page;

        // Index pages.
        let index_start = self.next_page;
        let mut payload_buf: Vec<u8> = Vec::new();
        let mut count: u16 = 0;
        let mut serialized: Vec<(u16, Vec<u8>)> = Vec::new();
        for (key, page_idx) in &self.index {
            let mut entry = Vec::with_capacity(key.len() + 8);
            blsm_storage::codec::put_bytes(&mut entry, key);
            blsm_storage::codec::put_u32(&mut entry, *page_idx);
            if payload_buf.len() + entry.len() > PAGE_PAYLOAD_LEN - 2 {
                serialized.push((count, std::mem::take(&mut payload_buf)));
                count = 0;
            }
            payload_buf.extend_from_slice(&entry);
            count += 1;
        }
        if count > 0 || serialized.is_empty() {
            serialized.push((count, payload_buf));
        }
        for (count, body) in serialized {
            let mut page = Page::new(PageType::Index);
            page.payload_mut()[..2].copy_from_slice(&count.to_le_bytes());
            page.payload_mut()[2..2 + body.len()].copy_from_slice(&body);
            self.emit_page(page)?;
        }
        let n_index_pages = self.next_page - index_start;

        // Bloom pages.
        let bloom_start = self.next_page;
        let bloom_bytes = self.bloom.to_bytes();
        for chunk in bloom_bytes.chunks(PAGE_PAYLOAD_LEN) {
            let mut page = Page::new(PageType::Bloom);
            page.payload_mut()[..chunk.len()].copy_from_slice(chunk);
            self.emit_page(page)?;
        }

        let meta = SstableMeta {
            n_data_pages,
            index_start,
            n_index_pages,
            bloom_start,
            bloom_len: bloom_bytes.len() as u64,
            entry_count: self.entry_count,
            data_bytes: self.data_bytes,
            tombstones: self.tombstones,
            min_seqno: if self.entry_count == 0 {
                0
            } else {
                self.min_seqno
            },
            max_seqno: self.max_seqno,
            min_key: self.min_key.clone().unwrap_or_default(),
            max_key: self.last_key.clone().unwrap_or_default(),
        };

        // Footer.
        let mut page = Page::new(PageType::Footer);
        let body = meta.encode();
        page.payload_mut()[..body.len()].copy_from_slice(&body);
        self.emit_page(page)?;
        self.flush_chunk()?;

        let used = Region {
            start: self.region.start,
            pages: self.next_page,
        };
        Ok(Sstable::assemble(
            self.pool.clone(),
            used,
            meta,
            self.index,
            Arc::new(self.bloom),
        ))
    }
}

/// Read access to a partially built component.
pub struct BuilderView<'a> {
    builder: &'a SstableBuilder,
}

impl std::fmt::Debug for BuilderView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuilderView").finish_non_exhaustive()
    }
}

impl<'a> BuilderView<'a> {
    /// Bloom filter probe over everything added so far.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.builder.bloom.contains(key)
    }

    /// Point lookup over everything added so far.
    pub fn get(&self, key: &[u8]) -> Result<Option<Versioned>> {
        // The open (unsealed) leaf first: it holds the newest keys.
        if let Some(e) = self
            .builder
            .leaf_entries
            .iter()
            .find(|e| e.key.as_ref() == key)
        {
            return Ok(Some(e.version.clone()));
        }
        let idx = &self.builder.index;
        // Last leaf whose first key is <= key.
        let pos = idx.partition_point(|(k, _)| k.as_ref() <= key);
        if pos == 0 {
            return Ok(None);
        }
        let page_idx = u64::from(idx[pos - 1].1);
        let entries = self.builder.read_leaf(page_idx)?;
        Ok(entries
            .into_iter()
            .find(|e| e.key.as_ref() == key)
            .map(|e| e.version))
    }

    /// Ordered iteration over everything added so far, starting at the
    /// first key ≥ `from`. Consumes pages through the builder (buffered
    /// tail included).
    pub fn iter_from(&self, from: &[u8]) -> BuilderIter<'a> {
        let idx = &self.builder.index;
        let pos = idx.partition_point(|(k, _)| k.as_ref() <= from);
        let leaf_pos = pos.saturating_sub(1);
        BuilderIter {
            builder: self.builder,
            next_leaf: leaf_pos,
            pending: std::collections::VecDeque::new(),
            from: from.to_vec(),
            emitted_open_leaf: false,
        }
    }
}

/// Ordered iterator over a partially built component.
pub struct BuilderIter<'a> {
    builder: &'a SstableBuilder,
    /// Next position in the builder's leaf index to load.
    next_leaf: usize,
    pending: std::collections::VecDeque<EntryRef>,
    from: Vec<u8>,
    emitted_open_leaf: bool,
}

impl std::fmt::Debug for BuilderIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuilderIter")
            .field("next_leaf", &self.next_leaf)
            .finish_non_exhaustive()
    }
}

impl Iterator for BuilderIter<'_> {
    type Item = Result<EntryRef>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(e) = self.pending.pop_front() {
                if e.key.as_ref() < self.from.as_slice() {
                    continue;
                }
                return Some(Ok(e));
            }
            if self.next_leaf < self.builder.index.len() {
                let page_idx = u64::from(self.builder.index[self.next_leaf].1);
                self.next_leaf += 1;
                match self.builder.read_leaf(page_idx) {
                    Ok(entries) => self.pending.extend(entries),
                    Err(e) => return Some(Err(e)),
                }
                continue;
            }
            if !self.emitted_open_leaf {
                self.emitted_open_leaf = true;
                self.pending
                    .extend(self.builder.leaf_entries.iter().cloned());
                continue;
            }
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use blsm_storage::device::Device;
    use blsm_storage::{DiskModel, MemDevice, SimDevice};

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDevice::new()), 1024))
    }

    fn key(i: u32) -> Bytes {
        Bytes::from(format!("key{i:08}"))
    }

    #[test]
    fn build_and_read_back() {
        let pool = pool();
        let region = Region {
            start: blsm_storage::PageId(0),
            pages: 512,
        };
        let mut b = SstableBuilder::new(pool.clone(), region, 1000);
        for i in 0..1000u32 {
            b.add(
                &key(i),
                &Versioned::put(u64::from(i), Bytes::from(vec![i as u8; 100])),
            )
            .unwrap();
        }
        let table = b.finish().unwrap();
        assert_eq!(table.meta().entry_count, 1000);
        for i in (0..1000u32).step_by(37) {
            let v = table.get(&key(i)).unwrap().expect("present");
            assert_eq!(v.entry, Entry::Put(Bytes::from(vec![i as u8; 100])));
        }
        assert!(table.get(b"nope").unwrap().is_none());
    }

    #[test]
    fn view_reads_flushed_and_buffered_entries() {
        let pool = pool();
        let region = Region {
            start: blsm_storage::PageId(0),
            pages: 512,
        };
        // Small flush chunk so some pages are on device, some buffered.
        let mut b = SstableBuilder::new(pool, region, 500).with_flush_pages(2);
        for i in 0..500u32 {
            b.add(
                &key(i),
                &Versioned::put(u64::from(i), Bytes::from(vec![0u8; 50])),
            )
            .unwrap();
        }
        let view = b.view();
        for i in (0..500u32).step_by(13) {
            assert!(view.may_contain(&key(i)));
            let v = view.get(&key(i)).unwrap().expect("present in view");
            assert_eq!(v.seqno, u64::from(i));
        }
        assert!(view.get(&key(9999)).unwrap().is_none());
    }

    #[test]
    fn view_iter_is_ordered_and_complete() {
        let pool = pool();
        let region = Region {
            start: blsm_storage::PageId(0),
            pages: 512,
        };
        let mut b = SstableBuilder::new(pool, region, 300).with_flush_pages(2);
        for i in 0..300u32 {
            b.add(&key(i), &Versioned::put(1, Bytes::from_static(b"v")))
                .unwrap();
        }
        let got: Vec<_> = b
            .view()
            .iter_from(&key(100))
            .map(|r| r.unwrap().key)
            .collect();
        assert_eq!(got.len(), 200);
        assert_eq!(got[0], key(100));
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn spanning_records_roundtrip() {
        let pool = pool();
        let region = Region {
            start: blsm_storage::PageId(0),
            pages: 512,
        };
        let mut b = SstableBuilder::new(pool, region, 10);
        let big = Bytes::from(vec![7u8; 20_000]);
        b.add(&key(0), &Versioned::put(1, Bytes::from_static(b"small")))
            .unwrap();
        b.add(&key(1), &Versioned::put(2, big.clone())).unwrap();
        b.add(&key(2), &Versioned::put(3, Bytes::from_static(b"after")))
            .unwrap();
        let table = b.finish().unwrap();
        assert_eq!(table.get(&key(1)).unwrap().unwrap().entry, Entry::Put(big));
        assert_eq!(
            table.get(&key(2)).unwrap().unwrap().entry,
            Entry::Put(Bytes::from_static(b"after"))
        );
    }

    #[test]
    fn v2_reserves_slots_and_falls_back_when_brim_full() {
        // Every v2 entry reserves a two-byte offset slot, so sealed
        // leaves carry their binary-search table regardless of how
        // densely entries pack; for paper-sized values the reservation
        // never changes the page count versus a v1 build.
        let region = Region {
            start: blsm_storage::PageId(0),
            pages: 512,
        };
        let build = |value: usize, version: PageVersion| {
            let pool = pool();
            let mut b = SstableBuilder::new(pool.clone(), region, 200).with_page_version(version);
            for i in 0..200u32 {
                b.add(&key(i), &Versioned::put(1, Bytes::from(vec![0u8; value])))
                    .unwrap();
            }
            let t = b.finish().unwrap();
            let types: Vec<PageType> = (0..t.meta().n_data_pages)
                .map(|i| pool.read(region.page(i)).unwrap().page_type().unwrap())
                .collect();
            (t.meta().n_data_pages, types)
        };

        let (_, small_types) = build(50, PageVersion::V2);
        assert!(
            small_types.iter().all(|t| *t == PageType::DataV2),
            "dense small-value pages get the table: {small_types:?}"
        );

        // ~1006-byte entries: 4 per page with slack for 4 slots, so v2
        // matches the v1 page count entry-for-entry.
        let (big_v2_pages, big_types) = build(990, PageVersion::V2);
        let (big_v1_pages, _) = build(990, PageVersion::V1);
        assert_eq!(
            big_v2_pages, big_v1_pages,
            "slot reservation must not cost a page at paper value sizes"
        );
        assert!(
            big_types.iter().all(|t| *t == PageType::DataV2),
            "paper-sized pages get the table too: {big_types:?}"
        );

        // An entry that fills the page so exactly that even one slot
        // cannot fit seals alone in the v1 layout — and stays readable.
        let k = key(0);
        let probe = |vs: usize| encoded_len(&k, &Versioned::put(1, Bytes::from(vec![9u8; vs])));
        let mut vs = LEAF_CAPACITY - 32;
        while probe(vs) < LEAF_CAPACITY {
            vs += 1;
        }
        assert_eq!(
            probe(vs),
            LEAF_CAPACITY,
            "found an exactly page-filling entry"
        );
        let pool2 = pool();
        let mut b = SstableBuilder::new(pool2.clone(), region, 4);
        let brim = Bytes::from(vec![9u8; vs]);
        b.add(&key(0), &Versioned::put(1, brim.clone())).unwrap();
        b.add(&key(1), &Versioned::put(2, Bytes::from_static(b"after")))
            .unwrap();
        let t = b.finish().unwrap();
        assert_eq!(
            pool2.read(region.page(0)).unwrap().page_type().unwrap(),
            PageType::Data,
            "brim-full single-entry leaf falls back to v1"
        );
        assert_eq!(t.get(&key(0)).unwrap().unwrap().entry, Entry::Put(brim));
        assert_eq!(
            t.get(&key(1)).unwrap().unwrap().entry,
            Entry::Put(Bytes::from_static(b"after"))
        );

        // Mixed-density builds stay fully readable.
        let pool3 = pool();
        let mut b = SstableBuilder::new(pool3, region, 200);
        for i in 0..200u32 {
            b.add(&key(i), &Versioned::put(1, Bytes::from(vec![3u8; 990])))
                .unwrap();
        }
        let t = b.finish().unwrap();
        for i in (0..200u32).step_by(17) {
            assert_eq!(
                t.get(&key(i)).unwrap().unwrap().entry,
                Entry::Put(Bytes::from(vec![3u8; 990]))
            );
        }
    }

    #[test]
    fn out_of_order_add_panics() {
        let pool = pool();
        let region = Region {
            start: blsm_storage::PageId(0),
            pages: 64,
        };
        let mut b = SstableBuilder::new(pool, region, 10);
        b.add(&key(5), &Versioned::put(1, Bytes::new())).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.add(&key(4), &Versioned::put(2, Bytes::new()))
        }));
        assert!(r.is_err());
    }

    #[test]
    fn region_overflow_is_an_error() {
        let pool = pool();
        let region = Region {
            start: blsm_storage::PageId(0),
            pages: 2,
        };
        let mut b = SstableBuilder::new(pool, region, 10);
        let val = Bytes::from(vec![0u8; 3000]);
        let mut hit_error = false;
        for i in 0..10u32 {
            if let Err(StorageError::OutOfSpace { .. }) =
                b.add(&key(i), &Versioned::put(1, val.clone()))
            {
                hit_error = true;
                break;
            }
        }
        assert!(hit_error);
    }

    #[test]
    fn chunked_writes_are_sequential_on_device() {
        let dev = Arc::new(SimDevice::new(DiskModel::hdd()));
        let pool = Arc::new(BufferPool::new(dev.clone(), 1024));
        let region = Region {
            start: blsm_storage::PageId(0),
            pages: 2048,
        };
        let mut b = SstableBuilder::new(pool, region, 2000);
        for i in 0..2000u32 {
            b.add(&key(i), &Versioned::put(1, Bytes::from(vec![0u8; 900])))
                .unwrap();
        }
        let table = b.finish().unwrap();
        let stats = dev.stats();
        // ~2000 entries * ~912B = ~450 pages; at 64-page chunks that is a
        // handful of device writes, all but the first sequential.
        assert!(
            stats.random_writes <= 2,
            "random writes: {}",
            stats.random_writes
        );
        assert!(stats.sequential_writes >= 5);
        assert!(table.meta().n_data_pages >= 400);
    }
}
