//! Log-bucketed latency histogram (microseconds).
//!
//! Buckets are logarithmic with 16 sub-buckets per power of two, giving
//! ≤ ~6% relative error on percentile queries — plenty for the paper's
//! latency plots.

const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
const BUCKETS: usize = 64 * SUB;

/// Latency histogram over `u64` microsecond samples.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUB + sub
    }

    fn bucket_low(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let exp = (idx / SUB) as u32 + SUB_BITS - 1;
        let sub = (idx % SUB) as u64;
        (1u64 << exp) | (sub << (exp - SUB_BITS))
    }

    /// Records a sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Exact maximum sample.
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum sample.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate percentile (`q` in `[0, 1]`).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_low(idx).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// One-line human-readable summary (`n`, mean, p50/p95/p99, max in
    /// µs) — the report format shared by the in-process and network
    /// YCSB paths.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1}us p50={}us p95={}us p99={}us max={}us",
            self.total,
            self.mean(),
            self.percentile(0.5),
            self.percentile(0.95),
            self.percentile(0.99),
            self.max()
        )
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum = 0;
        self.max = 0;
        self.min = u64::MAX;
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram(n={}, mean={:.1}us, p50={}us, p99={}us, max={}us)",
            self.total,
            self.mean(),
            self.percentile(0.5),
            self.percentile(0.99),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.percentile(1.0), 15);
    }

    #[test]
    fn percentiles_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.07, "p50={p50}");
        let p99 = h.percentile(0.99) as f64;
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.07, "p99={p99}");
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(0.5) > u64::MAX / 4);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v + 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.percentile(0.9) >= 1000);
        assert_eq!(a.min(), 0);
    }

    #[test]
    fn summary_mentions_every_quantile() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.summary();
        for needle in ["n=100", "mean=", "p50=", "p95=", "p99=", "max=100us"] {
            assert!(s.contains(needle), "{s} missing {needle}");
        }
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn bucket_monotonicity() {
        let mut last = 0;
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 65_535, 1 << 30, 1 << 50] {
            let b = Histogram::bucket(v);
            assert!(b >= last, "bucket not monotone at {v}");
            last = b;
            assert!(Histogram::bucket_low(b) <= v);
        }
    }
}
