//! Request distributions: uniform and YCSB's scrambled Zipfian.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of record ids in `[0, n)`.
pub trait KeyChooser: Send {
    /// Draws the next record id.
    fn next_id(&mut self) -> u64;
    /// Grows the id space (after inserts).
    fn set_item_count(&mut self, n: u64);
}

/// Uniformly random record ids.
#[derive(Debug)]
pub struct Uniform {
    rng: StdRng,
    n: u64,
}

impl Uniform {
    /// Creates a uniform chooser over `[0, n)`.
    pub fn new(n: u64, seed: u64) -> Uniform {
        assert!(n > 0);
        Uniform {
            rng: StdRng::seed_from_u64(seed),
            n,
        }
    }
}

impl KeyChooser for Uniform {
    fn next_id(&mut self) -> u64 {
        self.rng.random_range(0..self.n)
    }

    fn set_item_count(&mut self, n: u64) {
        self.n = n.max(1);
    }
}

/// Zipfian ranks via Gray et al.'s rejection-free algorithm — the exact
/// construction YCSB uses, with YCSB's default θ = 0.99.
#[derive(Debug)]
pub struct Zipfian {
    rng: StdRng,
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    zeta2: f64,
    eta: f64,
}

impl Zipfian {
    /// YCSB's default skew.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Creates a Zipfian chooser over `[0, n)`.
    pub fn new(n: u64, theta: f64, seed: u64) -> Zipfian {
        assert!(n > 0 && theta > 0.0 && theta < 1.0);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            rng: StdRng::seed_from_u64(seed),
            n,
            theta,
            alpha,
            zetan,
            zeta2,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    fn recompute(&mut self) {
        self.zetan = Self::zeta(self.n, self.theta);
        self.eta =
            (1.0 - (2.0 / self.n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zetan);
    }
}

impl KeyChooser for Zipfian {
    /// Rank 0 is the most popular item.
    fn next_id(&mut self) -> u64 {
        let u: f64 = self.rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let id = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        id.min(self.n - 1)
    }

    fn set_item_count(&mut self, n: u64) {
        if n != self.n && n > 0 {
            self.n = n;
            self.recompute();
        }
    }
}

/// YCSB's scrambled Zipfian: Zipfian ranks hashed over the id space, so
/// the popular items are spread across the keyspace instead of clustered
/// at its start.
#[derive(Debug)]
pub struct ScrambledZipfian {
    inner: Zipfian,
    n: u64,
}

impl ScrambledZipfian {
    /// Creates a scrambled-Zipfian chooser over `[0, n)` with YCSB's
    /// default θ.
    pub fn new(n: u64, seed: u64) -> ScrambledZipfian {
        ScrambledZipfian {
            inner: Zipfian::new(n, Zipfian::DEFAULT_THETA, seed),
            n,
        }
    }

    fn fnv64(mut x: u64) -> u64 {
        // FNV-1a over the 8 bytes, as YCSB does.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for _ in 0..8 {
            h ^= x & 0xff;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
            x >>= 8;
        }
        h
    }
}

impl KeyChooser for ScrambledZipfian {
    fn next_id(&mut self) -> u64 {
        let rank = self.inner.next_id();
        Self::fnv64(rank) % self.n
    }

    fn set_item_count(&mut self, n: u64) {
        self.n = n.max(1);
        // YCSB keeps the underlying zipfian's zeta for the original n as an
        // approximation; we do the same (cheap, and the skew barely moves).
    }
}

/// YCSB's "latest" distribution: Zipfian skew toward the most recently
/// inserted records (used by workload D — "read latest").
#[derive(Debug)]
pub struct Latest {
    inner: Zipfian,
    n: u64,
}

impl Latest {
    /// Creates a latest-skewed chooser over `[0, n)`.
    pub fn new(n: u64, seed: u64) -> Latest {
        Latest {
            inner: Zipfian::new(n, Zipfian::DEFAULT_THETA, seed),
            n,
        }
    }
}

impl KeyChooser for Latest {
    fn next_id(&mut self) -> u64 {
        let rank = self.inner.next_id();
        // Rank 0 = newest record.
        self.n - 1 - rank.min(self.n - 1)
    }

    fn set_item_count(&mut self, n: u64) {
        if n > 0 {
            self.n = n;
            self.inner.set_item_count(n);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn uniform_covers_space_evenly() {
        let mut u = Uniform::new(100, 7);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[u.next_id() as usize] += 1;
        }
        let (min, max) = counts
            .iter()
            .fold((u32::MAX, 0), |(a, b), &c| (a.min(c), b.max(c)));
        assert!(min > 700 && max < 1300, "min={min} max={max}");
    }

    #[test]
    fn zipfian_is_skewed_with_rank_order() {
        let mut z = Zipfian::new(10_000, 0.99, 42);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let draws = 200_000;
        for _ in 0..draws {
            *counts.entry(z.next_id()).or_default() += 1;
        }
        let c0 = counts.get(&0).copied().unwrap_or(0) as f64 / draws as f64;
        let c1 = counts.get(&1).copied().unwrap_or(0) as f64 / draws as f64;
        // For θ=0.99, item 0 draws ~1/zeta(n) of requests; with n=10⁴,
        // zeta ≈ 10.75, so ~9%.
        assert!(c0 > 0.05 && c0 < 0.15, "p(0) = {c0}");
        assert!(c1 < c0, "rank 1 must be less popular than rank 0");
        // Hot set concentration: top-10 ranks take a large share.
        let top10: u64 = (0..10).map(|i| counts.get(&i).copied().unwrap_or(0)).sum();
        assert!(top10 as f64 / draws as f64 > 0.2);
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let mut z = ScrambledZipfian::new(10_000, 42);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(z.next_id()).or_default() += 1;
        }
        // The two hottest ids should not be adjacent (they are hashed).
        let mut by_count: Vec<(u64, u64)> = counts.into_iter().collect();
        by_count.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let hot0 = by_count[0].0;
        let hot1 = by_count[1].0;
        assert!(
            hot0.abs_diff(hot1) > 1,
            "hot keys clustered: {hot0}, {hot1}"
        );
        // Still skewed: hottest id well above uniform share.
        assert!(by_count[0].1 > 100_000 / 10_000 * 20);
    }

    #[test]
    fn ids_stay_in_range_after_growth() {
        let mut z = ScrambledZipfian::new(100, 1);
        z.set_item_count(200);
        for _ in 0..10_000 {
            assert!(z.next_id() < 200);
        }
        let mut u = Uniform::new(100, 1);
        u.set_item_count(50);
        for _ in 0..1_000 {
            assert!(u.next_id() < 50);
        }
    }

    #[test]
    fn latest_prefers_new_records() {
        let mut l = Latest::new(10_000, 3);
        let mut newest_half = 0u32;
        let draws = 20_000;
        for _ in 0..draws {
            if l.next_id() >= 5_000 {
                newest_half += 1;
            }
        }
        assert!(
            f64::from(newest_half) / f64::from(draws) > 0.9,
            "latest distribution not skewed to new records: {newest_half}/{draws}"
        );
        // Growth shifts the hot spot.
        l.set_item_count(20_000);
        for _ in 0..100 {
            assert!(l.next_id() < 20_000);
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = Zipfian::new(1000, 0.99, 5);
        let mut b = Zipfian::new(1000, 0.99, 5);
        for _ in 0..100 {
            assert_eq!(a.next_id(), b.next_id());
        }
    }
}
