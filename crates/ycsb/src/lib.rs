//! YCSB-style workload generation and measurement.
//!
//! §5.1: "We use YCSB, the Yahoo! Cloud Serving Benchmark tool, to
//! generate load. YCSB generates synthetic workloads with varying degrees
//! of concurrency and statistical distributions." This crate is our Rust
//! stand-in: the standard key format (`user` + zero-padded id), the
//! uniform and (scrambled) Zipfian request distributions with YCSB's
//! default θ = 0.99, configurable operation mixes (read / blind update /
//! read-modify-write / insert / scan / delta), log-bucketed latency
//! histograms, and a closed-loop runner that drives any [`KvEngine`]
//! against the *virtual clock* of the simulated devices, producing the
//! timeseries the paper's Figures 7 and 9 plot.

mod generator;
mod histogram;
mod runner;

pub use generator::{KeyChooser, Latest, ScrambledZipfian, Uniform, Zipfian};
pub use histogram::Histogram;
pub use runner::{KvEngine, LoadOrder, OpKind, OpMix, RunReport, Runner, TimePoint, Workload};

/// Formats a YCSB-style key: `user` + zero-padded decimal id.
pub fn format_key(id: u64) -> bytes::Bytes {
    bytes::Bytes::from(format!("user{id:012}"))
}

/// Deterministic value bytes for record `id` of the given size.
pub fn make_value(id: u64, size: usize) -> bytes::Bytes {
    let mut v = Vec::with_capacity(size);
    let seed = id.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes();
    while v.len() < size {
        v.extend_from_slice(&seed);
    }
    v.truncate(size);
    bytes::Bytes::from(v)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn key_format_matches_ycsb() {
        assert_eq!(format_key(42).as_ref(), b"user000000000042");
        assert_eq!(format_key(0).len(), 16);
    }

    #[test]
    fn values_are_deterministic_and_sized() {
        assert_eq!(make_value(7, 1000).len(), 1000);
        assert_eq!(make_value(7, 1000), make_value(7, 1000));
        assert_ne!(make_value(7, 1000), make_value(8, 1000));
    }
}
