//! Closed-loop workload runner over a virtual clock.
//!
//! §5.1 runs 128 unthrottled YCSB threads against each store. With
//! simulated devices, throughput is device-limited, so a single logical
//! client driving the engine in a closed loop over the devices' *virtual*
//! time preserves relative throughput and — crucially — the pause
//! structure: a merge stall shows up as one op with an enormous latency
//! and a hole in the timeseries, exactly like Figure 7/9. (Substitution
//! documented in DESIGN.md §3.)

use bytes::Bytes;

use blsm_storage::Result;

use crate::generator::KeyChooser;
use crate::histogram::Histogram;
use crate::{format_key, make_value};

/// Engine-agnostic key-value interface the runner drives.
pub trait KvEngine {
    /// Point lookup.
    fn get(&mut self, key: &[u8]) -> Result<Option<Bytes>>;
    /// Blind write.
    fn put(&mut self, key: Bytes, value: Bytes) -> Result<()>;
    /// Delete.
    fn delete(&mut self, key: Bytes) -> Result<()>;
    /// Read-modify-write: read the value, append `suffix`, write back.
    fn read_modify_write(&mut self, key: Bytes, suffix: Bytes) -> Result<()>;
    /// Checked insert; false if the key existed.
    fn insert_if_not_exists(&mut self, key: Bytes, value: Bytes) -> Result<bool>;
    /// Blind delta application; engines without delta support fall back
    /// to read-modify-write.
    fn apply_delta(&mut self, key: Bytes, delta: Bytes) -> Result<()> {
        self.read_modify_write(key, delta)
    }
    /// Ordered scan; returns the number of rows read.
    fn scan(&mut self, from: &[u8], limit: usize) -> Result<usize>;
    /// Virtual microseconds of device busy time so far (all devices the
    /// engine touches).
    fn now_us(&self) -> u64;
    /// Background work hook (engines that want idle merge driving).
    fn maintenance(&mut self) -> Result<()> {
        Ok(())
    }
    /// Pushes all buffered state down (merges/compactions to completion,
    /// caches flushed). Used between benchmark phases.
    fn settle(&mut self) -> Result<()> {
        Ok(())
    }
    /// Writes back dirty cached pages only (the update-in-place engine's
    /// deferred second seek); a no-op for log-structured engines.
    fn flush_cache(&mut self) -> Result<()> {
        Ok(())
    }
    /// Verifies on-disk integrity (checksums, ordering, Bloom agreement)
    /// and returns every problem found. Engines without durable
    /// components have nothing to check. A benchmark driver should gate
    /// on this before a measured phase: numbers from a damaged store
    /// measure garbage.
    ///
    /// # Errors
    ///
    /// Fails only on transport errors reaching the store; detected
    /// damage is data, not an error.
    fn scrub(&mut self) -> Result<Vec<String>> {
        Ok(Vec::new())
    }
}

/// Operation types the mix can draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Point lookup of an existing record.
    Read,
    /// Blind overwrite of an existing record.
    Update,
    /// Read-modify-write of an existing record.
    Rmw,
    /// Insert of a brand new record (checked).
    Insert,
    /// Short ordered scan.
    Scan,
    /// Blind delta to an existing record.
    Delta,
}

/// Operation mix weights (need not sum to 1; they are normalized).
#[derive(Debug, Clone, Copy, Default)]
pub struct OpMix {
    /// Point reads.
    pub read: f64,
    /// Blind updates.
    pub update: f64,
    /// Read-modify-writes.
    pub rmw: f64,
    /// Checked inserts of new records.
    pub insert: f64,
    /// Short scans.
    pub scan: f64,
    /// Blind deltas.
    pub delta: f64,
}

impl OpMix {
    /// 100% blind updates.
    pub fn updates_only() -> OpMix {
        OpMix {
            update: 1.0,
            ..Default::default()
        }
    }

    /// 100% reads.
    pub fn reads_only() -> OpMix {
        OpMix {
            read: 1.0,
            ..Default::default()
        }
    }

    /// `write_frac` blind updates, rest reads (Figure 8's blind-write
    /// sweep).
    pub fn read_blind_write(write_frac: f64) -> OpMix {
        OpMix {
            read: 1.0 - write_frac,
            update: write_frac,
            ..Default::default()
        }
    }

    /// `write_frac` read-modify-writes, rest reads (Figure 8's RMW sweep).
    pub fn read_rmw(write_frac: f64) -> OpMix {
        OpMix {
            read: 1.0 - write_frac,
            rmw: write_frac,
            ..Default::default()
        }
    }

    fn pick(&self, u: f64) -> OpKind {
        let total = self.read + self.update + self.rmw + self.insert + self.scan + self.delta;
        let mut x = u * total;
        for (w, k) in [
            (self.read, OpKind::Read),
            (self.update, OpKind::Update),
            (self.rmw, OpKind::Rmw),
            (self.insert, OpKind::Insert),
            (self.scan, OpKind::Scan),
            (self.delta, OpKind::Delta),
        ] {
            if x < w {
                return k;
            }
            x -= w;
        }
        OpKind::Read
    }
}

/// A workload description.
pub struct Workload {
    /// Records assumed present when the run starts.
    pub record_count: u64,
    /// Value size in bytes (the paper uses 1000, §5.1).
    pub value_size: usize,
    /// Operation mix.
    pub mix: OpMix,
    /// Request distribution over existing records.
    pub chooser: Box<dyn KeyChooser>,
    /// Max scan length; YCSB draws uniformly from `1..=scan_max`.
    pub scan_max: usize,
    /// RNG seed for op picking and scan lengths.
    pub seed: u64,
    /// Fixed CPU cost charged per operation, in virtual microseconds.
    /// Bounds throughput when everything is cached (the paper's systems
    /// top out well below pure-RAM speeds due to CPU and lock overhead).
    pub cpu_us_per_op: f64,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("record_count", &self.record_count)
            .field("value_size", &self.value_size)
            .field("mix", &self.mix)
            .field("scan_max", &self.scan_max)
            .field("seed", &self.seed)
            .field("cpu_us_per_op", &self.cpu_us_per_op)
            .finish_non_exhaustive()
    }
}

impl Workload {
    /// A uniform workload over `records` records with the given mix.
    pub fn uniform(records: u64, mix: OpMix, seed: u64) -> Workload {
        Workload {
            record_count: records,
            value_size: 1000,
            mix,
            chooser: Box::new(crate::Uniform::new(records, seed ^ 0xabcd)),
            scan_max: 4,
            seed,
            cpu_us_per_op: 20.0,
        }
    }

    /// A scrambled-Zipfian workload (YCSB default θ).
    pub fn zipfian(records: u64, mix: OpMix, seed: u64) -> Workload {
        Workload {
            chooser: Box::new(crate::ScrambledZipfian::new(records, seed ^ 0xabcd)),
            ..Workload::uniform(records, mix, seed)
        }
    }

    /// The six standard YCSB core workloads:
    /// A (50/50 read/update, zipfian), B (95/5 read/update, zipfian),
    /// C (read-only, zipfian), D (95/5 read/insert, latest),
    /// E (95/5 scan/insert, zipfian, scans 1–100),
    /// F (50/50 read/read-modify-write, zipfian).
    pub fn ycsb(letter: char, records: u64, seed: u64) -> Workload {
        match letter.to_ascii_uppercase() {
            'A' => Workload::zipfian(
                records,
                OpMix {
                    read: 0.5,
                    update: 0.5,
                    ..Default::default()
                },
                seed,
            ),
            'B' => Workload::zipfian(
                records,
                OpMix {
                    read: 0.95,
                    update: 0.05,
                    ..Default::default()
                },
                seed,
            ),
            'C' => Workload::zipfian(records, OpMix::reads_only(), seed),
            'D' => Workload {
                chooser: Box::new(crate::Latest::new(records, seed ^ 0xabcd)),
                ..Workload::uniform(
                    records,
                    OpMix {
                        read: 0.95,
                        insert: 0.05,
                        ..Default::default()
                    },
                    seed,
                )
            },
            'E' => {
                let mut w = Workload::zipfian(
                    records,
                    OpMix {
                        scan: 0.95,
                        insert: 0.05,
                        ..Default::default()
                    },
                    seed,
                );
                w.scan_max = 100;
                w
            }
            'F' => Workload::zipfian(
                records,
                OpMix {
                    read: 0.5,
                    rmw: 0.5,
                    ..Default::default()
                },
                seed,
            ),
            other => panic!("unknown YCSB workload {other:?} (expected A-F)"),
        }
    }
}

/// One timeseries bucket.
#[derive(Debug, Clone, Copy)]
pub struct TimePoint {
    /// Bucket start, seconds of virtual time since the run began.
    pub t_sec: f64,
    /// Operations completed in the bucket divided by its width.
    pub ops_per_sec: f64,
    /// Mean latency in the bucket, milliseconds.
    pub mean_ms: f64,
    /// Max latency in the bucket, milliseconds.
    pub max_ms: f64,
}

/// Results of a run.
#[derive(Debug)]
pub struct RunReport {
    /// Operations completed.
    pub ops: u64,
    /// Virtual seconds elapsed.
    pub elapsed_sec: f64,
    /// Overall throughput, ops per virtual second.
    pub ops_per_sec: f64,
    /// Latency histogram across all ops (µs).
    pub latency: Histogram,
    /// Per-kind latency histograms (µs).
    pub by_kind: Vec<(OpKind, Histogram)>,
    /// Throughput/latency timeseries.
    pub timeseries: Vec<TimePoint>,
}

impl RunReport {
    /// Latency histogram for one op kind, if any were run.
    pub fn kind(&self, k: OpKind) -> Option<&Histogram> {
        self.by_kind.iter().find(|(kk, _)| *kk == k).map(|(_, h)| h)
    }
}

/// Closed-loop runner.
#[derive(Debug)]
pub struct Runner {
    /// Timeseries bucket width in virtual seconds.
    pub bucket_sec: f64,
}

impl Default for Runner {
    fn default() -> Self {
        Runner { bucket_sec: 1.0 }
    }
}

impl Runner {
    /// Runs `ops` operations of `workload` against `engine`.
    pub fn run(
        &self,
        engine: &mut dyn KvEngine,
        workload: &mut Workload,
        ops: u64,
    ) -> Result<RunReport> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(workload.seed);
        let mut latency = Histogram::new();
        let mut by_kind: Vec<(OpKind, Histogram)> = Vec::new();
        let mut timeseries = Vec::new();
        let mut bucket_ops = 0u64;
        let mut bucket_lat_sum = 0f64;
        let mut bucket_lat_max = 0u64;
        let mut bucket_start = 0f64;
        let mut cpu_us = 0f64;
        let mut next_insert_id = workload.record_count;

        let t0 = engine.now_us();
        let now = |engine: &dyn KvEngine, cpu: f64| (engine.now_us() - t0) as f64 + cpu;

        for _ in 0..ops {
            let kind = workload.mix.pick(rng.random());
            let before = now(engine, cpu_us);
            match kind {
                OpKind::Read => {
                    let key = format_key(workload.chooser.next_id());
                    engine.get(&key)?;
                }
                OpKind::Update => {
                    let id = workload.chooser.next_id();
                    engine.put(format_key(id), make_value(id ^ 1, workload.value_size))?;
                }
                OpKind::Rmw => {
                    let id = workload.chooser.next_id();
                    engine.read_modify_write(format_key(id), Bytes::from_static(b"!"))?;
                }
                OpKind::Insert => {
                    let id = next_insert_id;
                    next_insert_id += 1;
                    engine.insert_if_not_exists(
                        format_key(id),
                        make_value(id, workload.value_size),
                    )?;
                    workload.chooser.set_item_count(next_insert_id);
                }
                OpKind::Scan => {
                    let key = format_key(workload.chooser.next_id());
                    let len = rng.random_range(1..=workload.scan_max.max(1));
                    engine.scan(&key, len)?;
                }
                OpKind::Delta => {
                    let key = format_key(workload.chooser.next_id());
                    engine.apply_delta(key, Bytes::from_static(b"+"))?;
                }
            }
            cpu_us += workload.cpu_us_per_op;
            let after = now(engine, cpu_us);
            let lat = (after - before).max(0.0) as u64;
            latency.record(lat);
            match by_kind.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, h)) => h.record(lat),
                None => {
                    let mut h = Histogram::new();
                    h.record(lat);
                    by_kind.push((kind, h));
                }
            }
            bucket_ops += 1;
            bucket_lat_sum += lat as f64;
            bucket_lat_max = bucket_lat_max.max(lat);
            // Emit (possibly several) timeseries buckets.
            while after >= bucket_start + self.bucket_sec * 1e6 {
                timeseries.push(TimePoint {
                    t_sec: bucket_start / 1e6,
                    ops_per_sec: bucket_ops as f64 / self.bucket_sec,
                    mean_ms: if bucket_ops > 0 {
                        bucket_lat_sum / bucket_ops as f64 / 1e3
                    } else {
                        0.0
                    },
                    max_ms: bucket_lat_max as f64 / 1e3,
                });
                bucket_start += self.bucket_sec * 1e6;
                bucket_ops = 0;
                bucket_lat_sum = 0.0;
                bucket_lat_max = 0;
            }
        }
        let elapsed_us = now(engine, cpu_us);
        if bucket_ops > 0 {
            timeseries.push(TimePoint {
                t_sec: bucket_start / 1e6,
                ops_per_sec: bucket_ops as f64 / self.bucket_sec,
                mean_ms: bucket_lat_sum / bucket_ops as f64 / 1e3,
                max_ms: bucket_lat_max as f64 / 1e3,
            });
        }
        Ok(RunReport {
            ops,
            elapsed_sec: elapsed_us / 1e6,
            ops_per_sec: ops as f64 / (elapsed_us / 1e6).max(1e-9),
            latency,
            by_kind,
            timeseries,
        })
    }

    /// Loads `records` fresh records via checked inserts (the §5.2 load
    /// semantics for bLSM) or blind puts.
    pub fn load(
        &self,
        engine: &mut dyn KvEngine,
        records: u64,
        value_size: usize,
        checked: bool,
        order: LoadOrder,
    ) -> Result<RunReport> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut ids: Vec<u64> = (0..records).collect();
        match order {
            LoadOrder::Sorted => {}
            LoadOrder::Random => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0x10ad);
                ids.shuffle(&mut rng);
            }
            LoadOrder::Reverse => ids.reverse(),
        }
        let mut latency = Histogram::new();
        let mut timeseries = Vec::new();
        let mut bucket_ops = 0u64;
        let mut bucket_lat_sum = 0f64;
        let mut bucket_lat_max = 0u64;
        let mut bucket_start = 0f64;
        let mut cpu_us = 0f64;
        let t0 = engine.now_us();
        let cpu_per_op = 20.0;
        for id in ids {
            let before = (engine.now_us() - t0) as f64 + cpu_us;
            let key = format_key(id);
            let value = make_value(id, value_size);
            if checked {
                engine.insert_if_not_exists(key, value)?;
            } else {
                engine.put(key, value)?;
            }
            cpu_us += cpu_per_op;
            let after = (engine.now_us() - t0) as f64 + cpu_us;
            let lat = (after - before).max(0.0) as u64;
            latency.record(lat);
            bucket_ops += 1;
            bucket_lat_sum += lat as f64;
            bucket_lat_max = bucket_lat_max.max(lat);
            while after >= bucket_start + self.bucket_sec * 1e6 {
                timeseries.push(TimePoint {
                    t_sec: bucket_start / 1e6,
                    ops_per_sec: bucket_ops as f64 / self.bucket_sec,
                    mean_ms: if bucket_ops > 0 {
                        bucket_lat_sum / bucket_ops as f64 / 1e3
                    } else {
                        0.0
                    },
                    max_ms: bucket_lat_max as f64 / 1e3,
                });
                bucket_start += self.bucket_sec * 1e6;
                bucket_ops = 0;
                bucket_lat_sum = 0.0;
                bucket_lat_max = 0;
            }
        }
        let elapsed_us = (engine.now_us() - t0) as f64 + cpu_us;
        Ok(RunReport {
            ops: records,
            elapsed_sec: elapsed_us / 1e6,
            ops_per_sec: records as f64 / (elapsed_us / 1e6).max(1e-9),
            latency,
            by_kind: Vec::new(),
            timeseries,
        })
    }
}

/// Key order for bulk loads (§5.2 compares them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOrder {
    /// Pre-sorted (InnoDB's required fast path).
    Sorted,
    /// Uniform random order (the paper's main load).
    Random,
    /// Reverse order (the snowshoveling worst case, §4.2).
    Reverse,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use std::collections::BTreeMap;

    /// A trivial in-memory engine with a fake clock for runner tests.
    struct MemEngine {
        map: BTreeMap<Bytes, Bytes>,
        fake_us: u64,
        per_op_us: u64,
    }

    impl MemEngine {
        fn new(per_op_us: u64) -> MemEngine {
            MemEngine {
                map: BTreeMap::new(),
                fake_us: 0,
                per_op_us,
            }
        }
    }

    impl KvEngine for MemEngine {
        fn get(&mut self, key: &[u8]) -> Result<Option<Bytes>> {
            self.fake_us += self.per_op_us;
            Ok(self.map.get(key).cloned())
        }
        fn put(&mut self, key: Bytes, value: Bytes) -> Result<()> {
            self.fake_us += self.per_op_us;
            self.map.insert(key, value);
            Ok(())
        }
        fn delete(&mut self, key: Bytes) -> Result<()> {
            self.map.remove(&key);
            Ok(())
        }
        fn read_modify_write(&mut self, key: Bytes, suffix: Bytes) -> Result<()> {
            self.fake_us += 2 * self.per_op_us;
            let mut v = self.map.get(&key).cloned().unwrap_or_default().to_vec();
            v.extend_from_slice(&suffix);
            self.map.insert(key, Bytes::from(v));
            Ok(())
        }
        fn insert_if_not_exists(&mut self, key: Bytes, value: Bytes) -> Result<bool> {
            self.fake_us += self.per_op_us;
            if self.map.contains_key(&key) {
                return Ok(false);
            }
            self.map.insert(key, value);
            Ok(true)
        }
        fn scan(&mut self, from: &[u8], limit: usize) -> Result<usize> {
            self.fake_us += self.per_op_us;
            Ok(self
                .map
                .range(Bytes::copy_from_slice(from)..)
                .take(limit)
                .count())
        }
        fn now_us(&self) -> u64 {
            self.fake_us
        }
    }

    #[test]
    fn runner_measures_throughput_from_virtual_time() {
        let mut engine = MemEngine::new(80); // +20us CPU => 100us/op
        let mut wl = Workload::uniform(1000, OpMix::updates_only(), 1);
        wl.cpu_us_per_op = 20.0;
        let report = Runner::default().run(&mut engine, &mut wl, 5000).unwrap();
        assert_eq!(report.ops, 5000);
        assert!(
            (report.ops_per_sec - 10_000.0).abs() < 500.0,
            "{}",
            report.ops_per_sec
        );
        assert!((report.latency.mean() - 100.0).abs() < 5.0);
    }

    #[test]
    fn mixed_workload_runs_all_kinds() {
        let mut engine = MemEngine::new(10);
        // Preload so reads/updates hit existing keys.
        for id in 0..100 {
            engine.map.insert(format_key(id), make_value(id, 10));
        }
        let mix = OpMix {
            read: 0.3,
            update: 0.2,
            rmw: 0.2,
            insert: 0.1,
            scan: 0.1,
            delta: 0.1,
        };
        let mut wl = Workload::zipfian(100, mix, 3);
        wl.value_size = 10;
        let report = Runner::default().run(&mut engine, &mut wl, 2000).unwrap();
        assert_eq!(report.by_kind.len(), 6, "all op kinds exercised");
        // Inserts grew the keyspace.
        assert!(engine.map.len() > 100);
    }

    #[test]
    fn timeseries_buckets_cover_run() {
        let mut engine = MemEngine::new(100_000); // 0.1s per op
        let mut wl = Workload::uniform(10, OpMix::updates_only(), 1);
        let report = Runner { bucket_sec: 0.5 }
            .run(&mut engine, &mut wl, 20)
            .unwrap();
        // 20 ops * 0.1s = 2s => ~4 buckets of 0.5s.
        assert!(report.timeseries.len() >= 4, "{}", report.timeseries.len());
        let total: f64 = report.timeseries.iter().map(|p| p.ops_per_sec * 0.5).sum();
        assert!((total - 20.0).abs() < 1.0);
    }

    #[test]
    fn load_orders() {
        for order in [LoadOrder::Sorted, LoadOrder::Random, LoadOrder::Reverse] {
            let mut engine = MemEngine::new(5);
            let report = Runner::default()
                .load(&mut engine, 500, 64, true, order)
                .unwrap();
            assert_eq!(report.ops, 500);
            assert_eq!(engine.map.len(), 500, "{order:?}");
        }
    }

    #[test]
    fn op_mix_pick_respects_weights() {
        let mix = OpMix::read_blind_write(0.25);
        let mut writes = 0;
        let n = 10_000;
        for i in 0..n {
            let u = i as f64 / n as f64;
            if mix.pick(u) == OpKind::Update {
                writes += 1;
            }
        }
        assert!((writes as f64 / n as f64 - 0.25).abs() < 0.01);
    }
}
