//! Criterion micro-benchmarks for the core data structures: CPU costs of
//! the operations whose *I/O* costs the experiment binaries measure.
//!
//! Run with `cargo bench -p blsm-bench`.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    missing_debug_implementations
)]

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use blsm::{AppendOperator, BLsmConfig, BLsmTree};
use blsm_bloom::BloomFilter;
use blsm_memtable::{Memtable, Versioned};
use blsm_sstable::{ReadMode, Sstable, SstableBuilder};
use blsm_storage::{BufferPool, MemDevice, PageId, Region, SharedDevice};
use blsm_ycsb::{format_key, make_value, KeyChooser, ScrambledZipfian};

fn bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    let mut filter = BloomFilter::with_capacity(1_000_000);
    for i in 0..1_000_000u64 {
        filter.insert(&i.to_le_bytes());
    }
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert", |b| {
        let mut filter = BloomFilter::with_capacity(1_000_000);
        let mut i = 0u64;
        b.iter(|| {
            filter.insert(&i.to_le_bytes());
            i += 1;
        });
    });
    g.bench_function("probe_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let hit = filter.contains(&(i % 1_000_000).to_le_bytes());
            i += 1;
            hit
        });
    });
    g.bench_function("probe_miss", |b| {
        let mut i = 1_000_000u64;
        b.iter(|| {
            let hit = filter.contains(&i.to_le_bytes());
            i += 1;
            hit
        });
    });
    g.finish();
}

fn memtable(c: &mut Criterion) {
    let mut g = c.benchmark_group("memtable");
    g.throughput(Throughput::Elements(1));
    g.bench_function("insert_1k_values", |b| {
        b.iter_batched(
            Memtable::new,
            |mut m| {
                for i in 0..100u64 {
                    m.insert(
                        format_key(i),
                        Versioned::put(i, make_value(i, 1000)),
                        &AppendOperator,
                    );
                }
                m
            },
            BatchSize::SmallInput,
        );
    });
    let mut m = Memtable::new();
    for i in 0..100_000u64 {
        m.insert(
            format_key(i),
            Versioned::put(i, make_value(i, 100)),
            &AppendOperator,
        );
    }
    g.bench_function("get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let v = m.get(&format_key(i % 100_000));
            i += 7919;
            v.is_some()
        });
    });
    g.finish();
}

fn build_table(n: u64) -> Arc<Sstable> {
    let dev: SharedDevice = Arc::new(MemDevice::new());
    let pool = Arc::new(BufferPool::new(dev, 65_536));
    let region = Region {
        start: PageId(0),
        pages: 262_144,
    };
    let mut b = SstableBuilder::new(pool, region, n);
    for i in 0..n {
        b.add(&format_key(i), &Versioned::put(i, make_value(i, 1000)))
            .unwrap();
    }
    Arc::new(b.finish().unwrap())
}

fn sstable(c: &mut Criterion) {
    let mut g = c.benchmark_group("sstable");
    let table = build_table(100_000);
    g.throughput(Throughput::Elements(1));
    g.bench_function("point_lookup_cached", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let v = table.get(&format_key(i % 100_000)).unwrap();
            i += 104_729;
            v.is_some()
        });
    });
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("full_scan_100k", |b| {
        b.iter(|| table.iter(ReadMode::Buffered(64)).count());
    });
    g.finish();
}

fn tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("blsm_tree");
    g.sample_size(10);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("load_10k_with_merges", |b| {
        b.iter_batched(
            || {
                let data: SharedDevice = Arc::new(MemDevice::new());
                let wal: SharedDevice = Arc::new(MemDevice::new());
                BLsmTree::open(
                    data,
                    wal,
                    4096,
                    BLsmConfig {
                        mem_budget: 1 << 20,
                        ..Default::default()
                    },
                    Arc::new(AppendOperator),
                )
                .unwrap()
            },
            |tree| {
                for i in 0..10_000u64 {
                    tree.put(format_key(i * 2_654_435_761 % 50_000), make_value(i, 100))
                        .unwrap();
                }
                tree
            },
            BatchSize::PerIteration,
        );
    });

    let data: SharedDevice = Arc::new(MemDevice::new());
    let wal: SharedDevice = Arc::new(MemDevice::new());
    let tree = BLsmTree::open(
        data,
        wal,
        16_384,
        BLsmConfig {
            mem_budget: 4 << 20,
            ..Default::default()
        },
        Arc::new(AppendOperator),
    )
    .unwrap();
    for i in 0..50_000u64 {
        tree.put(format_key(i), make_value(i, 100)).unwrap();
    }
    tree.checkpoint().unwrap();
    let mut zipf = ScrambledZipfian::new(50_000, 7);
    g.throughput(Throughput::Elements(1));
    g.bench_function("zipfian_get", |b| {
        b.iter(|| tree.get(&format_key(zipf.next_id())).unwrap());
    });
    g.bench_function("scan_10", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let n = tree.scan(&format_key(i % 49_000), 10).unwrap().len();
            i += 7919;
            n
        });
    });
    g.finish();
}

criterion_group!(benches, bloom, memtable, sstable, tree);
criterion_main!(benches);
