//! Scaled experiment configuration and engine construction.

use std::sync::Arc;

use blsm::{BLsmConfig, BLsmTree, Durability, SchedulerKind};
use blsm_btree::BTree;
use blsm_leveldb_like::{LevelDbConfig, LevelDbLike};
use blsm_memtable::AppendOperator;
use blsm_storage::{BufferPool, DiskModel, SharedDevice, SimDevice};

use crate::adapters::{BLsmEngine, BTreeEngine, LevelDbEngine};

/// Which engine to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Our bLSM tree.
    BLsm,
    /// The update-in-place B+Tree (InnoDB stand-in).
    BTree,
    /// The LevelDB-style multi-level LSM.
    LevelDb,
}

impl EngineKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::BLsm => "bLSM",
            EngineKind::BTree => "InnoDB-like B-Tree",
            EngineKind::LevelDb => "LevelDB-like",
        }
    }
}

/// Experiment scale. `paper_scaled()` is 1/1000 of §5.1: 50 GB of
/// 1000-byte values → 50 MB; 10 GB of RAM → 10 MB (bLSM: 8 MB `C0` +
/// 2 MB cache; baselines: 10 MB cache).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Records in the loaded database.
    pub records: u64,
    /// Value size (the paper's 1000 bytes).
    pub value_size: usize,
    /// bLSM `C0` budget in bytes.
    pub blsm_c0: usize,
    /// bLSM buffer-cache pages.
    pub blsm_cache_pages: usize,
    /// Baseline buffer-cache pages (they get the whole RAM budget).
    pub baseline_cache_pages: usize,
    /// LevelDB-like tuning, scaled alongside.
    pub leveldb: LevelDbConfig,
}

impl Scale {
    /// 1/1000 of the paper's setup.
    pub fn paper_scaled() -> Scale {
        Scale {
            records: 50_000,
            value_size: 1000,
            blsm_c0: 8 << 20,
            blsm_cache_pages: (2 << 20) / 4096,
            baseline_cache_pages: (10 << 20) / 4096,
            leveldb: LevelDbConfig {
                write_buffer: 512 << 10,
                max_file_size: 256 << 10,
                level_base: 2 << 20,
                level_multiplier: 10,
                l0_compact: 4,
                l0_slowdown: 8,
                l0_stop: 12,
                work_per_write: 8 << 10,
                max_levels: 7,
            },
        }
    }

    /// A smaller scale for quick iterations.
    pub fn quick() -> Scale {
        let mut s = Scale::paper_scaled();
        s.records = 10_000;
        s.blsm_c0 = 2 << 20;
        s
    }

    /// Scale with a custom record count (other knobs kept proportional to
    /// `paper_scaled`'s data:RAM ratio).
    pub fn with_records(mut self, records: u64) -> Scale {
        let ratio = records as f64 / 50_000.0;
        self.records = records;
        self.blsm_c0 = ((8 << 20) as f64 * ratio) as usize;
        self.blsm_cache_pages = ((((2 << 20) as f64 * ratio) as usize) / 4096).max(64);
        self.baseline_cache_pages = ((((10 << 20) as f64 * ratio) as usize) / 4096).max(64);
        self.leveldb.write_buffer = (((512 << 10) as f64 * ratio) as usize).max(64 << 10);
        self.leveldb.max_file_size = (((256 << 10) as f64 * ratio) as u64).max(64 << 10);
        self.leveldb.level_base = (((2 << 20) as f64 * ratio) as u64).max(256 << 10);
        self
    }

    /// Total user data bytes at this scale.
    pub fn data_bytes(&self) -> u64 {
        self.records * self.value_size as u64
    }
}

/// Builds a bLSM engine on fresh simulated devices with the given model.
pub fn make_blsm(model: DiskModel, scale: &Scale) -> BLsmEngine {
    make_blsm_with(model, scale, SchedulerKind::SpringGear, true)
}

/// bLSM with explicit scheduler/snowshovel choices (for ablations).
pub fn make_blsm_with(
    model: DiskModel,
    scale: &Scale,
    scheduler: SchedulerKind,
    snowshovel: bool,
) -> BLsmEngine {
    let data: SharedDevice = Arc::new(SimDevice::new(model.clone()));
    let wal: SharedDevice = Arc::new(SimDevice::new(model));
    let config = BLsmConfig {
        mem_budget: scale.blsm_c0,
        scheduler,
        snowshovel,
        durability: Durability::Buffered,
        wal_capacity: (scale.blsm_c0 as u64 * 16).max(64 << 20),
        ..Default::default()
    };
    let tree = BLsmTree::open(
        data.clone(),
        wal.clone(),
        scale.blsm_cache_pages,
        config,
        Arc::new(AppendOperator),
    )
    .unwrap_or_else(|e| panic!("open blsm: {e}"));
    BLsmEngine { tree, data, wal }
}

/// Builds a B-Tree engine on a fresh simulated device.
pub fn make_btree(model: DiskModel, scale: &Scale) -> BTreeEngine {
    let data: SharedDevice = Arc::new(SimDevice::new(model));
    let pool = Arc::new(BufferPool::new(data.clone(), scale.baseline_cache_pages));
    let tree = BTree::create(pool).unwrap_or_else(|e| panic!("create btree: {e}"));
    BTreeEngine { tree, data }
}

/// Builds a LevelDB-like engine on a fresh simulated device.
pub fn make_leveldb(model: DiskModel, scale: &Scale) -> LevelDbEngine {
    let data: SharedDevice = Arc::new(SimDevice::new(model));
    let pool = Arc::new(BufferPool::new(data.clone(), scale.baseline_cache_pages));
    let inner = LevelDbLike::new(pool, scale.leveldb.clone(), Arc::new(AppendOperator));
    LevelDbEngine { inner, data }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use blsm_ycsb::{KvEngine, LoadOrder, OpMix, Runner, Workload};

    #[test]
    fn all_engines_survive_a_small_mixed_run() {
        let scale = Scale::paper_scaled().with_records(2_000);
        let runner = Runner::default();
        let mut engines: Vec<Box<dyn KvEngine>> = vec![
            Box::new(make_blsm(DiskModel::ssd(), &scale)),
            Box::new(make_btree(DiskModel::ssd(), &scale)),
            Box::new(make_leveldb(DiskModel::ssd(), &scale)),
        ];
        for engine in &mut engines {
            runner
                .load(
                    engine.as_mut(),
                    scale.records,
                    100,
                    false,
                    LoadOrder::Random,
                )
                .unwrap();
            let mut wl = Workload::uniform(
                scale.records,
                OpMix {
                    read: 0.5,
                    update: 0.2,
                    rmw: 0.1,
                    insert: 0.1,
                    scan: 0.05,
                    delta: 0.05,
                },
                7,
            );
            wl.value_size = 100;
            let report = runner.run(engine.as_mut(), &mut wl, 2_000).unwrap();
            assert_eq!(report.ops, 2_000);
            assert!(report.ops_per_sec > 0.0);
        }
    }
}
