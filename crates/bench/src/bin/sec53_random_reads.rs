//! §5.3: random read performance.
//!
//! "Historically, read amplification has been a major drawback of
//! LSM-trees ... Figure 8 shows that this is no longer the case for
//! random index probes." Both bLSM and the B-Tree perform ~1 seek per
//! uncached read; LevelDB performs several. We measure throughput at 100%
//! reads and the underlying seeks/read on both device models.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use blsm::{AppendOperator, BLsmConfig, BLsmTree, Durability};
use blsm_bench::setup::{make_blsm, make_btree, make_leveldb, Scale};
use blsm_bench::{
    fmt_f, make_sharded_mem, parse_json_path, parse_shards, parse_threads, print_table,
    read_scaling_rows, sharded_write_scaling_rows, write_json_report, write_scaling_rows, Json,
};
use blsm_storage::{DiskModel, MemDevice, SharedDevice};
use blsm_ycsb::{KvEngine, LoadOrder, OpMix, Runner, Workload};

fn main() {
    let scale = Scale::paper_scaled().with_records(20_000);
    let runner = Runner::default();
    let ops = 8_000u64;
    let json_path = parse_json_path();
    let mut json_models = Vec::new();

    for model in [DiskModel::hdd(), DiskModel::ssd()] {
        let mut rows = Vec::new();
        let mut json_rows = Vec::new();
        let engines: Vec<(&str, Box<dyn KvEngine>, SharedDevice)> = {
            let mut v: Vec<(&str, Box<dyn KvEngine>, SharedDevice)> = Vec::new();
            let e = make_blsm(model.clone(), &scale);
            let d = e.data.clone();
            v.push(("bLSM", Box::new(e), d));
            let e = make_btree(model.clone(), &scale);
            let d = e.data.clone();
            v.push(("B-Tree", Box::new(e), d));
            let e = make_leveldb(model.clone(), &scale);
            let d = e.data.clone();
            v.push(("LevelDB-like", Box::new(e), d));
            v
        };
        for (name, mut engine, device) in engines {
            runner
                .load(
                    engine.as_mut(),
                    scale.records,
                    scale.value_size,
                    false,
                    LoadOrder::Random,
                )
                .unwrap();
            // Leave the trees in their natural post-load state (the paper
            // measures after its load, not after a manual major
            // compaction) — but drain memtables so reads hit disk paths.
            engine.maintenance().unwrap();
            let before = device.stats();
            let mut wl = Workload::uniform(scale.records, OpMix::reads_only(), 0x1ead);
            wl.value_size = scale.value_size;
            let report = runner.run(engine.as_mut(), &mut wl, ops).unwrap();
            let d = device.stats().delta_since(&before);
            rows.push(vec![
                name.to_string(),
                fmt_f(report.ops_per_sec),
                fmt_f(d.random_reads as f64 / ops as f64),
                fmt_f(report.latency.mean() / 1e3),
                fmt_f(report.latency.percentile(0.99) as f64 / 1e3),
            ]);
            json_rows.push(Json::obj(vec![
                ("system", Json::Str(name.to_string())),
                ("ops_per_sec", Json::Num(report.ops_per_sec)),
                (
                    "seeks_per_read",
                    Json::Num(d.random_reads as f64 / ops as f64),
                ),
                ("mean_latency_ms", Json::Num(report.latency.mean() / 1e3)),
                (
                    "p99_latency_ms",
                    Json::Num(report.latency.percentile(0.99) as f64 / 1e3),
                ),
            ]));
        }
        print_table(
            &format!("Sec 5.3: 100% uniform random reads ({})", model.name),
            &["system", "ops/s", "seeks/read", "mean lat (ms)", "p99 (ms)"],
            &rows,
        );
        json_models.push(Json::obj(vec![
            ("model", Json::Str(model.name.to_string())),
            ("rows", Json::Arr(json_rows)),
        ]));
    }
    println!(
        "\nPaper: InnoDB and bLSM perform about one disk seek per read; LevelDB performs \
         multiple seeks per read, reflected in its throughput."
    );

    // Concurrent read scaling (wall clock): N reader threads share the
    // lock-free read path while the background merge thread runs. Pass
    // `--threads 1,2,4,8` to choose the thread counts.
    let threads = parse_threads(&[1, 2, 4]);
    let mut engine = make_blsm(DiskModel::ssd(), &scale);
    runner
        .load(
            &mut engine,
            scale.records,
            scale.value_size,
            false,
            LoadOrder::Random,
        )
        .unwrap();
    engine.settle().unwrap();
    let points = read_scaling_rows(
        engine.tree,
        scale.records,
        scale.value_size,
        ops,
        &threads,
        false,
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                fmt_f(p.ops_per_sec),
                fmt_f(p.ops_per_sec / p.threads as f64),
            ]
        })
        .collect();
    print_table(
        "Sec 5.3 extension: bLSM concurrent uniform reads, wall clock (lock-free read path)",
        &["threads", "ops/s", "ops/s per thread"],
        &rows,
    );
    println!(
        "\nReaders never take a tree-level lock (they pin an immutable catalog snapshot) and \
         the buffer pool is sharded, so concurrent cached probes no longer serialize on a \
         single pool mutex."
    );

    // Concurrent write scaling (wall clock): N writer threads, put-only,
    // on the `&self` write path — sharded `C0`, atomic seqno tickets, no
    // tree-wide write lock (DESIGN.md §15). Degraded durability (§4.4.2)
    // and a generous `C0` budget isolate the write path itself from log
    // serialization and merge stalls; keys carry a hashed first byte so
    // the writers spread over all sixteen shards.
    let write_ops = 40_000u64;
    let wpoints = write_scaling_rows(
        || {
            let data: SharedDevice = Arc::new(MemDevice::new());
            let wal: SharedDevice = Arc::new(MemDevice::new());
            BLsmTree::open(
                data,
                wal,
                2048,
                BLsmConfig {
                    mem_budget: 256 << 20,
                    durability: Durability::None,
                    wal_capacity: 64 << 20,
                    ..Default::default()
                },
                Arc::new(AppendOperator),
            )
            .unwrap()
        },
        100,
        write_ops,
        &threads,
        0,
    );
    let wrows: Vec<Vec<String>> = wpoints
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                fmt_f(p.puts_per_sec),
                fmt_f(p.puts_per_sec / p.threads as f64),
            ]
        })
        .collect();
    print_table(
        "Sec 5.3 extension: bLSM concurrent put-only writes, wall clock (&self write path)",
        &["threads", "puts/s", "puts/s per thread"],
        &wrows,
    );

    // Sharded serving tier (wall clock): 4 writers, put-only, against a
    // `ShardedBLsm` at each `--shards` count — per-shard WALs, merge
    // schedulers and backpressure behind the key-range router
    // (DESIGN.md §16). On one hardware thread this prices the routing
    // layer; throughput should stay roughly flat as shards grow.
    let shard_counts = parse_shards(&[1, 2, 4]);
    let spoints = sharded_write_scaling_rows(make_sharded_mem, 100, write_ops, &shard_counts, 4, 0);
    let srows: Vec<Vec<String>> = spoints
        .iter()
        .map(|p| {
            vec![
                p.shards.to_string(),
                p.threads.to_string(),
                fmt_f(p.puts_per_sec),
            ]
        })
        .collect();
    print_table(
        "Sec 5.3 extension: sharded serving tier, concurrent put-only writes, wall clock",
        &["shards", "writer threads", "puts/s"],
        &srows,
    );

    if let Some(path) = json_path {
        let sharded_scaling = spoints
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("shards", Json::Int(p.shards as u64)),
                    ("threads", Json::Int(p.threads as u64)),
                    ("puts_per_sec", Json::Num(p.puts_per_sec)),
                ])
            })
            .collect();
        let write_scaling = wpoints
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("threads", Json::Int(p.threads as u64)),
                    ("puts_per_sec", Json::Num(p.puts_per_sec)),
                    (
                        "puts_per_sec_per_thread",
                        Json::Num(p.puts_per_sec / p.threads as f64),
                    ),
                ])
            })
            .collect();
        let scaling = points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("threads", Json::Int(p.threads as u64)),
                    ("ops_per_sec", Json::Num(p.ops_per_sec)),
                    (
                        "ops_per_sec_per_thread",
                        Json::Num(p.ops_per_sec / p.threads as f64),
                    ),
                ])
            })
            .collect();
        let report = Json::obj(vec![
            ("bench", Json::Str("sec53_random_reads".into())),
            ("records", Json::Int(scale.records)),
            ("ops", Json::Int(ops)),
            ("models", Json::Arr(json_models)),
            ("concurrent_read_scaling", Json::Arr(scaling)),
            (
                "concurrent_write_scaling_put_only",
                Json::Arr(write_scaling),
            ),
            ("sharded_write_scaling_put_only", Json::Arr(sharded_scaling)),
        ]);
        write_json_report(&path, &report);
    }
}
