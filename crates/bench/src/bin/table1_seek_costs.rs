//! Table 1: seeks per operation, measured on all three engines.
//!
//! Paper's claims (seeks on the data device; logs live on dedicated
//! hardware, §5.1):
//!
//! | operation            | bLSM | B-Tree | LevelDB   |
//! |----------------------|------|--------|-----------|
//! | point lookup         | 1    | 1      | O(log n)  |
//! | read-modify-write    | 1    | 2      | O(log n)  |
//! | apply delta          | 0    | 2      | 0         |
//! | insert or overwrite  | 0    | 2      | 0         |
//! | short scan           | ~3*  | 1      | O(log n)  |
//! | long scan (N pages)  | ~3   | up to N| O(log n)  |
//!
//! *Table 1 lists 2 for short scans assuming partitioning (§3.3); the
//! unpartitioned tree we build (like the paper's implementation) pays one
//! seek per live component.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use blsm_bench::setup::{make_blsm, make_btree, make_leveldb, Scale};
use blsm_bench::{fmt_f, print_table};
use blsm_storage::{DiskModel, SharedDevice};
use blsm_ycsb::{format_key, make_value, KvEngine};

type ProbeFn<'a> = Box<dyn FnMut(&mut dyn KvEngine, u64) + 'a>;

struct Probe<'a> {
    run: ProbeFn<'a>,
}

fn main() {
    let scale = Scale::paper_scaled().with_records(10_000);
    let records = scale.records;
    let value_size = scale.value_size;

    let engines: Vec<(&str, Box<dyn KvEngine>, SharedDevice)> = {
        let mut v: Vec<(&str, Box<dyn KvEngine>, SharedDevice)> = Vec::new();
        let e = make_blsm(DiskModel::hdd(), &scale);
        let d = e.data.clone();
        v.push(("bLSM", Box::new(e), d));
        let e = make_btree(DiskModel::hdd(), &scale);
        let d = e.data.clone();
        v.push(("B-Tree", Box::new(e), d));
        let e = make_leveldb(DiskModel::hdd(), &scale);
        let d = e.data.clone();
        v.push(("LevelDB-like", Box::new(e), d));
        v
    };

    let mut results: Vec<Vec<String>> = Vec::new();
    for (name, mut engine, device) in engines {
        // Load in random order (fragments the B-Tree, builds LSM levels).
        let mut rng = 0x5eedu64;
        let mut ids: Vec<u64> = (0..records).collect();
        for i in (1..ids.len()).rev() {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ids.swap(i, (rng >> 33) as usize % (i + 1));
        }
        for &id in &ids {
            engine
                .put(format_key(id), make_value(id, value_size))
                .unwrap();
        }
        engine.settle().unwrap();

        // Warm internal nodes / settle caches with a spray of reads.
        for i in 0..3_000u64 {
            let id = (i * 2654435761) % records;
            engine.get(&format_key(id)).unwrap();
        }

        let n_ops = 200u64;
        let mut row = vec![name.to_string()];
        let probes: Vec<Probe> = vec![
            Probe {
                run: Box::new(|e, id| {
                    e.get(&format_key(id)).unwrap();
                }),
            },
            Probe {
                run: Box::new(|e, id| {
                    e.read_modify_write(format_key(id), bytes::Bytes::from_static(b"!"))
                        .unwrap();
                }),
            },
            Probe {
                run: Box::new(|e, id| {
                    e.apply_delta(format_key(id), bytes::Bytes::from_static(b"+"))
                        .unwrap();
                }),
            },
            Probe {
                run: Box::new(move |e, id| {
                    e.put(format_key(id), make_value(id, value_size)).unwrap();
                }),
            },
            Probe {
                run: Box::new(|e, id| {
                    e.scan(&format_key(id), 4).unwrap();
                }),
            },
            Probe {
                run: Box::new(|e, id| {
                    e.scan(&format_key(id), 100).unwrap();
                }),
            },
        ];
        for (pi, mut probe) in probes.into_iter().enumerate() {
            let before = device.stats();
            // Distinct key stream per probe so one batch cannot pre-warm
            // the next batch's leaves.
            let mut rng = 0xfeedu64 ^ ((pi as u64 + 1) << 32);
            for _ in 0..n_ops {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(99);
                let id = (rng >> 33) % records;
                (probe.run)(engine.as_mut(), id);
            }
            // Include deferred writebacks (the B-Tree's second seek).
            engine.flush_cache().unwrap();
            let d = device.stats().delta_since(&before);
            row.push(fmt_f(d.seeks() as f64 / n_ops as f64));
        }
        results.push(row);
    }

    print_table(
        "Table 1: measured seeks per operation (HDD model, data device only)",
        &[
            "engine",
            "point lookup",
            "rmw",
            "apply delta",
            "insert/overwrite",
            "short scan(4)",
            "long scan(100)",
        ],
        &results,
    );
    println!(
        "\nPaper (Table 1): bLSM 1/1/0/0/~3/~3, B-Tree 1/2/2/2/1/up-to-N, \
         LevelDB O(log n) reads + 0-seek blind writes."
    );
    println!(
        "Note: after settling, the bLSM tree here holds a single on-disk component, so \
         scans cost ~1 seek; sec56_scans measures the steady three-component state \
         the paper's 3-seek figure refers to."
    );
}
