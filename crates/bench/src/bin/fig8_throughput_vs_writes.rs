//! Figure 8: throughput vs write fraction (uniform random access), for
//! hard disks (left panel) and SSDs (right panel).
//!
//! Five series per panel, exactly as the paper: InnoDB-like B-Tree,
//! LevelDB-like and bLSM under read-modify-write, and LevelDB-like and
//! bLSM under blind updates. Expected shapes (§5.3–§5.4):
//!
//! * at 0% writes, bLSM and the B-Tree are comparable (~1 seek/read);
//!   LevelDB is below both (multi-seek reads);
//! * RMW is strictly more expensive than reads everywhere;
//! * blind writes grow much faster than reads on HDD ("the importance of
//!   eliminating hard disk seeks");
//! * on SSD the B-Tree collapses to ~20% of its read throughput at 100%
//!   writes (random-write penalty) while bLSM keeps a large fraction.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use blsm_bench::setup::{make_blsm, make_btree, make_leveldb, Scale};
use blsm_bench::{fmt_f, print_table};
use blsm_storage::DiskModel;
use blsm_ycsb::{KvEngine, LoadOrder, OpMix, Runner, Workload};

fn measure(model: DiskModel, scale: &Scale, mix: OpMix, which: &str, ops: u64) -> f64 {
    let runner = Runner::default();
    let mut engine: Box<dyn KvEngine> = match which {
        "blsm" => Box::new(make_blsm(model, scale)),
        "btree" => Box::new(make_btree(model, scale)),
        _ => Box::new(make_leveldb(model, scale)),
    };
    runner
        .load(
            engine.as_mut(),
            scale.records,
            scale.value_size,
            false,
            LoadOrder::Random,
        )
        .unwrap();
    engine.settle().unwrap();
    let mut wl = Workload::uniform(scale.records, mix, 0x5eed);
    wl.value_size = scale.value_size;
    let report = runner.run(engine.as_mut(), &mut wl, ops).unwrap();
    report.ops_per_sec
}

fn main() {
    let scale = Scale::paper_scaled().with_records(20_000);
    let ops = 6_000u64;
    let fracs = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

    for model in [DiskModel::hdd(), DiskModel::ssd()] {
        let mut rows = Vec::new();
        for &f in &fracs {
            let mut row = vec![format!("{:.0}%", f * 100.0)];
            row.push(fmt_f(measure(
                model.clone(),
                &scale,
                OpMix::read_rmw(f),
                "btree",
                ops,
            )));
            row.push(fmt_f(measure(
                model.clone(),
                &scale,
                OpMix::read_rmw(f),
                "leveldb",
                ops,
            )));
            row.push(fmt_f(measure(
                model.clone(),
                &scale,
                OpMix::read_rmw(f),
                "blsm",
                ops,
            )));
            row.push(fmt_f(measure(
                model.clone(),
                &scale,
                OpMix::read_blind_write(f),
                "leveldb",
                ops,
            )));
            row.push(fmt_f(measure(
                model.clone(),
                &scale,
                OpMix::read_blind_write(f),
                "blsm",
                ops,
            )));
            rows.push(row);
        }
        print_table(
            &format!(
                "Figure 8 ({}): throughput (ops/s) vs write fraction, uniform random",
                model.name
            ),
            &[
                "write %",
                "InnoDB (RMW)",
                "LevelDB (RMW)",
                "bLSM (RMW)",
                "LevelDB (blind)",
                "bLSM (blind)",
            ],
            &rows,
        );
    }
    println!(
        "\nPaper shapes: blind-write series rise steeply with write %; RMW stays read-bound; \
         on SSD the B-Tree keeps only ~20% of its throughput at 100% writes while bLSM \
         keeps 41% (RMW) / 78% (blind)."
    );
}
