//! Table 2 / Appendix A: RAM required to cache B-Tree index nodes so every
//! data access costs one seek, across four device types and access
//! frequencies. Assumes 100-byte keys, 1000-byte values, 4096-byte pages,
//! exactly as the paper's appendix.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use blsm_bench::models::{
    bloom_overhead_fraction, table2_cache_gb, table2_devices, table2_full_disk_gb, table2_periods,
};
use blsm_bench::print_table;

fn main() {
    let devices = table2_devices();

    let mut rows = Vec::new();
    rows.push(
        std::iter::once("Capacity (GB)".to_string())
            .chain(devices.iter().map(|d| format!("{}", d.capacity_gb)))
            .collect::<Vec<_>>(),
    );
    rows.push(
        std::iter::once("Reads / second".to_string())
            .chain(devices.iter().map(|d| format!("{}", d.reads_per_sec)))
            .collect::<Vec<_>>(),
    );
    for (label, period) in table2_periods() {
        let mut row = vec![label.to_string()];
        for dev in &devices {
            row.push(match table2_cache_gb(dev, period) {
                Some(gb) => format!("{gb:.3}"),
                None => "-".to_string(),
            });
        }
        rows.push(row);
    }
    let mut row = vec!["Full disk".to_string()];
    for dev in &devices {
        row.push(format!("{:.2}", table2_full_disk_gb(dev)));
    }
    rows.push(row);

    let headers: Vec<&str> = std::iter::once("Access frequency")
        .chain(devices.iter().map(|d| d.name))
        .collect();
    print_table(
        "Table 2: GB of B-Tree index cache per drive (read amplification = 1)",
        &headers,
        &rows,
    );

    println!(
        "\nAppendix A: Bloom filters add 1.25 B/key over all keys -> {:.0}% overhead \
         on the leaf-index cache (paper: ~5%).",
        bloom_overhead_fraction() * 100.0
    );
    println!(
        "Read fanout at 100 B keys / 4 KiB pages: {:.0} (paper: \"this yields a read \
         fanout of 40\").",
        4096.0 / 100.0
    );
}
