//! §5.2: raw insert performance and load semantics.
//!
//! The paper's findings, reproduced here:
//!
//! * **InnoDB** "provides the weakest fast insert primitive: we had to
//!   pre-sort the data to get reasonable throughput" — compare its
//!   random-order load against its pre-sorted bulk load.
//! * **LevelDB** sustains random *blind* inserts but cannot afford
//!   checked inserts (no Bloom filters → a multi-seek probe per insert).
//! * **bLSM** "provided steady high-throughput inserts, and tested for
//!   the pre-existence of each tuple as it was inserted" — its checked
//!   load runs at nearly blind-write speed thanks to the Bloom filter on
//!   the largest component (§3.1.2).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use blsm_bench::setup::{make_blsm, make_btree, make_leveldb, Scale};
use blsm_bench::{fmt_f, print_table};
use blsm_storage::DiskModel;
use blsm_ycsb::{format_key, make_value, KvEngine, LoadOrder, Runner};

fn main() {
    let scale = Scale::paper_scaled().with_records(20_000);
    let runner = Runner::default();
    let mut rows = Vec::new();

    fn run(
        rows: &mut Vec<Vec<String>>,
        runner: &Runner,
        scale: &Scale,
        name: &str,
        mut engine: Box<dyn KvEngine>,
        order: LoadOrder,
        checked: bool,
    ) -> f64 {
        let report = runner
            .load(
                engine.as_mut(),
                scale.records,
                scale.value_size,
                checked,
                order,
            )
            .unwrap();
        rows.push(vec![
            name.to_string(),
            format!("{order:?}"),
            if checked {
                "insert-if-not-exists"
            } else {
                "blind"
            }
            .to_string(),
            fmt_f(report.ops_per_sec),
            fmt_f(report.elapsed_sec),
            fmt_f(report.latency.max() as f64 / 1e3),
        ]);
        report.ops_per_sec
    }

    // InnoDB-like: random vs pre-sorted (its required fast path).
    let btree_random = run(
        &mut rows,
        &runner,
        &scale,
        "B-Tree",
        Box::new(make_btree(DiskModel::hdd(), &scale)),
        LoadOrder::Random,
        false,
    );
    // Pre-sorted B-Tree load uses the dedicated bulk loader.
    let presorted_ops = {
        let e = make_btree(DiskModel::hdd(), &scale);
        let pool = e.tree.pool().clone();
        let dev = e.data.clone();
        drop(e);
        let t0 = dev.now_us();
        let tree = blsm_btree::BTree::bulk_load(
            pool,
            (0..scale.records).map(|id| (format_key(id), make_value(id, scale.value_size))),
        )
        .unwrap();
        let elapsed = (dev.now_us() - t0) as f64 / 1e6 + scale.records as f64 * 20.0 / 1e6;
        assert_eq!(tree.entry_count(), scale.records);
        let ops = scale.records as f64 / elapsed;
        rows.push(vec![
            "B-Tree".into(),
            "Sorted".into(),
            "bulk load".into(),
            fmt_f(ops),
            fmt_f(elapsed),
            "-".into(),
        ]);
        ops
    };

    let ldb_blind = run(
        &mut rows,
        &runner,
        &scale,
        "LevelDB-like",
        Box::new(make_leveldb(DiskModel::hdd(), &scale)),
        LoadOrder::Random,
        false,
    );
    let ldb_checked = run(
        &mut rows,
        &runner,
        &scale,
        "LevelDB-like",
        Box::new(make_leveldb(DiskModel::hdd(), &scale)),
        LoadOrder::Random,
        true,
    );

    let blsm_blind = run(
        &mut rows,
        &runner,
        &scale,
        "bLSM",
        Box::new(make_blsm(DiskModel::hdd(), &scale)),
        LoadOrder::Random,
        false,
    );
    let blsm_checked = run(
        &mut rows,
        &runner,
        &scale,
        "bLSM",
        Box::new(make_blsm(DiskModel::hdd(), &scale)),
        LoadOrder::Random,
        true,
    );

    print_table(
        "Sec 5.2: bulk load performance (HDD model)",
        &[
            "system",
            "order",
            "semantics",
            "ops/s",
            "time (s)",
            "max lat (ms)",
        ],
        &rows,
    );

    println!("\nShape checks vs the paper:");
    println!(
        "  B-Tree needs pre-sorting: sorted/bulk {}x faster than random ({} vs {} ops/s)",
        fmt_f(presorted_ops / btree_random),
        fmt_f(presorted_ops),
        fmt_f(btree_random)
    );
    println!(
        "  LevelDB checked insert collapses: {} -> {} ops/s ({}x slower)",
        fmt_f(ldb_blind),
        fmt_f(ldb_checked),
        fmt_f(ldb_blind / ldb_checked.max(1.0))
    );
    println!(
        "  bLSM checked insert stays fast: {} -> {} ops/s ({}% of blind speed)",
        fmt_f(blsm_blind),
        fmt_f(blsm_checked),
        fmt_f(100.0 * blsm_checked / blsm_blind.max(1.0))
    );
    assert!(presorted_ops > btree_random * 3.0);
    assert!(
        blsm_checked > ldb_checked * 2.0,
        "bLSM's zero-seek check must win"
    );
    assert!(
        blsm_checked > 0.5 * blsm_blind,
        "bloom check must be nearly free"
    );
    assert!(
        blsm_blind > btree_random * 3.0,
        "log-structured writes must beat B-Tree"
    );
}
