//! Snowshoveling ablation (§4.2): run lengths and throughput by input
//! order, snowshovel on vs off.
//!
//! The paper's claims:
//!
//! * random input: replacement selection doubles run length, and
//!   eliminating the `C0`/`C0'` partition doubles the usable pool —
//!   "snowshoveling increases the effective size of C0 by a factor of
//!   four", which lowers write amplification;
//! * sorted input: "it streams them directly to disk" — a single pass
//!   swallows everything;
//! * reverse-sorted input: "the run is the size of RAM" (no gain, ×2
//!   from the unpartitioned pool only).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use blsm::SchedulerKind;
use blsm_bench::setup::{make_blsm_with, Scale};
use blsm_bench::{fmt_f, print_table};
use blsm_storage::DiskModel;
use blsm_ycsb::{LoadOrder, Runner};

fn main() {
    let scale = Scale::paper_scaled();
    let runner = Runner::default();
    let mut rows = Vec::new();

    for order in [LoadOrder::Random, LoadOrder::Sorted, LoadOrder::Reverse] {
        for snowshovel in [true, false] {
            // Snowshovel off uses the gear scheduler's partitioned C0.
            let kind = if snowshovel {
                SchedulerKind::SpringGear
            } else {
                SchedulerKind::Gear
            };
            let mut engine = make_blsm_with(DiskModel::hdd(), &scale, kind, snowshovel);
            let report = runner
                .load(&mut engine, scale.records, scale.value_size, false, order)
                .unwrap();
            let stats = engine.tree.stats();
            let passes = stats.merges01.max(1);
            let user_bytes = stats.user_bytes_written.max(1);
            let dev_written = engine.data.stats().bytes_written;
            rows.push(vec![
                format!("{order:?}"),
                if snowshovel { "on" } else { "off (C0/C0')" }.to_string(),
                fmt_f(report.ops_per_sec),
                passes.to_string(),
                fmt_f(user_bytes as f64 / passes as f64 / 1e6),
                fmt_f(dev_written as f64 / user_bytes as f64),
            ]);
        }
    }

    print_table(
        "Snowshovel ablation: 50k x 1000B inserts, C0 budget 8MB (HDD model)",
        &[
            "input order",
            "snowshovel",
            "ops/s",
            "C0:C1 passes",
            "avg run (MB user data)",
            "write amplification",
        ],
        &rows,
    );

    // Shape checks: snowshovel-on needs fewer passes (longer runs) for
    // random input, and sorted input yields far longer runs than reverse.
    let pass_count = |order_idx: usize, snow_idx: usize| -> f64 {
        rows[order_idx * 2 + snow_idx][3].parse::<f64>().unwrap()
    };
    let random_on = pass_count(0, 0);
    let random_off = pass_count(0, 1);
    let sorted_on = pass_count(1, 0);
    let reverse_on = pass_count(2, 0);
    println!(
        "\npasses: random on/off = {random_on}/{random_off}; sorted on = {sorted_on}; \
         reverse on = {reverse_on}"
    );
    assert!(
        random_on < random_off,
        "snowshoveling must lengthen runs on random input"
    );
    assert!(
        sorted_on <= random_on,
        "sorted input must stream through in fewer passes"
    );
}
