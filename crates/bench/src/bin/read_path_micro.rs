//! Read-path microbenchmark: where does a cached point lookup spend
//! its time, and does it allocate?
//!
//! The macro benchmarks (`sec53_random_reads`, `ycsb_suite`) measure the
//! whole engine; this binary isolates the layers the zero-copy leaf
//! decode and the sharded buffer pool optimize:
//!
//! 1. `BufferPool::read` of a cached page (the frame-map hit path);
//! 2. `Sstable::get` of a bloom-positive key with every page cached
//!    (index binary search + leaf fetch + in-page entry binary search);
//! 3. the same cached `Sstable::get` hammered from 1/2/4/8 threads — a
//!    pure shard-contention probe with no device, C0 or catalog in the
//!    way;
//! 4. heap allocations per cached `get`, via a counting global
//!    allocator: the zero-copy decode contract is that a bloom-positive
//!    lookup performs **zero** per-entry heap copies for non-matching
//!    entries, so allocs/op must stay a small constant (and in
//!    particular must not scale with entries-per-page).
//!
//! Pass `--json PATH` for a machine-readable report.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use blsm_bench::{fmt_f, parse_json_path, print_table, write_json_report, Json};
use blsm_memtable::Versioned;
use blsm_sstable::{Sstable, SstableBuilder};
use blsm_storage::{BufferPool, MemDevice, PageId, Region};
use blsm_ycsb::{format_key, make_value};
use bytes::Bytes;

/// Counts heap allocations so the zero-copy claim is measurable, not
/// aspirational.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// is a relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const RECORDS: u64 = 20_000;

fn build(value_size: usize, pool_pages: usize) -> (Arc<BufferPool>, Arc<Sstable>) {
    let pool = Arc::new(BufferPool::new(Arc::new(MemDevice::new()), pool_pages));
    let region = Region {
        start: PageId(0),
        pages: 16 * 1024,
    };
    let mut b = SstableBuilder::new(pool.clone(), region, RECORDS);
    for id in 0..RECORDS {
        b.add(
            &format_key(id),
            &Versioned::put(id + 1, make_value(id, value_size)),
        )
        .unwrap();
    }
    let sst = Arc::new(b.finish().unwrap());
    // Warm every leaf so the timed phase is a pure cache-hit workload.
    for id in 0..RECORDS {
        sst.get(&format_key(id)).unwrap().unwrap();
    }
    (pool, sst)
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// ns/op for `ops` uniform cached pool reads.
fn time_pool_reads(pool: &Arc<BufferPool>, sst: &Sstable, ops: u64) -> f64 {
    let n_pages = sst.meta().n_data_pages;
    let base = sst.region().start.0;
    let mut rng = 0x9a9e_u64;
    let start = Instant::now();
    for _ in 0..ops {
        let pid = PageId(base + lcg(&mut rng) % n_pages);
        let page = pool.read(pid).unwrap();
        std::hint::black_box(page.page_type().unwrap());
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}

/// ns/op for `ops` uniform cached bloom-positive point lookups.
fn time_gets(sst: &Sstable, ops: u64, value_size: usize) -> f64 {
    let mut rng = 0x51ab_u64;
    let start = Instant::now();
    for _ in 0..ops {
        let id = lcg(&mut rng) % RECORDS;
        let v = sst.get(&format_key(id)).unwrap().unwrap();
        debug_assert_eq!(v, Versioned::put(id + 1, make_value(id, value_size)));
    }
    start.elapsed().as_nanos() as f64 / ops as f64
}

/// Total ops/s for `threads` concurrent cached-get hammer threads.
fn time_gets_threaded(sst: &Arc<Sstable>, threads: usize, ops_per_thread: u64) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let sst = sst.clone();
            std::thread::spawn(move || {
                let mut rng = 0x7e11_u64 + t as u64;
                for _ in 0..ops_per_thread {
                    let id = lcg(&mut rng) % RECORDS;
                    std::hint::black_box(sst.get(&format_key(id)).unwrap().unwrap());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (threads as u64 * ops_per_thread) as f64 / start.elapsed().as_secs_f64()
}

/// Mean heap allocations per cached bloom-positive `get`.
fn allocs_per_get(sst: &Sstable, ops: u64) -> f64 {
    let mut rng = 0xa110c_u64;
    // Pre-generate keys so key formatting isn't counted.
    let keys: Vec<Bytes> = (0..ops)
        .map(|_| format_key(lcg(&mut rng) % RECORDS))
        .collect();
    let before = ALLOCS.load(Ordering::Relaxed);
    for k in &keys {
        std::hint::black_box(sst.get(k).unwrap().unwrap());
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    (after - before) as f64 / ops as f64
}

fn main() {
    let json_path = parse_json_path();
    let ops = 200_000u64;
    let mut json_cases = Vec::new();
    let mut rows = Vec::new();

    // Two shapes: the paper's 1000-byte values (~4 entries/page, fanout
    // stress on the leaf index) and 100-byte values (~30 entries/page,
    // where the in-page offset table pays off).
    for value_size in [1000usize, 100] {
        let (pool, sst) = build(value_size, 16 * 1024);
        let pool_ns = time_pool_reads(&pool, &sst, ops);
        let get_ns = time_gets(&sst, ops, value_size);
        let allocs = allocs_per_get(&sst, 50_000);
        let mut scaling = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let total = time_gets_threaded(&sst, threads, ops / 4);
            scaling.push((threads, total));
        }
        rows.push(vec![
            value_size.to_string(),
            format!("{}", pool.shard_count()),
            fmt_f(pool_ns),
            fmt_f(get_ns),
            format!("{allocs:.2}"),
            scaling
                .iter()
                .map(|(t, v)| format!("{t}:{}", fmt_f(*v)))
                .collect::<Vec<_>>()
                .join("  "),
        ]);
        json_cases.push(Json::obj(vec![
            ("value_size", Json::Int(value_size as u64)),
            ("pool_shards", Json::Int(pool.shard_count() as u64)),
            ("cached_pool_read_ns", Json::Num(pool_ns)),
            ("cached_get_ns", Json::Num(get_ns)),
            ("allocs_per_cached_get", Json::Num(allocs)),
            (
                "cached_get_scaling",
                Json::Arr(
                    scaling
                        .iter()
                        .map(|(t, v)| {
                            Json::obj(vec![
                                ("threads", Json::Int(*t as u64)),
                                ("ops_per_sec", Json::Num(*v)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    print_table(
        "Read-path microbench: cached sstable point lookups (MemDevice, fully warmed pool)",
        &[
            "value bytes",
            "shards",
            "pool read ns",
            "get ns",
            "allocs/get",
            "threads:ops/s",
        ],
        &rows,
    );
    println!(
        "\nallocs/get counts every heap allocation inside Sstable::get on a cache hit; the \
         zero-copy decode keeps it a small constant independent of entries per page."
    );

    if let Some(path) = json_path {
        let report = Json::obj(vec![
            ("bench", Json::Str("read_path_micro".into())),
            ("records", Json::Int(RECORDS)),
            ("ops", Json::Int(ops)),
            ("cases", Json::Arr(json_cases)),
        ]);
        write_json_report(&path, &report);
    }
}
