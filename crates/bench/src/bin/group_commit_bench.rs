//! Group-commit durability benchmark (BENCH_8): does durable write
//! throughput scale with client count?
//!
//! With per-write fsync, N clients writing synchronously share one
//! serial fsync pipeline: total throughput is pinned near `1/t_fsync`
//! no matter how many clients pile on. The group-commit WAL (DESIGN.md
//! §18) instead lets one committer amortize a single fsync over every
//! write that arrived while the previous sync was in flight, so
//! throughput should grow with client count until the device saturates.
//!
//! This binary measures exactly that, end to end over the wire:
//!
//! 1. raw device fsync latency (write + `sync_data` on a scratch file)
//!    — the floor any durable ack must pay;
//! 2. per-write-fsync baseline: one client, pipeline depth 1, against a
//!    `Durability::Sync` server — a solo writer gets a group of one,
//!    synced immediately, i.e. the classic fsync-per-write regime;
//! 3. scaling: 1, 8 and 32 clients, each pipelining `--depth` writes
//!    per round, against the same server.
//!
//! Expectations (reported as booleans, warned about, never fatal —
//! timing on shared CI boxes is advisory): 32 pipelined clients reach
//! at least 5x the baseline; throughput grows monotonically 1 -> 8 ->
//! 32; the solo-client p50 ack latency exceeds raw fsync p50 by no more
//! than the configured commit deadline.
//!
//! Modes:
//!
//! ```text
//! group_commit_bench [--seconds S] [--depth D] [--json PATH]
//! group_commit_bench --server ADDR [--clients N] [--seconds S] [--depth D]
//! ```
//!
//! The first starts an in-process `Durability::Sync` server on a
//! file-backed device in a temp dir and runs all three phases. The
//! second drives an already-running server (the CI smoke job points it
//! at a `blsm-server --durability sync` process with 64 clients) and
//! prints one machine-parseable throughput line.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::cast_precision_loss)]

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use blsm::{AppendOperator, BLsmConfig, BLsmTree, Durability, ThreadedBLsm};
use blsm_bench::{fmt_f, parse_json_path, print_table, write_json_report, Json};
use blsm_server::{Client, Request, Response, Server, ServerConfig};
use blsm_storage::{FileDevice, SharedDevice};

struct Args {
    server: Option<String>,
    clients: usize,
    seconds: f64,
    depth: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        server: None,
        clients: 64,
        seconds: 2.0,
        depth: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--server" => args.server = Some(value("--server")),
            "--clients" => args.clients = value("--clients").parse().expect("--clients"),
            "--seconds" => args.seconds = value("--seconds").parse().expect("--seconds"),
            "--depth" => args.depth = value("--depth").parse().expect("--depth"),
            "--json" => {
                let _ = value("--json"); // handled by parse_json_path
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn p50(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median microseconds for a small write + `sync_data` on a scratch
/// file — the device's price for one durable ack.
fn raw_fsync_micros(dir: &std::path::Path) -> u64 {
    let path = dir.join("fsync-probe");
    let mut file = std::fs::File::create(&path).expect("create fsync probe");
    file.write_all(&[0u8; 4096]).unwrap();
    file.sync_data().unwrap();
    let mut samples = Vec::with_capacity(64);
    for i in 0..64u64 {
        let start = Instant::now();
        file.write_all(&i.to_le_bytes()).unwrap();
        file.sync_data().unwrap();
        samples.push(start.elapsed().as_micros() as u64);
    }
    let _ = std::fs::remove_file(&path);
    p50(&mut samples)
}

/// One client thread: pipelined puts of `depth` per round until `stop`.
/// Returns (ops acked, per-round latency samples in µs).
fn hammer(
    addr: &str,
    client_id: usize,
    depth: usize,
    stop: &AtomicBool,
    acked: &AtomicU64,
) -> Vec<u64> {
    let mut client = Client::connect(addr).expect("connect");
    let value = vec![0x42u8; 100];
    let mut seq = 0u64;
    let mut latencies = Vec::with_capacity(4096);
    while !stop.load(Ordering::Relaxed) {
        let reqs: Vec<Request> = (0..depth)
            .map(|i| Request::Put {
                key: format!("gc-{client_id:03}-{:012}", seq + i as u64).into_bytes(),
                value: value.clone(),
            })
            .collect();
        seq += depth as u64;
        let start = Instant::now();
        match client.pipeline(&reqs) {
            Ok(resps) => {
                let ok = resps.iter().filter(|r| matches!(r, Response::Ok)).count() as u64;
                acked.fetch_add(ok, Ordering::Relaxed);
                latencies.push(start.elapsed().as_micros() as u64);
            }
            Err(_) => break,
        }
    }
    latencies
}

/// Runs `clients` pipelined writers for `seconds`; returns
/// (ops/s, p50 round latency µs).
fn scaling_point(addr: &str, clients: usize, depth: usize, seconds: f64) -> (f64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            let stop = stop.clone();
            let acked = acked.clone();
            std::thread::spawn(move || hammer(&addr, c, depth, &stop, &acked))
        })
        .collect();
    std::thread::sleep(Duration::from_secs_f64(seconds));
    stop.store(true, Ordering::Relaxed);
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    (
        acked.load(Ordering::Relaxed) as f64 / elapsed,
        p50(&mut latencies),
    )
}

fn main() {
    let args = parse_args();

    if let Some(addr) = &args.server {
        // Smoke mode against an external server: one line for scripts.
        let (ops_per_sec, p50_us) = scaling_point(addr, args.clients, args.depth, args.seconds);
        println!(
            "group-commit smoke: clients={} depth={} ops_per_sec={} round_p50_us={}",
            args.clients, args.depth, ops_per_sec as u64, p50_us
        );
        assert!(ops_per_sec > 0.0, "no durable writes acked");
        return;
    }

    // In-process server on a real file device: fsyncs hit the kernel.
    let dir = std::env::temp_dir().join(format!("blsm-group-commit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    // Flush whatever the cleanup queued in the filesystem journal:
    // leftover delete transactions make every fsync in the first phase
    // stall for milliseconds, poisoning the baseline.
    let _ = std::process::Command::new("sync").status();

    // 256 MiB C0 budget (same rationale as BENCH_7): the full run
    // writes ~65 MB, so no snow-shovel merge starts mid-phase — on this
    // one-core box a background merge competing for the CPU multiplies
    // solo-client ack latency ~30x, and this benchmark prices the
    // commit pipeline, not merge interference.
    let config = BLsmConfig {
        mem_budget: 256 << 20,
        durability: Durability::Sync,
        ..Default::default()
    };
    let commit_deadline_us = config.commit_deadline.as_micros() as u64;
    let data: SharedDevice = Arc::new(FileDevice::open(&dir.join("data")).unwrap());
    let wal: SharedDevice = Arc::new(FileDevice::open(&dir.join("wal")).unwrap());
    let tree = BLsmTree::open(data, wal, 4096, config, Arc::new(AppendOperator)).expect("open");
    let db = ThreadedBLsm::start(tree, 1 << 20).expect("start merge thread");
    let server =
        Server::start(db, "127.0.0.1:0", ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    // Phases 2+3 run as rotations — baseline, 1, 8, 32, repeated
    // ROTATIONS times, medians reported — because single-pass numbers
    // on this box drift up to 2x with external CPU throttling (same
    // methodology as BENCH_7). The baseline is a solo client at depth
    // 1: the committer syncs a lone writer's group immediately, so this
    // is the fsync-per-write regime the paper's §5.1 complains about.
    const ROTATIONS: usize = 3;
    let counts = [1usize, 8, 32];
    let mut raw_samples = Vec::new();
    let mut baseline_samples = Vec::new();
    let mut samples: Vec<Vec<(f64, u64)>> = vec![Vec::new(); counts.len()];
    for _ in 0..ROTATIONS {
        // Probe raw fsync inside each rotation, not once at startup:
        // device fsync cost is bimodal on this box (journal pressure
        // turns a 100µs fsync into 3.5ms for a while), and the latency
        // comparison is only meaningful against the price the device
        // charged *during* the measured phases.
        raw_samples.push(raw_fsync_micros(&dir));
        baseline_samples.push(scaling_point(&addr, 1, 1, args.seconds));
        for (i, &n) in counts.iter().enumerate() {
            samples[i].push(scaling_point(&addr, n, args.depth, args.seconds));
        }
    }
    let raw_fsync_us = p50(&mut raw_samples);
    let median = |runs: &mut Vec<(f64, u64)>| {
        runs.sort_by(|a, b| a.0.total_cmp(&b.0));
        runs[runs.len() / 2]
    };
    let (baseline_ops, baseline_p50_us) = median(&mut baseline_samples);
    let points: Vec<(usize, f64, u64)> = counts
        .iter()
        .zip(samples.iter_mut())
        .map(|(&n, runs)| {
            let (ops, p) = median(runs);
            (n, ops, p)
        })
        .collect();

    let trees = server.shutdown().expect("graceful shutdown");
    let stats = trees[0].stats();
    let _ = std::fs::remove_dir_all(&dir);

    let ops = |i: usize| points[i].1;
    let meets_5x = ops(2) >= 5.0 * baseline_ops;
    let monotonic = ops(0) <= ops(1) && ops(1) <= ops(2);
    let latency_within_deadline =
        baseline_p50_us.saturating_sub(raw_fsync_us) <= commit_deadline_us;
    for (cond, msg) in [
        (
            meets_5x,
            "32 pipelined clients did not reach 5x the per-write-fsync baseline",
        ),
        (
            monotonic,
            "throughput is not monotonic over 1 -> 8 -> 32 clients",
        ),
        (
            latency_within_deadline,
            "solo-client ack latency exceeds raw fsync + commit deadline",
        ),
    ] {
        if !cond {
            eprintln!("WARN: {msg} (timing advisory on shared hardware, not fatal)");
        }
    }

    let mean_group = if stats.commit_groups == 0 {
        0.0
    } else {
        stats.commit_group_writes as f64 / stats.commit_groups as f64
    };
    print_table(
        "group-commit durable write scaling (Durability::Sync, FileDevice)",
        &["clients", "depth", "ops/s", "round p50 µs"],
        &points
            .iter()
            .map(|&(n, ops, p)| {
                vec![
                    n.to_string(),
                    args.depth.to_string(),
                    fmt_f(ops),
                    p.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nraw fsync p50: {raw_fsync_us} µs  commit deadline: {commit_deadline_us} µs");
    println!(
        "baseline (1 client, depth 1): {} ops/s, p50 {} µs",
        fmt_f(baseline_ops),
        baseline_p50_us
    );
    println!(
        "commit groups: {} over {} writes (mean {:.1} writes/fsync)",
        stats.commit_groups, stats.commit_group_writes, mean_group
    );
    println!("meets_5x={meets_5x} monotonic={monotonic} latency_within_deadline={latency_within_deadline}");

    if let Some(path) = parse_json_path() {
        let report = Json::obj(vec![
            (
                "bench",
                Json::Str("group_commit_bench (BENCH_8: durable write scaling)".into()),
            ),
            (
                "metric",
                Json::Str(format!(
                    "acked durable puts/s over TCP against a Durability::Sync server on a \
                     FileDevice temp dir; {}s per phase, pipeline depth {}, medians of 3 \
                     rotations within one invocation; baseline is one client at depth 1 \
                     (solo commit groups sync immediately = per-write fsync)",
                    args.seconds, args.depth
                )),
            ),
            ("raw_fsync_us_p50", Json::Int(raw_fsync_us)),
            ("commit_deadline_us", Json::Int(commit_deadline_us)),
            (
                "baseline_per_write_fsync",
                Json::obj(vec![
                    ("ops_per_sec", Json::Num(baseline_ops)),
                    ("p50_us", Json::Int(baseline_p50_us)),
                ]),
            ),
            (
                "pipelined_scaling",
                Json::Arr(
                    points
                        .iter()
                        .map(|&(n, ops, p)| {
                            Json::obj(vec![
                                ("clients", Json::Int(n as u64)),
                                ("depth", Json::Int(args.depth as u64)),
                                ("ops_per_sec", Json::Num(ops)),
                                ("round_p50_us", Json::Int(p)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "commit_groups",
                Json::obj(vec![
                    ("groups", Json::Int(stats.commit_groups)),
                    ("writes", Json::Int(stats.commit_group_writes)),
                    ("mean_writes_per_fsync", Json::Num(mean_group)),
                    ("fsync_micros_total", Json::Int(stats.fsync_micros_total)),
                ]),
            ),
            ("meets_5x", Json::Int(u64::from(meets_5x))),
            ("monotonic_1_8_32", Json::Int(u64::from(monotonic))),
            (
                "solo_latency_within_commit_deadline",
                Json::Int(u64::from(latency_within_deadline)),
            ),
        ]);
        write_json_report(&path, &report);
    }
}
