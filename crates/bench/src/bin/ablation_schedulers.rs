//! Scheduler ablation (§3.2, §4.1, §4.3): naive merge-when-full vs the
//! gear scheduler vs spring-and-gear, under a sustained uniform insert
//! load.
//!
//! This is the design-choice experiment behind the paper's headline
//! claim: level scheduling "bounds write latency without impacting
//! throughput or allowing merges to block writes for extended periods of
//! time". Expect the naive scheduler to show worst-case latencies orders
//! of magnitude above its mean (unplanned downtime), and the paced
//! schedulers to keep the maximum stall within a small multiple of the
//! mean while matching (or beating) naive throughput.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use blsm::SchedulerKind;
use blsm_bench::setup::{make_blsm_with, Scale};
use blsm_bench::{fmt_f, print_table};
use blsm_storage::DiskModel;
use blsm_ycsb::{LoadOrder, Runner};

fn main() {
    let scale = Scale::paper_scaled();
    let runner = Runner::default();
    let mut rows = Vec::new();
    let mut results = Vec::new();

    for (kind, snowshovel) in [
        (SchedulerKind::Naive, true),
        (SchedulerKind::Gear, false),
        (SchedulerKind::SpringGear, true),
    ] {
        let mut engine = make_blsm_with(DiskModel::hdd(), &scale, kind, snowshovel);
        let report = runner
            .load(
                &mut engine,
                scale.records,
                scale.value_size,
                false,
                LoadOrder::Random,
            )
            .unwrap();
        let name = match kind {
            SchedulerKind::Naive => "naive (merge when full)",
            SchedulerKind::Gear => "gear",
            SchedulerKind::SpringGear => "spring and gear",
        };
        let stalls = engine.tree.stats().forced_stalls;
        rows.push(vec![
            name.to_string(),
            fmt_f(report.ops_per_sec),
            fmt_f(report.latency.mean() / 1e3),
            fmt_f(report.latency.percentile(0.999) as f64 / 1e3),
            fmt_f(report.latency.max() as f64 / 1e3),
            stalls.to_string(),
        ]);
        results.push((kind, report));
        let _ = engine;
    }

    print_table(
        "Scheduler ablation: 50k uniform random inserts (HDD model)",
        &[
            "scheduler",
            "ops/s",
            "mean lat (ms)",
            "p99.9 (ms)",
            "max lat (ms)",
            "hard stalls",
        ],
        &rows,
    );

    let naive = &results[0].1;
    let spring = &results[2].1;
    let naive_spike = naive.latency.max() as f64 / naive.latency.mean().max(1e-9);
    let spring_spike = spring.latency.max() as f64 / spring.latency.mean().max(1e-9);
    println!(
        "\nmax/mean latency ratio: naive {}x vs spring-and-gear {}x",
        fmt_f(naive_spike),
        fmt_f(spring_spike)
    );
    assert!(
        naive.latency.max() > 10 * spring.latency.max(),
        "naive worst-case stall must dwarf spring-and-gear's: {} vs {}",
        naive.latency.max(),
        spring.latency.max()
    );
    // The naive scheduler gets a modest throughput edge here because it
    // runs C0 pegged at 100% occupancy (maximum run length), while spring
    // and gear holds occupancy at the high water mark to keep headroom
    // for load spikes; the paper's concurrent implementation hides merge
    // time behind application writes, making the two equal. Pacing must
    // still cost well under a third of throughput.
    assert!(
        spring.ops_per_sec > 0.7 * naive.ops_per_sec,
        "pacing sacrificed too much throughput: {} vs {}",
        spring.ops_per_sec,
        naive.ops_per_sec
    );
}
