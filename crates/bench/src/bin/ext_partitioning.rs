//! Extension experiment: key-range partitioning (§2.3.2, §3.3, §4.2.2 —
//! the paper's future work, implemented in `blsm::PartitionedBLsm`).
//!
//! Two claims to validate:
//!
//! 1. §3.3: "one of the three on-disk components only exists to support
//!    the ongoing merge. In a system that made use of partitioning, only a
//!    small fraction of the tree would be subject to merging at any given
//!    time. The remainder of the tree would require two seeks per scan."
//!    → short scans under a sustained write load should cost fewer seeks
//!    on the partitioned store.
//! 2. §2.3.2: skewed writes should confine merge activity (and its write
//!    amplification) to the hot partitions.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use bytes::Bytes;

use blsm::{AppendOperator, BLsmConfig, PartitionedBLsm};
use blsm_bench::setup::{make_blsm, Scale};
use blsm_bench::{fmt_f, print_table};
use blsm_storage::{DiskModel, SharedDevice, SimDevice};
use blsm_ycsb::{format_key, make_value};

const PARTITIONS: usize = 8;

fn main() {
    let scale = Scale::paper_scaled().with_records(20_000);
    let records = scale.records;

    // --- Unpartitioned -------------------------------------------------
    let mono = make_blsm(DiskModel::hdd(), &scale);
    let mono_dev = mono.data.clone();
    let mono_seeks = scan_seeks_under_write_load(
        records,
        scale.value_size,
        |cmd| match cmd {
            Cmd::Put(id, v) => {
                mono.tree.put(format_key(id), v).unwrap();
                0
            }
            Cmd::Scan(from, n) => mono.tree.scan(from, n).unwrap().len(),
        },
        std::slice::from_ref(&mono_dev),
    );

    // --- Partitioned ----------------------------------------------------
    let devices: Vec<(SharedDevice, SharedDevice)> = (0..PARTITIONS)
        .map(|_| {
            (
                Arc::new(SimDevice::new(DiskModel::hdd())) as SharedDevice,
                Arc::new(SimDevice::new(DiskModel::hdd())) as SharedDevice,
            )
        })
        .collect();
    let data_devs: Vec<SharedDevice> = devices.iter().map(|(d, _)| d.clone()).collect();
    let bounds: Vec<Bytes> = (1..PARTITIONS)
        .map(|p| format_key(records * p as u64 / PARTITIONS as u64))
        .collect();
    let mut parted = PartitionedBLsm::create(
        bounds,
        |i| devices[i].clone(),
        scale.blsm_cache_pages / PARTITIONS,
        BLsmConfig {
            mem_budget: scale.blsm_c0 / PARTITIONS,
            ..Default::default()
        },
        Arc::new(AppendOperator),
    )
    .unwrap();
    let parted_seeks = scan_seeks_under_write_load(
        records,
        scale.value_size,
        |cmd| match cmd {
            Cmd::Put(id, v) => {
                parted.put(format_key(id), v).unwrap();
                0
            }
            Cmd::Scan(from, n) => parted.scan(from, n).unwrap().len(),
        },
        &data_devs,
    );

    print_table(
        "Partitioning extension: short scans (4 rows) under sustained uniform writes",
        &["layout", "seeks per short scan"],
        &[
            vec!["unpartitioned (3-component)".into(), fmt_f(mono_seeks)],
            vec![format!("{PARTITIONS}-way partitioned"), fmt_f(parted_seeks)],
        ],
    );
    println!(
        "\n§3.3 predicts ~3 seeks unpartitioned and ~2 with partitioning; measured \
         {} vs {}.",
        fmt_f(mono_seeks),
        fmt_f(parted_seeks)
    );
    assert!(
        parted_seeks < mono_seeks,
        "partitioning must reduce short-scan seeks"
    );

    // --- Skew: merge activity stays on the hot partition ---------------
    let before: Vec<u64> = (0..PARTITIONS)
        .map(|p| parted.partition(p).stats().merges01)
        .collect();
    let hot_lo = records / PARTITIONS as u64; // partition 1's range
    for round in 0..60_000u64 {
        let id = hot_lo + (round % (records / PARTITIONS as u64 / 2));
        parted
            .put(format_key(id), make_value(id, scale.value_size))
            .unwrap();
    }
    let mut rows = Vec::new();
    let mut cold_merges = 0u64;
    for (p, before_merges) in before.iter().enumerate() {
        let merges = parted.partition(p).stats().merges01 - before_merges;
        if p != 1 {
            cold_merges += merges;
        }
        rows.push(vec![
            format!("partition {p}{}", if p == 1 { " (hot)" } else { "" }),
            merges.to_string(),
        ]);
    }
    print_table(
        "Partitioning extension: merges per partition after a hot-range write burst",
        &["partition", "C0:C1 merges during burst"],
        &rows,
    );
    println!(
        "\n§2.3.2: merge activity concentrates on frequently updated key ranges \
         (cold partitions merged {cold_merges} times)."
    );
    assert_eq!(cold_merges, 0, "cold partitions must not merge");
}

/// One engine command (a single closure sidesteps double-borrow issues).
enum Cmd<'a> {
    Put(u64, Bytes),
    Scan(&'a [u8], usize),
}

/// Interleaves a uniform write load with short scans, returning mean data
/// seeks per scan.
fn scan_seeks_under_write_load(
    records: u64,
    value_size: usize,
    mut exec: impl FnMut(Cmd<'_>) -> usize,
    data_devices: &[SharedDevice],
) -> f64 {
    let total_seeks =
        |devs: &[SharedDevice]| -> u64 { devs.iter().map(|d| d.stats().seeks()).sum() };
    let mut rng = 0x9e3779b97f4a7c15u64;
    // Load.
    for _ in 0..records {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        let id = (rng >> 33) % records;
        exec(Cmd::Put(id, make_value(id, value_size)));
    }
    // Sustained writes with interleaved measured scans.
    let mut scan_seeks = 0u64;
    let mut scans = 0u64;
    for i in 0..20_000u64 {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        let id = (rng >> 33) % records;
        exec(Cmd::Put(id, make_value(id ^ 1, value_size)));
        if i % 50 == 0 {
            let from = format_key((rng >> 13) % records);
            let before = total_seeks(data_devices);
            let n = exec(Cmd::Scan(&from, 4));
            assert!(n > 0 || from.as_ref() > format_key(records - 5).as_ref());
            scan_seeks += total_seeks(data_devices) - before;
            scans += 1;
        }
    }
    scan_seeks as f64 / scans as f64
}
