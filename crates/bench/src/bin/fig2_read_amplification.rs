//! Figure 2: read amplification (seeks and bandwidth) vs data size, for
//! fractional cascading at R = 2..10 versus a three-level tree with Bloom
//! filters.
//!
//! The curves are the paper's analytical model (`bench::models::Fig2Model`);
//! the Bloom line is additionally *validated against the real engine* by
//! loading a three-level bLSM tree and measuring seeks per uncached probe.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use blsm_bench::models::Fig2Model;
use blsm_bench::{fmt_f, print_table, setup::Scale};
use blsm_storage::DiskModel;
use blsm_ycsb::{format_key, make_value};

fn main() {
    let ratios = [2.0f64, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0];
    let rs = [2u32, 3, 4, 5, 6, 7, 8, 9, 10];

    let mut rows = Vec::new();
    for &ratio in &ratios {
        let mut row = vec![fmt_f(ratio), fmt_f(Fig2Model::bloom_seeks(ratio))];
        for &r in &rs {
            row.push(fmt_f(Fig2Model::cascade_seeks(f64::from(r), ratio)));
        }
        rows.push(row);
    }
    let mut headers = vec!["data/RAM", "blooms(ours)"];
    let r_labels: Vec<String> = rs.iter().map(|r| format!("R={r}")).collect();
    headers.extend(r_labels.iter().map(String::as_str));
    print_table(
        "Figure 2 (left): read amplification in SEEKS",
        &headers,
        &rows,
    );

    let mut rows = Vec::new();
    for &ratio in &ratios {
        let mut row = vec![fmt_f(ratio), fmt_f(Fig2Model::bloom_bandwidth(ratio))];
        for &r in &rs {
            row.push(fmt_f(Fig2Model::cascade_bandwidth(f64::from(r), ratio)));
        }
        rows.push(row);
    }
    print_table(
        "Figure 2 (right): read amplification in BANDWIDTH (pages)",
        &headers,
        &rows,
    );

    // Validate the Bloom line against the actual engine: build a tree with
    // all three on-disk components populated and measure seeks per probe.
    let scale = Scale::paper_scaled().with_records(20_000);
    let engine = blsm_bench::setup::make_blsm(DiskModel::ram(), &scale);
    for id in 0..scale.records {
        engine
            .tree
            .put(format_key(id), make_value(id, scale.value_size))
            .unwrap();
    }
    engine.tree.checkpoint().unwrap();
    engine.tree.pool().drop_clean();
    let data = Arc::clone(&engine.data);
    let before = data.stats();
    let probes = 2_000u64;
    let mut rng = 12345u64;
    for _ in 0..probes {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let id = (rng >> 33) % scale.records;
        engine.tree.get(&format_key(id)).unwrap().expect("present");
        engine.tree.pool().drop_clean(); // keep probes uncached
    }
    let d = data.stats().delta_since(&before);
    let seeks_per_probe = d.seeks() as f64 / probes as f64;
    println!(
        "\nEngine validation: measured {} seeks/uncached-probe on a {}-component tree \
         (paper model: <= 1.03)",
        fmt_f(seeks_per_probe),
        engine.tree.component_count(),
    );
    assert!(
        seeks_per_probe < 1.25,
        "bloom read amplification out of band: {seeks_per_probe}"
    );
}
