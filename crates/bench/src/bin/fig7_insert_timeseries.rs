//! Figure 7: random-order insert timeseries — bLSM (left) vs the
//! LevelDB-like baseline (right).
//!
//! The paper loads the same data into both systems and plots throughput
//! and latency over time: "bLSM's throughput is more predictable and it
//! finishes earlier." bLSM's spring-and-gear scheduler keeps per-write
//! merge work bounded; LevelDB's partition scheduler falls behind on
//! uniform inserts, `L0` fills, and writes block for whole compactions —
//! the multi-second latency spikes of the right-hand plot.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use blsm_bench::setup::{make_blsm, make_leveldb, Scale};
use blsm_bench::{fmt_f, print_table};
use blsm_storage::DiskModel;
use blsm_ycsb::{LoadOrder, RunReport, Runner};

fn main() {
    let scale = Scale::paper_scaled(); // 50k records of 1000 B = "50 GB"/1000
    let runner = Runner { bucket_sec: 1.0 };

    println!(
        "Loading {} records of {} B in random order (blind writes), HDD model.",
        scale.records, scale.value_size
    );

    let mut blsm = make_blsm(DiskModel::hdd(), &scale);
    let blsm_report = runner
        .load(
            &mut blsm,
            scale.records,
            scale.value_size,
            false,
            LoadOrder::Random,
        )
        .unwrap();

    let mut ldb = make_leveldb(DiskModel::hdd(), &scale);
    let ldb_report = runner
        .load(
            &mut ldb,
            scale.records,
            scale.value_size,
            false,
            LoadOrder::Random,
        )
        .unwrap();

    for (name, report) in [("bLSM", &blsm_report), ("LevelDB-like", &ldb_report)] {
        let rows: Vec<Vec<String>> = report
            .timeseries
            .iter()
            .map(|p| {
                vec![
                    format!("{:.0}", p.t_sec),
                    fmt_f(p.ops_per_sec),
                    fmt_f(p.mean_ms),
                    fmt_f(p.max_ms),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 7 ({name}): insert timeseries"),
            &["t (s)", "ops/s", "mean lat (ms)", "max lat (ms)"],
            &rows,
        );
    }

    let summary = |name: &str, r: &RunReport| {
        vec![
            name.to_string(),
            fmt_f(r.elapsed_sec),
            fmt_f(r.ops_per_sec),
            fmt_f(r.latency.percentile(0.99) as f64 / 1e3),
            fmt_f(r.latency.max() as f64 / 1e3),
            fmt_f(variability(r)),
        ]
    };
    print_table(
        "Figure 7 summary",
        &[
            "system",
            "load time (s)",
            "ops/s",
            "p99 lat (ms)",
            "max lat (ms)",
            "throughput cv",
        ],
        &[
            summary("bLSM", &blsm_report),
            summary("LevelDB-like", &ldb_report),
        ],
    );
    println!(
        "\nPaper shape: bLSM finishes earlier with steady throughput; LevelDB shows \
         pauses (stops: {} slowdowns: {}).",
        ldb_stats(&ldb).0,
        ldb_stats(&ldb).1
    );
    assert!(
        blsm_report.elapsed_sec < ldb_report.elapsed_sec,
        "bLSM must finish the load first"
    );
    assert!(
        blsm_report.latency.max() < ldb_report.latency.max(),
        "bLSM's worst write stall must be smaller"
    );
}

/// Coefficient of variation of per-second throughput (steadiness metric).
fn variability(r: &RunReport) -> f64 {
    let xs: Vec<f64> = r.timeseries.iter().map(|p| p.ops_per_sec).collect();
    if xs.len() < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    var.sqrt() / mean.max(1e-9)
}

fn ldb_stats(e: &blsm_bench::LevelDbEngine) -> (u64, u64) {
    (e.inner.stats().write_stops, e.inner.stats().write_slowdowns)
}
