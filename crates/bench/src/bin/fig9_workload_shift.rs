//! Figure 9: bLSM shifting from 100% uniform blind writes to a Zipfian
//! 80% read / 20% blind-write mix (the paper runs this on its SSDs).
//!
//! Expected shape: after the switch, "performance ramps up as internal
//! index nodes are brought into RAM ... then settles into
//! high-throughput writes with occasional drops due to merge hiccups",
//! with stable low latencies — the behaviour that makes bLSM deployable
//! for serving workloads right after a bulk-ingest phase.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use blsm_bench::setup::{make_blsm, Scale};
use blsm_bench::{fmt_f, print_table};
use blsm_storage::DiskModel;
use blsm_ycsb::{OpMix, Runner, Workload};

fn main() {
    let scale = Scale::paper_scaled();
    let runner = Runner { bucket_sec: 0.25 };
    let mut engine = make_blsm(DiskModel::ssd(), &scale);

    // Phase 1: saturate with uniform blind writes "for an extended period
    // of time" (the paper's t < 0 region).
    let mut load = Workload::uniform(scale.records, OpMix::updates_only(), 0x91);
    load.value_size = scale.value_size;
    runner.run(&mut engine, &mut load, scale.records).unwrap();

    // Phase 2 (t = 0): switch to 80/20 Zipfian read/blind-write.
    let mix = OpMix {
        read: 0.8,
        update: 0.2,
        ..Default::default()
    };
    let mut serve = Workload::zipfian(scale.records, mix, 0x92);
    serve.value_size = scale.value_size;
    let report = runner.run(&mut engine, &mut serve, 120_000).unwrap();

    let rows: Vec<Vec<String>> = report
        .timeseries
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.t_sec),
                fmt_f(p.ops_per_sec),
                fmt_f(p.mean_ms),
                fmt_f(p.max_ms),
            ]
        })
        .collect();
    print_table(
        "Figure 9: bLSM after switching to 80/20 Zipfian (t=0 at switch, SSD model)",
        &["t (s)", "ops/s", "mean lat (ms)", "max lat (ms)"],
        &rows,
    );

    // Shape checks: throughput ramps (late buckets beat the first bucket)
    // and then stays stable; latency stays in the low-millisecond range
    // (the paper reports ~2 ms with 128 unthrottled workers).
    let ts = &report.timeseries;
    if ts.len() >= 6 {
        let first = ts[0].ops_per_sec;
        let late: f64 = ts[ts.len() - 3..]
            .iter()
            .map(|p| p.ops_per_sec)
            .sum::<f64>()
            / 3.0;
        println!(
            "\nramp: first-bucket {} ops/s -> late {} ops/s ({}x); overall mean latency {} ms, p99 {} ms",
            fmt_f(first),
            fmt_f(late),
            fmt_f(late / first.max(1.0)),
            fmt_f(report.latency.mean() / 1e3),
            fmt_f(report.latency.percentile(0.99) as f64 / 1e3),
        );
        assert!(late >= first, "cache warm-up must raise throughput");
    }
    assert!(
        report.latency.percentile(0.99) < 50_000,
        "p99 latency must stay in the tens of milliseconds"
    );
}
