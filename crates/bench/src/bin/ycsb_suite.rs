//! The six standard YCSB core workloads (A–F) across all three engines.
//!
//! §5.1 uses YCSB as the load generator; the paper's own experiments
//! correspond to slices of these workloads (Figure 8 ≈ A/B/C sweeps,
//! Figure 9's serving phase ≈ B, §5.6 ≈ E). Running the full suite shows
//! where each engine's trade-offs land on the industry-standard mix:
//! bLSM should match or beat the B-Tree everywhere except the scan-heavy
//! workload E (§5.6's caveat), and should beat LevelDB everywhere except
//! possibly pure scans.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use blsm::{AppendOperator, BLsmConfig, BLsmTree, Durability};
use blsm_bench::setup::{make_blsm, make_btree, make_leveldb, Scale};
use blsm_bench::{
    fmt_f, make_sharded_mem, parse_json_path, parse_shards, parse_threads, print_table,
    read_scaling_rows, sharded_write_scaling_rows, write_json_report, write_scaling_rows, Json,
};
use blsm_server::RemoteKv;
use blsm_storage::{DiskModel, MemDevice, SharedDevice};
use blsm_ycsb::{KvEngine, LoadOrder, Runner, Workload};

/// Integrity gate: numbers measured against a damaged store are
/// garbage, so every engine is scrubbed after loading and before the
/// measured phase. Any finding prints a diagnostic and exits nonzero
/// so CI (and scripted sweeps) cannot silently publish tainted results.
fn scrub_gate(engine: &mut dyn KvEngine, context: &str) {
    let errors = match engine.scrub() {
        Ok(errors) => errors,
        Err(e) => {
            eprintln!("ycsb_suite: pre-run scrub of {context} failed to run: {e}");
            std::process::exit(2);
        }
    };
    if !errors.is_empty() {
        eprintln!(
            "ycsb_suite: pre-run scrub of {context} found {} problem(s); refusing to benchmark a damaged store:",
            errors.len()
        );
        for e in &errors {
            eprintln!("ycsb_suite:   {e}");
        }
        std::process::exit(2);
    }
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Network mode: drive a live `blsm-server` over TCP through the client
/// library, reporting the same histograms as the in-process path. The
/// engine's clock is the wall clock, so latencies include the wire.
fn run_network_suite(args: &[String]) {
    let addr = flag_value(args, "--server").expect("--server needs ADDR");
    let records: u64 = flag_value(args, "--records")
        .map_or(2_000, |v| v.parse().expect("--records: not a number"));
    let ops: u64 =
        flag_value(args, "--ops").map_or(2_000, |v| v.parse().expect("--ops: not a number"));
    let letters: Vec<char> = flag_value(args, "--workloads")
        .unwrap_or_else(|| "ABCDEF".into())
        .to_ascii_uppercase()
        .chars()
        .collect();

    let runner = Runner::default();
    let mut engine = RemoteKv::connect(addr.clone()).expect("connect to blsm-server");
    println!("loading {records} records into {addr} ...");
    runner
        .load(&mut engine, records, 100, false, LoadOrder::Random)
        .unwrap();
    scrub_gate(&mut engine, &format!("server {addr}"));

    let mut rows: Vec<Vec<String>> = Vec::new();
    for &letter in &letters {
        let mut wl = Workload::ycsb(letter, records, 0x5eed_u64 ^ letter as u64);
        wl.value_size = 100;
        let report = runner.run(&mut engine, &mut wl, ops).unwrap();
        rows.push(vec![
            letter.to_string(),
            fmt_f(report.ops_per_sec),
            report.latency.summary(),
        ]);
    }
    print_table(
        &format!("YCSB over TCP against {addr} (wall-clock latency)"),
        &["workload", "ops/s", "latency"],
        &rows,
    );
    let stats = engine.client().stats().expect("STATS");
    println!(
        "server: backpressure={:?} admitted={} delayed={} rejected={} merges01={}",
        stats.backpressure, stats.admitted, stats.delayed, stats.rejected, stats.merges01
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--server") {
        run_network_suite(&args);
        return;
    }
    let scale = Scale::paper_scaled().with_records(20_000);
    let runner = Runner::default();
    let ops = 5_000u64;
    let letters = ['A', 'B', 'C', 'D', 'E', 'F'];
    let json_path = parse_json_path();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<Vec<f64>> = Vec::new();
    for &letter in &letters {
        let mut row = vec![format!(
            "{letter} ({})",
            match letter {
                'A' => "50/50 read/update, zipf",
                'B' => "95/5 read/update, zipf",
                'C' => "read-only, zipf",
                'D' => "95/5 read/insert, latest",
                'E' => "95/5 scan/insert, zipf",
                _ => "50/50 read/RMW, zipf",
            }
        )];
        let mut nums = Vec::new();
        for which in ["btree", "leveldb", "blsm"] {
            let mut engine: Box<dyn KvEngine> = match which {
                "blsm" => Box::new(make_blsm(DiskModel::ssd(), &scale)),
                "btree" => Box::new(make_btree(DiskModel::ssd(), &scale)),
                _ => Box::new(make_leveldb(DiskModel::ssd(), &scale)),
            };
            runner
                .load(
                    engine.as_mut(),
                    scale.records,
                    scale.value_size,
                    false,
                    LoadOrder::Random,
                )
                .unwrap();
            engine.settle().unwrap();
            scrub_gate(engine.as_mut(), which);
            let mut wl = Workload::ycsb(letter, scale.records, 0x5eed_u64 ^ letter as u64);
            wl.value_size = scale.value_size;
            let report = runner.run(engine.as_mut(), &mut wl, ops).unwrap();
            row.push(fmt_f(report.ops_per_sec));
            nums.push(report.ops_per_sec);
        }
        rows.push(row);
        results.push(nums);
    }

    print_table(
        "YCSB core workloads A-F, SSD model, throughput (ops/s)",
        &["workload", "B-Tree", "LevelDB-like", "bLSM"],
        &rows,
    );
    println!(
        "\nExpected shape: bLSM >= B-Tree on A-D and F; the B-Tree may win the \
         scan-heavy E (the paper's §5.6 caveat)."
    );
    // A, B, D, F: bLSM at least competitive with the B-Tree (>= 80%).
    for (i, letter) in letters.iter().enumerate() {
        if *letter == 'E' || *letter == 'C' {
            continue;
        }
        let (btree, blsm) = (results[i][0], results[i][2]);
        assert!(
            blsm >= 0.8 * btree,
            "workload {letter}: bLSM {blsm} far below B-Tree {btree}"
        );
    }

    // Concurrent serving (wall clock): N reader threads race a writer
    // thread that keeps C0 churning and catalog swaps happening — the
    // YCSB-B shape (read-mostly with concurrent updates). Pass
    // `--threads 1,2,4,8` to choose the thread counts.
    let threads = parse_threads(&[1, 2, 4]);
    let mut engine = make_blsm(DiskModel::ssd(), &scale);
    runner
        .load(
            &mut engine,
            scale.records,
            scale.value_size,
            false,
            LoadOrder::Random,
        )
        .unwrap();
    engine.settle().unwrap();
    scrub_gate(&mut engine, "blsm (concurrent serving)");
    let points = read_scaling_rows(
        engine.tree,
        scale.records,
        scale.value_size,
        ops,
        &threads,
        true,
    );
    let scaling_rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                fmt_f(p.ops_per_sec),
                p.writes.to_string(),
            ]
        })
        .collect();
    print_table(
        "YCSB extension: bLSM concurrent reads vs a live writer, wall clock",
        &["reader threads", "reads/s", "writes landed meanwhile"],
        &scaling_rows,
    );

    // Concurrent write scaling (wall clock): N threads on the 50/50
    // put/get mix — YCSB-A's shape with every thread both writing on the
    // `&self` write path and reading through its own `ReadView` clone.
    // Degraded durability and a generous `C0` budget isolate path cost
    // from log serialization and merge stalls (DESIGN.md §15.6).
    let write_ops = 40_000u64;
    let wpoints = write_scaling_rows(
        || {
            let data: SharedDevice = Arc::new(MemDevice::new());
            let wal: SharedDevice = Arc::new(MemDevice::new());
            BLsmTree::open(
                data,
                wal,
                2048,
                BLsmConfig {
                    mem_budget: 256 << 20,
                    durability: Durability::None,
                    wal_capacity: 64 << 20,
                    ..Default::default()
                },
                Arc::new(AppendOperator),
            )
            .unwrap()
        },
        100,
        write_ops,
        &threads,
        2,
    );
    let wrows: Vec<Vec<String>> = wpoints
        .iter()
        .map(|p| {
            vec![
                p.threads.to_string(),
                fmt_f(p.puts_per_sec),
                fmt_f(p.gets_per_sec),
                fmt_f((p.puts_per_sec + p.gets_per_sec) / p.threads as f64),
            ]
        })
        .collect();
    print_table(
        "YCSB extension: bLSM concurrent 50/50 put/get, wall clock (&self write path)",
        &["threads", "puts/s", "gets/s", "ops/s per thread"],
        &wrows,
    );

    // Sharded serving tier (wall clock): 4 threads on the 50/50 mix
    // against a `ShardedBLsm` at each `--shards` count — every op pays
    // the key-range router (DESIGN.md §16) before reaching its shard's
    // `&self` write path or read view. One hardware thread: this prices
    // routing, it cannot show parallel speedup (see BENCH_7.json).
    let shard_counts = parse_shards(&[1, 2, 4]);
    let spoints = sharded_write_scaling_rows(make_sharded_mem, 100, write_ops, &shard_counts, 4, 2);
    let srows: Vec<Vec<String>> = spoints
        .iter()
        .map(|p| {
            vec![
                p.shards.to_string(),
                p.threads.to_string(),
                fmt_f(p.puts_per_sec),
                fmt_f(p.gets_per_sec),
            ]
        })
        .collect();
    print_table(
        "YCSB extension: sharded serving tier, concurrent 50/50 put/get, wall clock",
        &["shards", "threads", "puts/s", "gets/s"],
        &srows,
    );

    if let Some(path) = json_path {
        let sharded_scaling = spoints
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("shards", Json::Int(p.shards as u64)),
                    ("threads", Json::Int(p.threads as u64)),
                    ("puts_per_sec", Json::Num(p.puts_per_sec)),
                    ("gets_per_sec", Json::Num(p.gets_per_sec)),
                ])
            })
            .collect();
        let write_scaling = wpoints
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("threads", Json::Int(p.threads as u64)),
                    ("puts_per_sec", Json::Num(p.puts_per_sec)),
                    ("gets_per_sec", Json::Num(p.gets_per_sec)),
                ])
            })
            .collect();
        let workloads = letters
            .iter()
            .zip(&results)
            .map(|(letter, nums)| {
                Json::obj(vec![
                    ("workload", Json::Str(letter.to_string())),
                    ("btree_ops_per_sec", Json::Num(nums[0])),
                    ("leveldb_ops_per_sec", Json::Num(nums[1])),
                    ("blsm_ops_per_sec", Json::Num(nums[2])),
                ])
            })
            .collect();
        let scaling = points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("threads", Json::Int(p.threads as u64)),
                    ("reads_per_sec", Json::Num(p.ops_per_sec)),
                    ("concurrent_writes", Json::Int(p.writes)),
                ])
            })
            .collect();
        let report = Json::obj(vec![
            ("bench", Json::Str("ycsb_suite".into())),
            ("records", Json::Int(scale.records)),
            ("ops", Json::Int(ops)),
            ("workloads", Json::Arr(workloads)),
            ("concurrent_serving", Json::Arr(scaling)),
            ("concurrent_write_scaling_50_50", Json::Arr(write_scaling)),
            ("sharded_write_scaling_50_50", Json::Arr(sharded_scaling)),
        ]);
        write_json_report(&path, &report);
    }
}
