//! §5.6: scan performance, bLSM vs the B-Tree.
//!
//! The paper's procedure: run the scan test *last*, "after the trees were
//! fragmented by the read-write tests". Results to reproduce in shape:
//!
//! * short scans (1–4 rows): the B-Tree wins — one page versus one seek
//!   per bLSM component (paper: MySQL 608 scans/s vs bLSM 385);
//! * long scans (1–100 rows): B-Tree fragmentation erases the advantage —
//!   bLSM wins (paper: bLSM 165 vs InnoDB 86).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use blsm_bench::setup::{make_blsm, make_btree, Scale};
use blsm_bench::{fmt_f, print_table};
use blsm_storage::DiskModel;
use blsm_ycsb::{KvEngine, LoadOrder, OpMix, Runner, Workload};

fn prepare(engine: &mut dyn KvEngine, scale: &Scale, runner: &Runner) {
    runner
        .load(
            engine,
            scale.records,
            scale.value_size,
            false,
            LoadOrder::Random,
        )
        .unwrap();
    // Fragment with a uniform 50/50 read-write phase, as §5.6 prescribes
    // ("we ran the scan experiment last, after the trees were fragmented
    // by the read-write tests").
    let mut wl = Workload::uniform(scale.records, OpMix::read_blind_write(0.5), 0x5ca);
    wl.value_size = scale.value_size;
    runner.run(engine, &mut wl, scale.records / 2).unwrap();
}

fn scan_rate(engine: &mut dyn KvEngine, scale: &Scale, runner: &Runner, max_len: usize) -> f64 {
    let mut wl = Workload::uniform(
        scale.records,
        OpMix {
            scan: 1.0,
            ..Default::default()
        },
        0x5cb,
    );
    wl.scan_max = max_len;
    wl.value_size = scale.value_size;
    let report = runner.run(engine, &mut wl, 2_000).unwrap();
    report.ops_per_sec
}

fn main() {
    let scale = Scale::paper_scaled().with_records(20_000);
    let runner = Runner::default();

    let mut blsm = make_blsm(DiskModel::hdd(), &scale);
    prepare(&mut blsm, &scale, &runner);
    let mut btree = make_btree(DiskModel::hdd(), &scale);
    prepare(&mut btree, &scale, &runner);

    let blsm_short = scan_rate(&mut blsm, &scale, &runner, 4);
    let btree_short = scan_rate(&mut btree, &scale, &runner, 4);
    let blsm_long = scan_rate(&mut blsm, &scale, &runner, 100);
    let btree_long = scan_rate(&mut btree, &scale, &runner, 100);

    print_table(
        "Sec 5.6: scans per second on fragmented trees (HDD model)",
        &["scan length", "B-Tree", "bLSM", "paper (InnoDB vs bLSM)"],
        &[
            vec![
                "short (1-4 rows)".into(),
                fmt_f(btree_short),
                fmt_f(blsm_short),
                "608 vs 385".into(),
            ],
            vec![
                "long (1-100 rows)".into(),
                fmt_f(btree_long),
                fmt_f(blsm_long),
                "86 vs 165".into(),
            ],
        ],
    );
    println!(
        "\nShape: the B-Tree wins short scans by {:.2}x (paper: 1.58x); \
         bLSM wins long scans by {:.2}x (paper: 1.92x).",
        btree_short / blsm_short.max(1e-9),
        blsm_long / btree_long.max(1e-9),
    );
    assert!(btree_short > blsm_short, "B-Tree must win short scans");
    assert!(
        blsm_long > btree_long,
        "bLSM must win long scans on a fragmented tree"
    );
}
