//! Benchmark harness regenerating every table and figure of the bLSM
//! paper (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md
//! for recorded results).
//!
//! Binaries (run with `cargo run --release -p blsm-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_seek_costs` | Table 1 (seeks per operation, three engines) |
//! | `fig2_read_amplification` | Figure 2 (fractional cascading vs blooms) |
//! | `fig7_insert_timeseries` | Figure 7 (random-order load timeseries) |
//! | `fig8_throughput_vs_writes` | Figure 8 (mix sweep, HDD + SSD) |
//! | `fig9_workload_shift` | Figure 9 (uniform writes → Zipfian 80/20) |
//! | `sec52_bulk_load` | §5.2 (load semantics and throughput) |
//! | `sec53_random_reads` | §5.3 (random read performance, seeks/read) |
//! | `sec56_scans` | §5.6 (short and long scans vs the B-Tree) |
//! | `table2_page_sizes` | Table 2 / Appendix A (cache for read-amp 1) |
//! | `ablation_schedulers` | §4.1/§4.3 (naive vs gear vs spring-and-gear) |
//! | `ablation_snowshovel` | §4.2 (run lengths by input order) |
//!
//! Everything runs on simulated HDD/SSD devices (DESIGN.md §3), so results
//! are deterministic and machine-independent; scale defaults to 1/1000 of
//! the paper's 50 GB / 10 GB-RAM setup, preserving every ratio that
//! matters (data:RAM, data:C0, value size).

pub mod adapters;
pub mod models;
pub mod setup;

pub use adapters::{BLsmEngine, BTreeEngine, LevelDbEngine};
pub use setup::{EngineKind, Scale};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use blsm::{BLsmTree, ThreadedBLsm};
use blsm_ycsb::{format_key, make_value};

/// Parses `--threads N[,M,...]` from the process arguments: the thread
/// counts the concurrent read-scaling section runs at. Returns `default`
/// when the flag is absent or unparseable.
pub fn parse_threads(default: &[usize]) -> Vec<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let list = if arg == "--threads" {
            args.next()
        } else {
            arg.strip_prefix("--threads=").map(str::to_string)
        };
        let Some(list) = list else { continue };
        let parsed: Vec<usize> = list
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    default.to_vec()
}

/// Parses `--shards N[,M,...]` from the process arguments: the shard
/// counts the sharded write-scaling section runs at. Returns `default`
/// when the flag is absent or unparseable.
pub fn parse_shards(default: &[usize]) -> Vec<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let list = if arg == "--shards" {
            args.next()
        } else {
            arg.strip_prefix("--shards=").map(str::to_string)
        };
        let Some(list) = list else { continue };
        let parsed: Vec<usize> = list
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    default.to_vec()
}

/// One thread count's result from [`read_scaling_rows`].
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Reader thread count.
    pub threads: usize,
    /// Wall-clock read throughput summed across all readers.
    pub ops_per_sec: f64,
    /// Writes the concurrent writer completed while the readers ran
    /// (0 when the section runs read-only).
    pub writes: u64,
}

/// Wall-clock concurrent read scaling over the lock-free read path.
///
/// For each entry in `threads`, wraps the (already loaded) tree in a
/// [`ThreadedBLsm`] — background merge thread and all — and hammers it
/// with that many reader threads, each issuing `ops_per_thread` uniform
/// point reads through its own [`blsm::ReadView`] clone. With
/// `with_writer`, the calling thread simultaneously issues blind writes
/// (keeping merges active) until the readers finish, so the readers race
/// live catalog swaps. Every read asserts the full, untorn value.
///
/// This section deliberately uses wall-clock time, not the virtual
/// device clock: the virtual clock serializes by construction, and the
/// point here is what concurrency buys.
pub fn read_scaling_rows(
    mut tree: BLsmTree,
    records: u64,
    value_size: usize,
    ops_per_thread: u64,
    threads: &[usize],
    with_writer: bool,
) -> Vec<ScalingPoint> {
    let mut points = Vec::with_capacity(threads.len());
    for &n in threads {
        let db = Arc::new(
            ThreadedBLsm::start(tree, 1 << 20)
                .unwrap_or_else(|e| panic!("start merge thread: {e}")),
        );
        let readers_done = Arc::new(AtomicU64::new(0));
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let view = db.read_view();
                let done = readers_done.clone();
                std::thread::spawn(move || {
                    let mut rng = 0x5eed_0000_u64 + t as u64;
                    for _ in 0..ops_per_thread {
                        rng = rng
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let id = (rng >> 33) % records;
                        let v = view
                            .get(&format_key(id))
                            .unwrap_or_else(|e| panic!("read failed: {e}"))
                            .unwrap_or_else(|| panic!("loaded key {id} missing"));
                        assert_eq!(v, make_value(id, value_size), "torn read for key {id}");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();

        let mut writes = 0u64;
        if with_writer {
            // Re-write loaded records with their canonical value so
            // readers can still verify bytes; the churn keeps C0 filling
            // and catalog swaps happening under the readers.
            let mut wrng = 0xbeef_u64;
            while readers_done.load(Ordering::SeqCst) < n as u64 {
                wrng = wrng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let id = (wrng >> 33) % records;
                db.put(format_key(id), make_value(id, value_size))
                    .unwrap_or_else(|e| panic!("write failed: {e}"));
                writes += 1;
            }
        }
        for h in handles {
            h.join()
                .unwrap_or_else(|_| panic!("reader thread panicked"));
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        points.push(ScalingPoint {
            threads: n,
            ops_per_sec: (n as u64 * ops_per_thread) as f64 / elapsed,
            writes,
        });
        tree = Arc::try_unwrap(db)
            .unwrap_or_else(|_| panic!("reader threads still hold the db"))
            .shutdown()
            .unwrap_or_else(|e| panic!("shutdown: {e}"));
    }
    points
}

/// One thread count's result from [`write_scaling_rows`].
#[derive(Debug, Clone)]
pub struct WriteScalingPoint {
    /// Writer thread count.
    pub threads: usize,
    /// Wall-clock write throughput summed across all writers.
    pub puts_per_sec: f64,
    /// Wall-clock read throughput summed across all writers (0 for the
    /// put-only mix).
    pub gets_per_sec: f64,
}

/// Splatters `id` across the keyspace: the first key byte is a mixed
/// hash byte, so concurrent writers spread over all sixteen `C0`
/// key-range shards instead of convoying on one (a common-prefix
/// keyset would put every writer in the same shard — real YCSB-style
/// keyspaces hash too).
pub fn hashed_key(id: u64) -> bytes::Bytes {
    let h = id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(31)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let mut k = h.to_be_bytes().to_vec();
    k.extend_from_slice(format!("{id:012}").as_bytes());
    bytes::Bytes::from(k)
}

/// Wall-clock concurrent write scaling over the `&self` write path
/// (DESIGN.md §15).
///
/// For each entry in `threads`, builds a fresh tree via `make`, wraps
/// it in a [`ThreadedBLsm`] (background merge thread and all) and runs
/// that many writer threads. Each writer issues `ops_per_thread`
/// operations over its own disjoint id range: puts, with every
/// `1/read_every`-th operation a point read through a [`blsm::ReadView`]
/// clone instead (`read_every = 0` → put-only; `2` → the 50/50 mix).
///
/// Like [`read_scaling_rows`] this uses wall-clock time: the virtual
/// device clock serializes by construction, and the point here is what
/// the sharded `C0` and atomic seqno tickets buy concurrent writers.
pub fn write_scaling_rows(
    make: impl Fn() -> BLsmTree,
    value_size: usize,
    ops_per_thread: u64,
    threads: &[usize],
    read_every: u64,
) -> Vec<WriteScalingPoint> {
    let mut points = Vec::with_capacity(threads.len());
    for &n in threads {
        let db = Arc::new(
            ThreadedBLsm::start(make(), 1 << 20)
                .unwrap_or_else(|e| panic!("start merge thread: {e}")),
        );
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let db = db.clone();
                let view = db.read_view();
                std::thread::spawn(move || {
                    let base = t as u64 * ops_per_thread;
                    let mut gets = 0u64;
                    for i in 0..ops_per_thread {
                        let id = base + i;
                        if read_every != 0 && i % read_every == 1 {
                            // Read back a key this writer already wrote.
                            view.get(&hashed_key(base + i / 2))
                                .unwrap_or_else(|e| panic!("read failed: {e}"));
                            gets += 1;
                        } else {
                            db.put(hashed_key(id), make_value(id, value_size))
                                .unwrap_or_else(|e| panic!("write failed: {e}"));
                        }
                    }
                    gets
                })
            })
            .collect();
        let gets: u64 = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| panic!("writer panicked")))
            .sum();
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let puts = n as u64 * ops_per_thread - gets;
        points.push(WriteScalingPoint {
            threads: n,
            puts_per_sec: puts as f64 / elapsed,
            gets_per_sec: gets as f64 / elapsed,
        });
        drop(
            Arc::try_unwrap(db)
                .unwrap_or_else(|_| panic!("writer threads still hold the db"))
                .shutdown()
                .unwrap_or_else(|e| panic!("shutdown: {e}")),
        );
    }
    points
}

/// A fresh `n`-shard [`blsm::ShardedBLsm`] over in-memory devices with
/// even two-byte boundaries, sized like the single-tree write-scaling
/// fixtures (generous `C0` budget, degraded durability) so the sharded
/// sections measure routing and dispatch, not log or merge stalls.
#[must_use]
pub fn make_sharded_mem(n: usize) -> blsm::ShardedBLsm {
    use blsm_storage::{MemDevice, SharedDevice};
    let bounds = if n == 1 {
        Vec::new()
    } else {
        blsm::ShardedBLsm::even_bounds(n)
    };
    blsm::ShardedBLsm::open_with_devices(
        Arc::new(MemDevice::new()) as SharedDevice,
        bounds,
        |_| {
            Ok((
                Arc::new(MemDevice::new()) as SharedDevice,
                Arc::new(MemDevice::new()) as SharedDevice,
            ))
        },
        &blsm::ShardedConfig {
            tree: blsm::BLsmConfig {
                mem_budget: 256 << 20,
                durability: blsm::Durability::None,
                wal_capacity: 64 << 20,
                ..Default::default()
            },
            pool_pages: 2048,
            quantum: 1 << 20,
        },
        &(Arc::new(blsm::AppendOperator) as Arc<dyn blsm::MergeOperator>),
    )
    .unwrap_or_else(|e| panic!("open {n}-shard store: {e}"))
}

/// One shard count's result from [`sharded_write_scaling_rows`].
#[derive(Debug, Clone)]
pub struct ShardScalingPoint {
    /// Shard count of the [`blsm::ShardedBLsm`] under test.
    pub shards: usize,
    /// Writer thread count (fixed across shard counts).
    pub threads: usize,
    /// Wall-clock write throughput summed across all writers.
    pub puts_per_sec: f64,
    /// Wall-clock read throughput summed across all writers (0 for the
    /// put-only mix).
    pub gets_per_sec: f64,
}

/// Wall-clock concurrent writes against the sharded serving tier
/// (DESIGN.md §16) at each shard count in `shard_counts`.
///
/// For each shard count, builds a fresh store via `make(n)` and runs
/// `threads` writer threads against it: puts, with every
/// `1/read_every`-th operation a point read through a
/// [`blsm::ShardedReadView`] clone instead (`read_every = 0` →
/// put-only). Keys come from [`hashed_key`], whose leading hash bytes
/// spread uniformly over [`blsm::ShardedBLsm::even_bounds`] boundaries.
///
/// On a single hardware thread this measures the *cost* of the routing
/// layer (a boundary binary search and per-shard dispatch on every op),
/// not its parallel speedup: aggregate throughput should stay roughly
/// flat from 1 to N shards. The structural win — per-shard WALs, merge
/// schedulers, and backpressure that isolate a hot range's stalls — is
/// verified by tests, not timed (see BENCH_7.json's note).
pub fn sharded_write_scaling_rows(
    make: impl Fn(usize) -> blsm::ShardedBLsm,
    value_size: usize,
    ops_per_thread: u64,
    shard_counts: &[usize],
    threads: usize,
    read_every: u64,
) -> Vec<ShardScalingPoint> {
    let mut points = Vec::with_capacity(shard_counts.len());
    for &n in shard_counts {
        let store = Arc::new(make(n));
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let store = store.clone();
                let view = store.read_view();
                std::thread::spawn(move || {
                    let base = t as u64 * ops_per_thread;
                    let mut gets = 0u64;
                    for i in 0..ops_per_thread {
                        let id = base + i;
                        if read_every != 0 && i % read_every == 1 {
                            // Read back a key this writer already wrote.
                            view.get(&hashed_key(base + i / 2))
                                .unwrap_or_else(|e| panic!("read failed: {e}"));
                            gets += 1;
                        } else {
                            store
                                .put(hashed_key(id), make_value(id, value_size))
                                .unwrap_or_else(|e| panic!("write failed: {e}"));
                        }
                    }
                    gets
                })
            })
            .collect();
        let gets: u64 = handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| panic!("writer panicked")))
            .sum();
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let puts = threads as u64 * ops_per_thread - gets;
        points.push(ShardScalingPoint {
            shards: n,
            threads,
            puts_per_sec: puts as f64 / elapsed,
            gets_per_sec: gets as f64 / elapsed,
        });
        Arc::try_unwrap(store)
            .unwrap_or_else(|_| panic!("writer threads still hold the store"))
            .shutdown()
            .unwrap_or_else(|e| panic!("shutdown: {e}"));
    }
    points
}

/// A JSON value for machine-readable benchmark reports. The offline
/// tree has no serde; benchmark output is flat and small enough that a
/// five-variant emitter covers it.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`, and the rendering of non-finite floats.
    Null,
    /// A float (rendered with enough precision to round-trip ops/s).
    Num(f64),
    /// An integer (thread counts, op counts).
    Int(u64),
    /// A string (engine names, workload letters).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders compact JSON (no whitespace beyond what keys contain).
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Str(v) => {
                out.push('"');
                for c in v.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses `--json PATH` from the process arguments: where to write the
/// machine-readable report (the human table still goes to stdout).
/// Returns `None` when the flag is absent.
pub fn parse_json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return args.next().map(std::path::PathBuf::from);
        }
        if let Some(p) = arg.strip_prefix("--json=") {
            return Some(std::path::PathBuf::from(p));
        }
    }
    None
}

/// Writes a report to `path` as pretty-enough JSON (one trailing
/// newline), panicking with a clear message on I/O failure so scripted
/// sweeps fail loudly rather than silently losing results.
pub fn write_json_report(path: &std::path::Path, report: &Json) {
    let body = report.render() + "\n";
    std::fs::write(path, body)
        .unwrap_or_else(|e| panic!("--json {}: write failed: {e}", path.display()));
    println!("\nwrote JSON report to {}", path.display());
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(ToString::to_string).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a float with engineering-friendly precision.
pub fn fmt_f(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn json_renders_nested_report() {
        let j = Json::obj(vec![
            ("bench", Json::Str("sec53".into())),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("threads", Json::Int(4)),
                    ("ops_per_sec", Json::Num(123.5)),
                ])]),
            ),
        ]);
        assert_eq!(
            j.render(),
            r#"{"bench":"sec53","rows":[{"threads":4,"ops_per_sec":123.5}]}"#
        );
    }

    #[test]
    fn json_escapes_strings_and_rejects_nan() {
        let j = Json::Arr(vec![
            Json::Str("a\"b\\c\n".into()),
            Json::Num(f64::NAN),
            Json::Null,
        ]);
        assert_eq!(j.render(), r#"["a\"b\\c\n",null,null]"#);
    }

    #[test]
    fn json_float_round_trips_ops_per_sec() {
        // `{}` on f64 prints shortest-round-trip, so parsing the output
        // recovers the measured number exactly.
        let v = 80761.34221;
        let Json::Num(_) = Json::Num(v) else {
            unreachable!()
        };
        assert_eq!(Json::Num(v).render().parse::<f64>().unwrap(), v);
    }
}
