//! Benchmark harness regenerating every table and figure of the bLSM
//! paper (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md
//! for recorded results).
//!
//! Binaries (run with `cargo run --release -p blsm-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1_seek_costs` | Table 1 (seeks per operation, three engines) |
//! | `fig2_read_amplification` | Figure 2 (fractional cascading vs blooms) |
//! | `fig7_insert_timeseries` | Figure 7 (random-order load timeseries) |
//! | `fig8_throughput_vs_writes` | Figure 8 (mix sweep, HDD + SSD) |
//! | `fig9_workload_shift` | Figure 9 (uniform writes → Zipfian 80/20) |
//! | `sec52_bulk_load` | §5.2 (load semantics and throughput) |
//! | `sec53_random_reads` | §5.3 (random read performance, seeks/read) |
//! | `sec56_scans` | §5.6 (short and long scans vs the B-Tree) |
//! | `table2_page_sizes` | Table 2 / Appendix A (cache for read-amp 1) |
//! | `ablation_schedulers` | §4.1/§4.3 (naive vs gear vs spring-and-gear) |
//! | `ablation_snowshovel` | §4.2 (run lengths by input order) |
//!
//! Everything runs on simulated HDD/SSD devices (DESIGN.md §3), so results
//! are deterministic and machine-independent; scale defaults to 1/1000 of
//! the paper's 50 GB / 10 GB-RAM setup, preserving every ratio that
//! matters (data:RAM, data:C0, value size).

pub mod adapters;
pub mod models;
pub mod setup;

pub use adapters::{BLsmEngine, BTreeEngine, LevelDbEngine};
pub use setup::{EngineKind, Scale};

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(ToString::to_string).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a float with engineering-friendly precision.
pub fn fmt_f(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}
