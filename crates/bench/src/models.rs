//! Analytical models behind Figure 2 and Table 2 / Appendix A.

/// Figure 2 model: read amplification of a fractional-cascading tree with
/// fixed ratio `R` versus a three-level tree with Bloom filters, as a
/// function of data size in multiples of available RAM.
///
/// Fractional cascading holds `R` constant and adds levels as needed
/// (§3.1), so a lookup performs one cascade step per level; each step
/// examines "short runs of data pages" on disk (Figure 2's caption). We
/// charge one seek per level and an average run of `max(1, R/2)` pages of
/// transfer per step. The Bloom approach probes each of at most two
/// extra components with a 1% false-positive filter, so its seek
/// amplification is `1 + N/100 ≤ 1.03` (§3.1) and it transfers one page.
#[derive(Debug)]
pub struct Fig2Model;

impl Fig2Model {
    /// Number of on-disk levels a fixed-`R` tree needs for `data_ratio`
    /// (data size / RAM).
    pub fn cascade_levels(r: f64, data_ratio: f64) -> u32 {
        if data_ratio <= 1.0 {
            return 0;
        }
        let mut levels = 0u32;
        let mut covered = 1.0;
        while covered < data_ratio {
            covered *= r;
            levels += 1;
        }
        levels
    }

    /// Seek amplification of fractional cascading.
    pub fn cascade_seeks(r: f64, data_ratio: f64) -> f64 {
        f64::from(Self::cascade_levels(r, data_ratio))
    }

    /// Bandwidth amplification (pages transferred per lookup, relative to
    /// the single page an optimal index reads).
    pub fn cascade_bandwidth(r: f64, data_ratio: f64) -> f64 {
        f64::from(Self::cascade_levels(r, data_ratio)) * (r / 2.0).max(1.0)
    }

    /// Seek amplification of the paper's approach: a three-level tree
    /// whose two largest components sit behind 1%-false-positive Bloom
    /// filters. "For our scenarios, Bloom filters' maximum amplification
    /// is 1.03" (Figure 2 caption).
    pub fn bloom_seeks(data_ratio: f64) -> f64 {
        if data_ratio <= 1.0 {
            return 0.0; // everything fits in RAM
        }
        // One component actually holds the record; up to two more are
        // probed only on false positives. A third component exists only
        // during merges.
        let extra_components = if data_ratio <= 4.0 { 2.0 } else { 3.0 };
        1.0 + (extra_components - 1.0) * 0.01
    }

    /// Bandwidth amplification of the Bloom approach (one page).
    pub fn bloom_bandwidth(data_ratio: f64) -> f64 {
        Self::bloom_seeks(data_ratio)
            .min(1.03)
            .max(if data_ratio <= 1.0 { 0.0 } else { 1.0 })
    }
}

/// A storage device row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct Table2Device {
    /// Column label.
    pub name: &'static str,
    /// Capacity in GB.
    pub capacity_gb: f64,
    /// Random reads per second.
    pub reads_per_sec: f64,
}

/// The paper's four devices (Table 2).
pub fn table2_devices() -> [Table2Device; 4] {
    [
        Table2Device {
            name: "SSD SATA",
            capacity_gb: 512.0,
            reads_per_sec: 50_000.0,
        },
        Table2Device {
            name: "SSD PCI-E",
            capacity_gb: 5_000.0,
            reads_per_sec: 1_000_000.0,
        },
        Table2Device {
            name: "HDD Server",
            capacity_gb: 300.0,
            reads_per_sec: 500.0,
        },
        Table2Device {
            name: "HDD Media",
            capacity_gb: 2_000.0,
            reads_per_sec: 250.0,
        },
    ]
}

/// The access-frequency rows of Table 2, in seconds.
pub fn table2_periods() -> [(&'static str, f64); 7] {
    [
        ("Minute", 60.0),
        ("Five minute", 300.0),
        ("Half hour", 1_800.0),
        ("Hour", 3_600.0),
        ("Day", 86_400.0),
        ("Week", 604_800.0),
        ("Month", 2_592_000.0),
    ]
}

/// GB of B-Tree index cache needed so every leaf access costs one seek,
/// when every page is touched once per `period_s` (Appendix A: 100-byte
/// keys, 4096-byte pages, so cache = addressable bytes × 100/4096).
/// Returns `None` where the device is capacity-bound rather than
/// seek-bound (the "-" cells of Table 2; use [`table2_full_disk_gb`]).
pub fn table2_cache_gb(dev: &Table2Device, period_s: f64) -> Option<f64> {
    let addressable_gb = dev.reads_per_sec * period_s * 4096.0 / 1e9;
    if addressable_gb >= dev.capacity_gb {
        return None;
    }
    Some(addressable_gb * 100.0 / 4096.0)
}

/// The "Full disk" row: cache for the whole device.
pub fn table2_full_disk_gb(dev: &Table2Device) -> f64 {
    dev.capacity_gb * 100.0 / 4096.0
}

/// Appendix A's Bloom-filter overhead estimate: 1.25 bytes per key, four
/// ~1000-byte entries per 4 KiB leaf → 5% of leaf-index cache.
pub fn bloom_overhead_fraction() -> f64 {
    4.0 * 1.25 / 100.0
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn cascade_levels_grow_logarithmically() {
        assert_eq!(Fig2Model::cascade_levels(2.0, 16.0), 4);
        assert_eq!(Fig2Model::cascade_levels(4.0, 16.0), 2);
        assert_eq!(Fig2Model::cascade_levels(10.0, 16.0), 2);
        assert_eq!(Fig2Model::cascade_levels(10.0, 9.0), 1);
        assert_eq!(Fig2Model::cascade_levels(2.0, 1.0), 0);
    }

    #[test]
    fn bloom_beats_cascading_everywhere_interesting() {
        // Figure 2's conclusion: "No setting of R allows fractional
        // cascading to provide reads competitive with Bloom filters."
        for ratio in [2.0, 4.0, 8.0, 16.0] {
            let bloom = Fig2Model::bloom_seeks(ratio);
            for r in 2..=10 {
                let fc = Fig2Model::cascade_seeks(f64::from(r), ratio);
                assert!(
                    bloom < fc || fc == 1.0,
                    "R={r} ratio={ratio}: bloom {bloom} vs cascade {fc}"
                );
            }
            assert!(bloom <= 1.03);
        }
    }

    #[test]
    fn table2_matches_paper_cells() {
        let devs = table2_devices();
        // SSD SATA, minute: 0.302 GB.
        let v = table2_cache_gb(&devs[0], 60.0).unwrap();
        assert!((v - 0.302).abs() < 0.01, "{v}");
        // SSD PCI-E, five minute: 30.2 GB.
        let v = table2_cache_gb(&devs[1], 300.0).unwrap();
        assert!((v - 30.2).abs() < 0.5, "{v}");
        // HDD Server, half hour: 0.091 GB.
        let v = table2_cache_gb(&devs[2], 1800.0).unwrap();
        assert!((v - 0.091).abs() < 0.005, "{v}");
        // HDD Media, week: 15.2 GB.
        let v = table2_cache_gb(&devs[3], 604_800.0).unwrap();
        assert!((v - 15.2).abs() < 0.5, "{v}");
        // Capacity-bound cells are None: SSD SATA at an hour.
        assert!(table2_cache_gb(&devs[0], 3600.0).is_none());
        // Full disk: Server HDD 7.32 GB, SATA SSD 12.5 GB.
        assert!((table2_full_disk_gb(&devs[2]) - 7.32).abs() < 0.05);
        assert!((table2_full_disk_gb(&devs[0]) - 12.5).abs() < 0.1);
    }

    #[test]
    fn bloom_overhead_is_five_percent() {
        assert!((bloom_overhead_fraction() - 0.05).abs() < 1e-9);
    }
}
