//! [`KvEngine`] adapters for the three engines under test.

use bytes::Bytes;

use blsm::BLsmTree;
use blsm_btree::BTree;
use blsm_leveldb_like::LevelDbLike;
use blsm_storage::{Result, SharedDevice};
use blsm_ycsb::KvEngine;

/// bLSM behind the runner interface. The virtual clock sums the data and
/// log devices (the paper gives each store a dedicated log path, §5.1).
pub struct BLsmEngine {
    /// The tree.
    pub tree: BLsmTree,
    /// The simulated data device.
    pub data: SharedDevice,
    /// The simulated log device.
    pub wal: SharedDevice,
}

impl std::fmt::Debug for BLsmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BLsmEngine")
            .field("tree", &self.tree)
            .finish_non_exhaustive()
    }
}

impl KvEngine for BLsmEngine {
    fn get(&mut self, key: &[u8]) -> Result<Option<Bytes>> {
        self.tree.get(key)
    }

    fn put(&mut self, key: Bytes, value: Bytes) -> Result<()> {
        self.tree.put(key, value)
    }

    fn delete(&mut self, key: Bytes) -> Result<()> {
        self.tree.delete(key)
    }

    fn read_modify_write(&mut self, key: Bytes, suffix: Bytes) -> Result<()> {
        self.tree.read_modify_write(key, move |old| {
            let mut v = old.map(<[u8]>::to_vec).unwrap_or_default();
            v.extend_from_slice(&suffix);
            Some(v)
        })
    }

    fn insert_if_not_exists(&mut self, key: Bytes, value: Bytes) -> Result<bool> {
        self.tree.insert_if_not_exists(key, value)
    }

    fn apply_delta(&mut self, key: Bytes, delta: Bytes) -> Result<()> {
        self.tree.apply_delta(key, delta)
    }

    fn scan(&mut self, from: &[u8], limit: usize) -> Result<usize> {
        Ok(self.tree.scan(from, limit)?.len())
    }

    fn scrub(&mut self) -> Result<Vec<String>> {
        Ok(self.tree.scrub().errors)
    }

    fn now_us(&self) -> u64 {
        self.data.now_us() + self.wal.now_us()
    }

    fn maintenance(&mut self) -> Result<()> {
        self.tree.maintenance(1 << 20)
    }

    fn settle(&mut self) -> Result<()> {
        self.tree.checkpoint()
    }
}

/// The update-in-place B+Tree behind the runner interface.
pub struct BTreeEngine {
    /// The tree.
    pub tree: BTree,
    /// The simulated data device.
    pub data: SharedDevice,
}

impl std::fmt::Debug for BTreeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTreeEngine")
            .field("tree", &self.tree)
            .finish_non_exhaustive()
    }
}

impl KvEngine for BTreeEngine {
    fn get(&mut self, key: &[u8]) -> Result<Option<Bytes>> {
        self.tree.get(key)
    }

    fn put(&mut self, key: Bytes, value: Bytes) -> Result<()> {
        self.tree.insert(key, value)
    }

    fn delete(&mut self, key: Bytes) -> Result<()> {
        self.tree.delete(&key)?;
        Ok(())
    }

    fn read_modify_write(&mut self, key: Bytes, suffix: Bytes) -> Result<()> {
        self.tree.read_modify_write(key, move |old| {
            let mut v = old.map(<[u8]>::to_vec).unwrap_or_default();
            v.extend_from_slice(&suffix);
            Some(v)
        })
    }

    fn insert_if_not_exists(&mut self, key: Bytes, value: Bytes) -> Result<bool> {
        self.tree.insert_if_not_exists(key, value)
    }

    fn scan(&mut self, from: &[u8], limit: usize) -> Result<usize> {
        Ok(self.tree.scan(from, limit)?.len())
    }

    fn now_us(&self) -> u64 {
        self.data.now_us()
    }

    fn settle(&mut self) -> Result<()> {
        self.tree.flush()
    }

    fn flush_cache(&mut self) -> Result<()> {
        self.tree.flush()
    }
}

/// The LevelDB-like engine behind the runner interface.
pub struct LevelDbEngine {
    /// The engine.
    pub inner: LevelDbLike,
    /// The simulated data device.
    pub data: SharedDevice,
}

impl std::fmt::Debug for LevelDbEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LevelDbEngine")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl KvEngine for LevelDbEngine {
    fn get(&mut self, key: &[u8]) -> Result<Option<Bytes>> {
        self.inner.get(key)
    }

    fn put(&mut self, key: Bytes, value: Bytes) -> Result<()> {
        self.inner.put(key, value)
    }

    fn delete(&mut self, key: Bytes) -> Result<()> {
        self.inner.delete(key)
    }

    fn read_modify_write(&mut self, key: Bytes, suffix: Bytes) -> Result<()> {
        self.inner.read_modify_write(key, move |old| {
            let mut v = old.map(<[u8]>::to_vec).unwrap_or_default();
            v.extend_from_slice(&suffix);
            Some(v)
        })
    }

    fn insert_if_not_exists(&mut self, key: Bytes, value: Bytes) -> Result<bool> {
        self.inner.insert_if_not_exists(key, value)
    }

    fn apply_delta(&mut self, key: Bytes, delta: Bytes) -> Result<()> {
        // LevelDB supports blind writes; model a delta as a blind merge
        // record the way its `Put` of a partial value would be used.
        self.inner.put(key, delta)
    }

    fn scan(&mut self, from: &[u8], limit: usize) -> Result<usize> {
        Ok(self.inner.scan(from, limit)?.len())
    }

    fn now_us(&self) -> u64 {
        self.data.now_us()
    }

    fn maintenance(&mut self) -> Result<()> {
        self.inner.run_compaction(1 << 20)
    }

    fn settle(&mut self) -> Result<()> {
        self.inner.compact_all()
    }
}
