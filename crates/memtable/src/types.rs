//! Record representation: base records, deltas and tombstones.
//!
//! §3.1.1: "our reads are able to terminate early because they distinguish
//! between base records and deltas". A [`Versioned`] entry carries a
//! sequence number; components always hold versions in freshness order, so
//! the first *base record* a read encounters is authoritative.

use bytes::Bytes;

/// Monotonically increasing write sequence number.
pub type SeqNo = u64;

/// The three record kinds the tree stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A base record: a full value. Reads stop here (§3.1.1).
    Put(Bytes),
    /// A delta: applied to an older base record via the tree's
    /// [`MergeOperator`]. Written with zero seeks (Table 1).
    Delta(Bytes),
    /// A deletion marker; dropped when it reaches the largest component.
    Tombstone,
}

impl Entry {
    /// True for [`Entry::Put`] — the "base record" of §3.1.1.
    pub fn is_base(&self) -> bool {
        matches!(self, Entry::Put(_))
    }

    /// Approximate heap bytes of the payload.
    pub fn payload_len(&self) -> usize {
        match self {
            Entry::Put(v) | Entry::Delta(v) => v.len(),
            Entry::Tombstone => 0,
        }
    }
}

/// An [`Entry`] plus its sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Versioned {
    /// Write sequence number (newer = larger).
    pub seqno: SeqNo,
    /// The record itself.
    pub entry: Entry,
}

impl Versioned {
    /// Convenience constructor for a base record.
    pub fn put(seqno: SeqNo, value: impl Into<Bytes>) -> Versioned {
        Versioned {
            seqno,
            entry: Entry::Put(value.into()),
        }
    }

    /// Convenience constructor for a delta.
    pub fn delta(seqno: SeqNo, delta: impl Into<Bytes>) -> Versioned {
        Versioned {
            seqno,
            entry: Entry::Delta(delta.into()),
        }
    }

    /// Convenience constructor for a tombstone.
    pub fn tombstone(seqno: SeqNo) -> Versioned {
        Versioned {
            seqno,
            entry: Entry::Tombstone,
        }
    }
}

/// User-defined delta semantics.
///
/// Both operations must be *associative* in the sense that
/// `apply(apply(base, older), newer) == apply(base, merge_deltas(older,
/// newer))`; the tree relies on this to collapse delta chains during
/// memtable inserts and merges.
pub trait MergeOperator: Send + Sync {
    /// Applies one delta to an optional base value (`None` when the key has
    /// no base record — e.g. a delta written blindly to a missing key).
    fn apply(&self, base: Option<&[u8]>, delta: &[u8]) -> Vec<u8>;

    /// Combines two deltas into one, `older` first.
    fn merge_deltas(&self, older: &[u8], newer: &[u8]) -> Vec<u8>;

    /// Folds a stack of deltas (newest first, as collected by a read that
    /// walked components newest→oldest) onto a base value.
    fn fold(&self, base: Option<&[u8]>, deltas_newest_first: &[&[u8]]) -> Vec<u8> {
        let mut acc: Option<Vec<u8>> = base.map(<[u8]>::to_vec);
        for delta in deltas_newest_first.iter().rev() {
            acc = Some(self.apply(acc.as_deref(), delta));
        }
        acc.unwrap_or_default()
    }
}

/// Concatenating operator: a delta is appended to the value. Models the
/// event-log / "append a reading" pattern from the paper's introduction.
#[derive(Debug, Default, Clone, Copy)]
pub struct AppendOperator;

impl MergeOperator for AppendOperator {
    fn apply(&self, base: Option<&[u8]>, delta: &[u8]) -> Vec<u8> {
        let mut out = base.map(<[u8]>::to_vec).unwrap_or_default();
        out.extend_from_slice(delta);
        out
    }

    fn merge_deltas(&self, older: &[u8], newer: &[u8]) -> Vec<u8> {
        let mut out = older.to_vec();
        out.extend_from_slice(newer);
        out
    }
}

/// Signed little-endian 64-bit counter: a delta adds to the value.
#[derive(Debug, Default, Clone, Copy)]
pub struct AddOperator;

impl AddOperator {
    fn decode(bytes: &[u8]) -> i64 {
        let mut buf = [0u8; 8];
        let n = bytes.len().min(8);
        buf[..n].copy_from_slice(&bytes[..n]);
        i64::from_le_bytes(buf)
    }
}

impl MergeOperator for AddOperator {
    fn apply(&self, base: Option<&[u8]>, delta: &[u8]) -> Vec<u8> {
        let b = base.map_or(0, Self::decode);
        let d = Self::decode(delta);
        b.wrapping_add(d).to_le_bytes().to_vec()
    }

    fn merge_deltas(&self, older: &[u8], newer: &[u8]) -> Vec<u8> {
        Self::decode(older)
            .wrapping_add(Self::decode(newer))
            .to_le_bytes()
            .to_vec()
    }
}

/// Deltas replace the value outright. Makes `Delta` behave like `Put`
/// except that reads cannot early-terminate on it; exists mainly for tests
/// and as a safe default.
#[derive(Debug, Default, Clone, Copy)]
pub struct OverwriteOperator;

impl MergeOperator for OverwriteOperator {
    fn apply(&self, _base: Option<&[u8]>, delta: &[u8]) -> Vec<u8> {
        delta.to_vec()
    }

    fn merge_deltas(&self, _older: &[u8], newer: &[u8]) -> Vec<u8> {
        newer.to_vec()
    }
}

/// Resolves all versions of one key into the entry a merge (or read)
/// should emit.
///
/// Freshness is decided by **seqno**, not slice position. Callers supply
/// versions in component order (newest component first), which is almost
/// always seqno order too — but concurrent writers race seqno-ticket
/// allocation against table routing, so an older ticket can land in a
/// fresher table (and from there, a fresher component). The already-sorted
/// common case pays only a linear scan; an inverted chain is re-sorted by
/// seqno, with slice position breaking ties (fresher component first).
///
/// Implements §3.1.1's read semantics: walk newest→oldest collecting
/// deltas, stop at the first base record or tombstone. When `bottom` is
/// true the result lands in the largest component: tombstones are
/// discarded and orphan deltas are materialized against an absent base.
/// Returns `None` when the key should be dropped entirely.
pub fn merge_versions(
    op: &dyn MergeOperator,
    versions: &[Versioned],
    bottom: bool,
) -> Option<Versioned> {
    debug_assert!(!versions.is_empty());
    if versions.windows(2).all(|w| w[0].seqno >= w[1].seqno) {
        return merge_sorted_versions(op, versions.iter(), bottom);
    }
    let mut by_seqno: Vec<&Versioned> = versions.iter().collect();
    by_seqno.sort_by_key(|v| std::cmp::Reverse(v.seqno)); // stable: position breaks ties
    merge_sorted_versions(op, by_seqno.into_iter(), bottom)
}

/// The resolution walk over a chain already in seqno-descending order.
fn merge_sorted_versions<'a>(
    op: &dyn MergeOperator,
    versions: impl Iterator<Item = &'a Versioned> + Clone,
    bottom: bool,
) -> Option<Versioned> {
    let newest_seq = versions.clone().next()?.seqno;
    let mut deltas: Vec<&[u8]> = Vec::new();
    for v in versions {
        match &v.entry {
            Entry::Delta(d) => deltas.push(d),
            Entry::Put(base) => {
                if deltas.is_empty() {
                    return Some(Versioned {
                        seqno: newest_seq,
                        entry: v.entry.clone(),
                    });
                }
                let merged = op.fold(Some(base), &deltas);
                return Some(Versioned::put(newest_seq, bytes::Bytes::from(merged)));
            }
            Entry::Tombstone => {
                if !deltas.is_empty() {
                    let merged = op.fold(None, &deltas);
                    return Some(Versioned::put(newest_seq, bytes::Bytes::from(merged)));
                }
                if bottom {
                    return None;
                }
                return Some(Versioned::tombstone(newest_seq));
            }
        }
    }
    // Only deltas seen.
    if deltas.len() == 1 && !bottom {
        return Some(Versioned::delta(
            newest_seq,
            bytes::Bytes::copy_from_slice(deltas[0]),
        ));
    }
    let mut acc = deltas.pop()?.to_vec(); // non-empty: versions is non-empty, all deltas
    while let Some(newer) = deltas.pop() {
        acc = op.merge_deltas(&acc, newer);
    }
    if bottom {
        Some(Versioned::put(
            newest_seq,
            bytes::Bytes::from(op.apply(None, &acc)),
        ))
    } else {
        Some(Versioned::delta(newest_seq, bytes::Bytes::from(acc)))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn append_operator_associative() {
        let op = AppendOperator;
        let base = b"ab";
        let d1 = b"cd";
        let d2 = b"ef";
        let sequential = op.apply(Some(&op.apply(Some(base), d1)), d2);
        let merged = op.apply(Some(base.as_slice()), &op.merge_deltas(d1, d2));
        assert_eq!(sequential, merged);
        assert_eq!(sequential, b"abcdef");
    }

    #[test]
    fn add_operator_counts() {
        let op = AddOperator;
        let five = 5i64.to_le_bytes();
        let minus2 = (-2i64).to_le_bytes();
        let v = op.apply(None, &five);
        let v = op.apply(Some(&v), &minus2);
        assert_eq!(AddOperator::decode(&v), 3);
        let merged = op.merge_deltas(&five, &minus2);
        assert_eq!(AddOperator::decode(&merged), 3);
    }

    #[test]
    fn fold_applies_oldest_first() {
        let op = AppendOperator;
        // Read collected deltas newest-first: ["c", "b"] over base "a".
        let out = op.fold(Some(b"a"), &[b"c", b"b"]);
        assert_eq!(out, b"abc");
        // No base: deltas applied to empty.
        let out = op.fold(None, &[b"y", b"x"]);
        assert_eq!(out, b"xy");
    }

    #[test]
    fn entry_base_detection() {
        assert!(Entry::Put(Bytes::from_static(b"x")).is_base());
        assert!(!Entry::Delta(Bytes::from_static(b"x")).is_base());
        assert!(!Entry::Tombstone.is_base());
    }

    #[test]
    fn overwrite_operator() {
        let op = OverwriteOperator;
        assert_eq!(op.apply(Some(b"old"), b"new"), b"new");
        assert_eq!(op.merge_deltas(b"a", b"b"), b"b");
    }
}
