//! `C0` — the in-memory component of the bLSM tree.
//!
//! The paper's `C0` is "a smaller update-in-place tree that fits in memory"
//! (§2.3.1) and, with *snowshoveling* (§4.2, also called tournament sort or
//! replacement-selection sort), it is consumed in key order by the `C0:C1`
//! merge while the application keeps inserting. This crate provides:
//!
//! * [`Entry`]/[`Versioned`] — the record representation, distinguishing
//!   *base records* from *deltas* and *tombstones*. The base/delta
//!   distinction is what lets bLSM reads terminate early (§3.1.1).
//! * [`MergeOperator`] — user-defined delta application (§2.3's "apply
//!   delta to record" zero-seek primitive), with append and
//!   integer-counter operators provided.
//! * [`Memtable`] — an ordered in-memory map with byte accounting.
//! * [`SnowshovelBuffer`] — the full `C0` abstraction: an idle buffer, a
//!   *frozen* mode reproducing the classic `C0`/`C0'` partitioning, and a
//!   *snowshovel* mode where a cursor sweeps the keyspace and inserts
//!   landing behind the cursor are deferred to the next pass.

mod concurrent;
mod memtable;
mod snowshovel;
mod types;

pub use concurrent::{ConcurrentC0, DrainGuard, PassMode, C0_SHARDS};
pub use memtable::Memtable;
pub use snowshovel::{PassKind, SnowshovelBuffer};
pub use types::{
    merge_versions, AddOperator, AppendOperator, Entry, MergeOperator, OverwriteOperator, SeqNo,
    Versioned,
};
