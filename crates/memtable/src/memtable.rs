//! Ordered in-memory map with byte accounting.
//!
//! The memtable keeps exactly one [`Versioned`] entry per key by folding
//! incoming writes into the resident entry (a delta over a base record
//! produces a new base record; two deltas combine via the
//! [`MergeOperator`]). This mirrors the paper's observation that updates to
//! the same tuple must be "placed in tree levels consistent with their
//! ordering" (§3.1.1) — within `C0` the fold preserves that ordering while
//! keeping memory proportional to the live key set.

use std::collections::BTreeMap;
use std::ops::Bound;

use bytes::Bytes;

use crate::types::{Entry, MergeOperator, Versioned};

/// Fixed per-entry overhead charged to the byte budget (map node, key and
/// value headers). The exact figure only needs to be stable, not precise.
pub const ENTRY_OVERHEAD: usize = 64;

/// An ordered in-memory component.
#[derive(Debug, Default, Clone)]
pub struct Memtable {
    map: BTreeMap<Bytes, Versioned>,
    bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Number of distinct keys resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate bytes consumed, including per-entry overhead. This is
    /// the quantity the spring-and-gear scheduler watermarks (§4.3).
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }

    fn entry_cost(key: &Bytes, v: &Versioned) -> usize {
        ENTRY_OVERHEAD + key.len() + v.entry.payload_len()
    }

    /// Inserts a write, folding it into any resident entry for the key.
    ///
    /// Folding rules (new write vs resident entry):
    /// * `Put`/`Tombstone` replace whatever is resident.
    /// * `Delta` over resident `Put(v)` → `Put(apply(v, delta))`.
    /// * `Delta` over resident `Tombstone` → `Put(apply(None, delta))`.
    /// * `Delta` over resident `Delta(d)` → `Delta(merge_deltas(d, delta))`.
    /// * `Delta` with nothing resident stays a `Delta` — the base record
    ///   may live in a larger component.
    pub fn insert(&mut self, key: Bytes, write: Versioned, op: &dyn MergeOperator) {
        // Concurrent writers race seqno allocation against the shard
        // insert, so a latecomer can arrive carrying an older seqno than
        // the resident entry. Fold it in as the *older* version — the
        // resident entry wins, exactly as if the two had arrived in seqno
        // order.
        if let Some(resident) = self.map.get(&key) {
            if write.seqno < resident.seqno {
                self.insert_older(key, write, op);
                return;
            }
        }
        let folded = match (self.map.get(&key), &write.entry) {
            (Some(resident), Entry::Delta(d)) => {
                debug_assert!(
                    write.seqno >= resident.seqno,
                    "writes must arrive in seqno order per key"
                );
                match &resident.entry {
                    Entry::Put(v) => Versioned::put(write.seqno, op.apply(Some(v), d)),
                    Entry::Tombstone => Versioned::put(write.seqno, op.apply(None, d)),
                    Entry::Delta(older) => Versioned::delta(write.seqno, op.merge_deltas(older, d)),
                }
            }
            _ => write,
        };
        let cost = Self::entry_cost(&key, &folded);
        if let Some(old) = self.map.insert(key.clone(), folded) {
            self.bytes -= Self::entry_cost(&key, &old);
        }
        self.bytes += cost;
    }

    /// Looks up the resident entry for `key`.
    pub fn get(&self, key: &[u8]) -> Option<&Versioned> {
        self.map.get(key)
    }

    /// Smallest resident key.
    pub fn first_key(&self) -> Option<&Bytes> {
        self.map.keys().next()
    }

    /// Largest resident key.
    pub fn last_key(&self) -> Option<&Bytes> {
        self.map.keys().next_back()
    }

    /// Removes and returns the smallest entry — the snowshovel drain step.
    pub fn pop_first(&mut self) -> Option<(Bytes, Versioned)> {
        let (key, v) = self.map.pop_first()?;
        self.bytes -= Self::entry_cost(&key, &v);
        Some((key, v))
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Versioned)> {
        self.map.iter()
    }

    /// Iterates entries with key ≥ `from` in key order.
    pub fn range_from<'a>(
        &'a self,
        from: &[u8],
    ) -> impl Iterator<Item = (&'a Bytes, &'a Versioned)> {
        self.map
            .range::<[u8], _>((Bound::Included(from), Bound::Unbounded))
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }

    /// Takes the whole table, leaving this one empty. Used to freeze `C0`
    /// into `C0'` in non-snowshovel mode.
    pub fn take(&mut self) -> Memtable {
        std::mem::take(self)
    }

    /// Inserts an entry for a key known to be absent — no folding is
    /// needed or attempted. The snowshovel buffer uses this to retain
    /// drained entries for concurrent readers: a pass drains each key at
    /// most once, so the retained table never sees a duplicate.
    pub fn insert_unmerged(&mut self, key: Bytes, v: Versioned) {
        debug_assert!(
            !self.map.contains_key(&key),
            "insert_unmerged: key already resident"
        );
        self.bytes += Self::entry_cost(&key, &v);
        self.map.insert(key, v);
    }

    /// Inserts an entry *presumed older* than anything resident for the
    /// key, resolving the pair through
    /// [`merge_versions`](crate::merge_versions). Used when a capped merge
    /// pass returns undrained entries to the buffer, and by the
    /// seqno-racing path of [`Memtable::insert`]. The presumption is not
    /// trusted: concurrent writers race seqno-ticket allocation against
    /// table routing, so the incoming entry can in fact be the newer one —
    /// the winner is picked by seqno, resident-first on ties.
    pub fn insert_older(&mut self, key: Bytes, older: Versioned, op: &dyn MergeOperator) {
        let folded = match self.map.get(&key) {
            None => Some(older),
            Some(resident) => {
                let pair = if resident.seqno >= older.seqno {
                    [resident.clone(), older]
                } else {
                    [older, resident.clone()]
                };
                crate::types::merge_versions(op, &pair, false)
            }
        };
        let Some(folded) = folded else { return };
        let cost = Self::entry_cost(&key, &folded);
        if let Some(old) = self.map.insert(key.clone(), folded) {
            self.bytes -= Self::entry_cost(&key, &old);
        }
        self.bytes += cost;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::types::{AddOperator, AppendOperator};

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut m = Memtable::new();
        m.insert(b("k1"), Versioned::put(1, b("v1")), &AppendOperator);
        m.insert(b("k2"), Versioned::put(2, b("v2")), &AppendOperator);
        assert_eq!(m.get(b"k1").unwrap().entry, Entry::Put(b("v1")));
        assert_eq!(m.get(b"k2").unwrap().seqno, 2);
        assert!(m.get(b"k3").is_none());
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn put_overwrites_and_accounting_stays_consistent() {
        let mut m = Memtable::new();
        m.insert(b("k"), Versioned::put(1, b("short")), &AppendOperator);
        let after_first = m.approx_bytes();
        m.insert(
            b("k"),
            Versioned::put(2, b("a much longer value")),
            &AppendOperator,
        );
        assert!(m.approx_bytes() > after_first);
        m.insert(b("k"), Versioned::put(3, b("s")), &AppendOperator);
        assert_eq!(m.approx_bytes(), ENTRY_OVERHEAD + 1 + 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn delta_folds_into_base() {
        let mut m = Memtable::new();
        m.insert(b("k"), Versioned::put(1, b("base")), &AppendOperator);
        m.insert(b("k"), Versioned::delta(2, b("+d1")), &AppendOperator);
        let v = m.get(b"k").unwrap();
        assert_eq!(v.entry, Entry::Put(b("base+d1")));
        assert_eq!(v.seqno, 2);
    }

    #[test]
    fn delta_chain_combines() {
        let mut m = Memtable::new();
        m.insert(b("k"), Versioned::delta(1, b("a")), &AppendOperator);
        m.insert(b("k"), Versioned::delta(2, b("b")), &AppendOperator);
        // Stays a delta: the base may be on disk.
        assert_eq!(m.get(b"k").unwrap().entry, Entry::Delta(b("ab")));
    }

    #[test]
    fn delta_over_tombstone_becomes_base() {
        let mut m = Memtable::new();
        m.insert(b("k"), Versioned::tombstone(1), &AddOperator);
        m.insert(
            b("k"),
            Versioned::delta(2, Bytes::copy_from_slice(&7i64.to_le_bytes())),
            &AddOperator,
        );
        match &m.get(b"k").unwrap().entry {
            Entry::Put(v) => assert_eq!(i64::from_le_bytes(v[..8].try_into().unwrap()), 7),
            other => panic!("expected Put, got {other:?}"),
        }
    }

    #[test]
    fn tombstone_replaces_value() {
        let mut m = Memtable::new();
        m.insert(b("k"), Versioned::put(1, b("v")), &AppendOperator);
        m.insert(b("k"), Versioned::tombstone(2), &AppendOperator);
        assert_eq!(m.get(b"k").unwrap().entry, Entry::Tombstone);
    }

    #[test]
    fn pop_first_drains_in_key_order() {
        let mut m = Memtable::new();
        for k in ["c", "a", "b"] {
            m.insert(b(k), Versioned::put(1, b("v")), &AppendOperator);
        }
        let mut keys = Vec::new();
        while let Some((k, _)) = m.pop_first() {
            keys.push(k);
        }
        assert_eq!(keys, vec![b("a"), b("b"), b("c")]);
        assert_eq!(m.approx_bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn range_from_is_inclusive() {
        let mut m = Memtable::new();
        for k in ["a", "b", "c", "d"] {
            m.insert(b(k), Versioned::put(1, b("v")), &AppendOperator);
        }
        let keys: Vec<_> = m.range_from(b"b").map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("b"), b("c"), b("d")]);
    }

    #[test]
    fn take_freezes() {
        let mut m = Memtable::new();
        m.insert(b("k"), Versioned::put(1, b("v")), &AppendOperator);
        let frozen = m.take();
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
        assert_eq!(frozen.len(), 1);
        assert!(frozen.approx_bytes() > 0);
    }
}
