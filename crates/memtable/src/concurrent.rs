//! A sharded, internally-synchronized `C0` that admits parallel inserts.
//!
//! [`ConcurrentC0`] preserves the exact semantics of
//! [`SnowshovelBuffer`](crate::SnowshovelBuffer) — newest-first version
//! chains (ordered by *seqno*, the authoritative freshness under
//! concurrent writers — see [`ConcurrentC0::version_chain`]), pass/drain
//! cursor monotonicity, retained-entry durability — while letting writer
//! threads insert concurrently instead of funneling through one
//! buffer-wide write lock:
//!
//! * The keyspace is split into [`C0_SHARDS`] **key-range shards** (by the
//!   top nibble of the first key byte, so shard `i`'s keys all sort before
//!   shard `i+1`'s). Each shard owns its own `current`/`behind`/`retained`
//!   [`Memtable`] triple behind a private lock; two inserts contend only
//!   when they land in the same shard.
//! * The **pass state** (cursor + pass kind) sits behind a small `RwLock`
//!   taken in *shared* mode by inserts — every writer may hold it at once —
//!   and in *exclusive* mode by the single merge thread's drain steps.
//!   Holding it across the route-then-insert window is what keeps the
//!   snowshovel routing decision (`ahead of cursor` → current, else
//!   deferred) atomic with respect to cursor advancement.
//! * Byte accounting is **atomic counters**, so the spring-and-gear
//!   water marks and the hard `C0` cap are readable without any lock.
//! * Catalog publish (the `C0:C1` commit plus retained-entry clear) is an
//!   **epoch-bumped atomic section**: a seqlock-style counter goes odd for
//!   the duration of [`ConcurrentC0::end_pass_with`], and readers who
//!   overlap it retry their pin. This replaces the old `c0` write-lock
//!   hold — a reader either sees (old catalog + retained entries) or
//!   (new catalog without them), never a state in between. The retry is
//!   load-bearing for *deltas*: a retained delta observed together with
//!   the new `C1` (which already folded it in) would double-apply.
//!
//! Ordering across shards is preserved by construction: range sharding
//! means a key-order drain visits shard 0 to exhaustion, then shard 1,
//! and so on, so [`DrainGuard::drain_next`] scanning shards in index
//! order pops the global minimum.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use bytes::Bytes;
use parking_lot::{RwLock, RwLockWriteGuard};

use crate::memtable::{Memtable, ENTRY_OVERHEAD};
use crate::snowshovel::{DualIter, PassKind};
use crate::types::{MergeOperator, Versioned};

/// Number of key-range shards. Sixteen keeps the routing function a
/// single shift (top nibble of the first key byte) while giving a
/// machine's worth of writer threads mostly-disjoint locks; the empty
/// key routes to shard 0.
pub const C0_SHARDS: usize = 16;

const MODE_IDLE: u8 = 0;
const MODE_SNOWSHOVEL: u8 = 1;
const MODE_FROZEN: u8 = 2;

/// Lock-free snapshot of the pass kind (no cursor), for scheduler reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassMode {
    /// No pass active.
    Idle,
    /// Replacement-selection sweep in progress.
    Snowshovel,
    /// `C0` frozen as `C0'`.
    Frozen,
}

fn shard_of(key: &[u8]) -> usize {
    key.first().map_or(0, |&b| (b >> 4) as usize)
}

/// The three per-shard tables, mirroring [`SnowshovelBuffer`]'s
/// `current`/`behind`/`retained` split for one slice of the keyspace.
///
/// [`SnowshovelBuffer`]: crate::SnowshovelBuffer
#[derive(Debug, Default)]
struct ShardTables {
    current: Memtable,
    behind: Memtable,
    retained: Memtable,
}

#[derive(Debug, Default)]
struct Shard {
    tables: RwLock<ShardTables>,
}

/// Pass kind + snowshovel cursor. Guarded by `ConcurrentC0::pass`;
/// inserts hold the lock shared (they only read the routing decision),
/// drain steps and pass transitions hold it exclusive.
#[derive(Debug)]
struct PassState {
    kind: PassKind,
}

/// Sharded concurrent `C0`. All methods take `&self`; inserts scale with
/// writer threads (shared pass lock + per-shard table lock), drains and
/// pass transitions serialize on the exclusive pass lock, and catalog
/// publish is an epoch-bumped atomic section readers retry around.
#[derive(Debug)]
pub struct ConcurrentC0 {
    shards: Vec<Shard>,
    pass: RwLock<PassState>,
    /// Seqlock epoch for catalog publish: odd while a publish (pass end)
    /// is mutating shard state and the catalog pointer, even otherwise.
    // ordering: Acquire loads / Release bumps — seqlock protocol; a reader
    // whose two loads bracket unchanged-and-even proves its shard reads and
    // catalog load did not overlap a publish.
    epoch: AtomicU64,
    /// Mirror of the pass kind for lock-free scheduler reads.
    // ordering: Release stores under the exclusive pass lock, Acquire
    // loads — advisory snapshot for pacing; the authoritative kind lives
    // under the `pass` lock, the pairing only keeps the mirror from being
    // reordered ahead of the transition that set it.
    mode: AtomicU8,
    /// Bytes across all shards' `current` tables.
    // ordering: AcqRel adjustments under the owning shard lock (Release
    // resets under the exclusive pass lock), Acquire loads — water-mark
    // accounting; a pacing read that observes a total also observes the
    // inserts it accounts.
    bytes_current: AtomicUsize,
    /// Bytes across all shards' `behind` tables.
    // ordering: AcqRel adjustments / Release resets / Acquire loads, as
    // `bytes_current`.
    bytes_behind: AtomicUsize,
    /// Bytes across all shards' `retained` tables.
    // ordering: AcqRel adjustments / Release resets / Acquire loads, as
    // `bytes_current`.
    bytes_retained: AtomicUsize,
    /// Bytes drained so far in the active pass.
    // ordering: AcqRel bumps and Release resets under the exclusive pass
    // lock, Acquire loads — progress estimator input.
    drained_bytes: AtomicUsize,
    /// Bytes in `current` when the active pass began.
    // ordering: Release stores under the exclusive pass lock, Acquire
    // loads — progress estimator input.
    pass_start_bytes: AtomicUsize,
}

impl Default for ConcurrentC0 {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentC0 {
    /// Creates an empty buffer.
    pub fn new() -> ConcurrentC0 {
        ConcurrentC0 {
            shards: (0..C0_SHARDS).map(|_| Shard::default()).collect(),
            pass: RwLock::new(PassState {
                kind: PassKind::Idle,
            }),
            epoch: AtomicU64::new(0),
            mode: AtomicU8::new(MODE_IDLE),
            bytes_current: AtomicUsize::new(0),
            bytes_behind: AtomicUsize::new(0),
            bytes_retained: AtomicUsize::new(0),
            drained_bytes: AtomicUsize::new(0),
            pass_start_bytes: AtomicUsize::new(0),
        }
    }

    fn adjust(ctr: &AtomicUsize, before: usize, after: usize) {
        // ordering: AcqRel — see the counter field docs; a watermark
        // reader that observes the new total also observes the insert.
        if after >= before {
            ctr.fetch_add(after - before, Ordering::AcqRel);
        } else {
            ctr.fetch_sub(before - after, Ordering::AcqRel);
        }
    }

    /// Total bytes across `current` + `behind` — the quantity the
    /// spring-and-gear scheduler watermarks. Lock-free.
    pub fn approx_bytes(&self) -> usize {
        // ordering: Acquire — pairs with the AcqRel/Release writes (see
        // field docs); same for the other watermark getters below.
        self.bytes_current.load(Ordering::Acquire) + self.bytes_behind.load(Ordering::Acquire)
    }

    /// Bytes in the pass-input (`current`) tables. Lock-free.
    pub fn current_bytes(&self) -> usize {
        self.bytes_current.load(Ordering::Acquire)
    }

    /// Bytes deferred to the next pass. Lock-free.
    pub fn behind_bytes(&self) -> usize {
        self.bytes_behind.load(Ordering::Acquire)
    }

    /// Bytes held for concurrent readers on behalf of the active pass.
    pub fn retained_bytes(&self) -> usize {
        self.bytes_retained.load(Ordering::Acquire)
    }

    /// Bytes drained so far in the active pass.
    pub fn drained_bytes(&self) -> usize {
        self.drained_bytes.load(Ordering::Acquire)
    }

    /// Bytes in the pass's input when it began.
    pub fn pass_start_bytes(&self) -> usize {
        self.pass_start_bytes.load(Ordering::Acquire)
    }

    /// Lock-free snapshot of the pass kind (no cursor).
    pub fn pass_mode(&self) -> PassMode {
        // ordering: Acquire — pairs with the Release store at the pass
        // transition that set the mode.
        match self.mode.load(Ordering::Acquire) {
            MODE_SNOWSHOVEL => PassMode::Snowshovel,
            MODE_FROZEN => PassMode::Frozen,
            _ => PassMode::Idle,
        }
    }

    /// The pass kind including the snowshovel cursor (takes the pass lock).
    pub fn pass_kind(&self) -> PassKind {
        self.pass.read().kind.clone()
    }

    /// The current publish epoch. Odd means a catalog publish is in
    /// flight; readers pinning `C0` + catalog must observe the same even
    /// value before and after their reads, else retry.
    pub fn publish_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Distinct keys resident across `current` + `behind` (retained
    /// copies excluded, matching [`SnowshovelBuffer::len`]).
    ///
    /// [`SnowshovelBuffer::len`]: crate::SnowshovelBuffer::len
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let t = s.tables.read();
                t.current.len() + t.behind.len()
            })
            .sum()
    }

    /// True when every shard's `current` and `behind` are empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| {
            let t = s.tables.read();
            t.current.is_empty() && t.behind.is_empty()
        })
    }

    /// Inserts a write, routing by the pass state. Concurrent-safe: the
    /// pass lock is held *shared* across the routing decision and the
    /// single-shard insert, so writers scale while any drain step (which
    /// holds the lock exclusively) observes either the whole insert or
    /// none of it.
    pub fn insert(&self, key: Bytes, write: Versioned, op: &dyn MergeOperator) {
        let pass = self.pass.read();
        let to_behind = match &pass.kind {
            PassKind::Idle => false,
            PassKind::Frozen => true,
            PassKind::Snowshovel { last_drained } => match last_drained {
                None => false, // nothing drained yet: everything is ahead
                Some(cursor) => key.as_ref() <= cursor.as_ref(),
            },
        };
        let shard = &self.shards[shard_of(&key)];
        let mut t = shard.tables.write();
        let (table, ctr) = if to_behind {
            (&mut t.behind, &self.bytes_behind)
        } else {
            (&mut t.current, &self.bytes_current)
        };
        let before = table.approx_bytes();
        table.insert(key, write, op);
        let after = table.approx_bytes();
        // Counter updated while both locks are held, so exclusive pass
        // sections (begin/end pass snapshots) see settled totals.
        Self::adjust(ctr, before, after);
    }

    /// Looks up `key`: the **newest resident version by seqno** across
    /// `behind`/`current`/`retained`, cloned out of the shard lock. Table
    /// position is not trusted for freshness: writers race seqno-ticket
    /// allocation against routing, so an older ticket can land in `behind`
    /// after a newer one was drained to `retained` (ties — impossible with
    /// unique tickets — would fall to the `behind` → `current` →
    /// `retained` order).
    pub fn get(&self, key: &[u8]) -> Option<Versioned> {
        let t = self.shards[shard_of(key)].tables.read();
        [t.behind.get(key), t.current.get(key), t.retained.get(key)]
            .into_iter()
            .flatten()
            .reduce(|best, v| if v.seqno > best.seqno { v } else { best })
            .cloned()
    }

    /// All resident versions of `key`, **newest first by seqno** (table
    /// order `behind` → `current` → `retained` breaks ties), cloned out
    /// of the shard lock. A key's versions all live in one shard, so a
    /// single shard read lock yields a consistent chain; callers pair
    /// this with an epoch check to pin it against a concurrent catalog
    /// publish. Sorting by seqno (not table position) keeps reads
    /// monotone when a racing older ticket lands in `behind` after a
    /// newer version was drained to `retained`.
    pub fn version_chain(&self, key: &[u8]) -> Vec<Versioned> {
        let t = self.shards[shard_of(key)].tables.read();
        let mut chain: Vec<Versioned> = t
            .behind
            .get(key)
            .into_iter()
            .chain(t.current.get(key))
            .chain(t.retained.get(key))
            .cloned()
            .collect();
        chain.sort_by_key(|v| std::cmp::Reverse(v.seqno)); // stable: table order breaks ties
        chain
    }

    /// Copies every resident entry with `from ≤ key` (`< to` when given)
    /// in key order, with the same all-versions newest-first tie
    /// semantics as [`SnowshovelBuffer::range_from`]: a key present in
    /// more than one table yields every copy, **fresher first by seqno**
    /// (table order breaks ties). Shards are visited in index order,
    /// which *is* key order under range sharding.
    ///
    /// [`SnowshovelBuffer::range_from`]: crate::SnowshovelBuffer::range_from
    pub fn range_rows(&self, from: &[u8], to: Option<&[u8]>) -> Vec<(Bytes, Versioned)> {
        let mut out: Vec<(Bytes, Versioned)> = Vec::new();
        for shard in &self.shards[shard_of(from)..] {
            let t = shard.tables.read();
            let iter = DualIter {
                a: t.behind.range_from(from).peekable(),
                b: DualIter {
                    a: t.current.range_from(from).peekable(),
                    b: t.retained.range_from(from).peekable(),
                }
                .peekable(),
            };
            for (k, v) in iter {
                if to.is_some_and(|hi| k.as_ref() >= hi) {
                    return out;
                }
                out.push((k.clone(), v.clone()));
                // Table position is not authoritative for freshness (see
                // `version_chain`): restore seqno-descending order within
                // the equal-key run (at most three entries, already
                // adjacent — DualIter yields a key's tables together).
                let mut i = out.len() - 1;
                while i > 0 && out[i - 1].0 == out[i].0 && out[i - 1].1.seqno < out[i].1.seqno {
                    out.swap(i - 1, i);
                    i -= 1;
                }
            }
        }
        out
    }

    /// Begins a merge pass (see [`SnowshovelBuffer::begin_pass`]).
    ///
    /// Panics if a pass is already active or deferred entries remain.
    ///
    /// [`SnowshovelBuffer::begin_pass`]: crate::SnowshovelBuffer::begin_pass
    pub fn begin_pass(&self, snowshovel: bool) {
        let mut pass = self.pass.write();
        assert_eq!(pass.kind, PassKind::Idle, "pass already active");
        assert!(
            self.shards
                .iter()
                .all(|s| s.tables.read().behind.is_empty()),
            "behind tables must be empty between passes"
        );
        debug_assert!(
            self.shards
                .iter()
                .all(|s| s.tables.read().retained.is_empty()),
            "retained tables must be empty between passes"
        );
        pass.kind = if snowshovel {
            PassKind::Snowshovel { last_drained: None }
        } else {
            PassKind::Frozen
        };
        // ordering: Release stores (Acquire read of the quiescent
        // counter) — pairs with the Acquire loads in the lock-free
        // getters; see the field docs.
        self.mode.store(
            if snowshovel {
                MODE_SNOWSHOVEL
            } else {
                MODE_FROZEN
            },
            Ordering::Release,
        );
        // Inserts are excluded (they hold the pass lock shared), so the
        // counter is quiescent here.
        self.pass_start_bytes.store(
            self.bytes_current.load(Ordering::Acquire),
            Ordering::Release,
        );
        self.drained_bytes.store(0, Ordering::Release);
    }

    /// Takes the exclusive drain handle for the active pass. The guard
    /// blocks inserts only while held — the merge thread takes it per
    /// entry (or small batch), mirroring the old per-quantum `c0` write
    /// lock but at far finer grain.
    pub fn drain_guard(&self) -> DrainGuard<'_> {
        DrainGuard {
            c0: self,
            pass: self.pass.write(),
        }
    }

    /// True when the active pass has consumed every `current` entry.
    /// (Racy convenience form; [`DrainGuard::pass_exhausted`] is the
    /// stable-under-lock variant.)
    pub fn pass_exhausted(&self) -> bool {
        self.pass_mode() != PassMode::Idle
            && self
                .shards
                .iter()
                .all(|s| s.tables.read().current.is_empty())
    }

    /// Ends an exhausted pass, running `commit` (the catalog publish)
    /// inside the epoch-bumped atomic section: the epoch goes odd, the
    /// new catalog is stored, every shard's retained table is cleared and
    /// `behind` becomes `current`, then the epoch goes even. A reader
    /// pinning `C0` + catalog across this window observes an epoch change
    /// and retries, so it sees either (old catalog + retained entries) or
    /// (new catalog without them) — never both, never neither.
    ///
    /// Panics if entries remain undrained or no pass is active.
    pub fn end_pass_with(&self, commit: impl FnOnce()) {
        let mut pass = self.pass.write();
        assert_ne!(pass.kind, PassKind::Idle, "no pass active");
        let undrained: usize = self
            .shards
            .iter()
            .map(|s| s.tables.read().current.len())
            .sum();
        assert!(
            undrained == 0,
            "pass ended with {undrained} entries undrained"
        );
        self.epoch.fetch_add(1, Ordering::Release); // odd: publish begins
        commit();
        let mut current_total = 0;
        for shard in &self.shards {
            let mut t = shard.tables.write();
            t.current = t.behind.take();
            t.retained.clear();
            current_total += t.current.approx_bytes();
        }
        self.finish_pass_counters(&mut pass, current_total);
        self.epoch.fetch_add(1, Ordering::Release); // even: publish done
    }

    /// Ends an exhausted pass with no catalog change (recovery paths and
    /// tests).
    pub fn end_pass(&self) {
        self.end_pass_with(|| ());
    }

    /// Ends a pass that may have undrained `current` entries: folds each
    /// remaining entry into the deferred table as the older version (the
    /// run-length cap stopped the merge early, or a racing insert landed
    /// ahead of the cursor after the last drain), publishes via `commit`
    /// inside the epoch-bumped section, and installs the fold as the new
    /// `current`. Shards whose `current` is already empty skip the fold
    /// entirely — for them the install is the O(1) `behind` → `current`
    /// move, so a clean pass pays nothing. The fold for dirty shards is
    /// computed before the epoch bump — readers keep pinning meanwhile —
    /// so the odd-epoch window stays O(shards). The displaced tables are
    /// returned for the caller to drop outside any critical section.
    ///
    /// Returns `(displaced, leftover)`; `leftover` is true when the
    /// installed `current` holds any entry (undrained or deferred), i.e.
    /// the pass did not fully empty `C0`.
    ///
    /// Panics if no pass is active.
    #[must_use = "drop the displaced tables outside the critical section"]
    pub fn end_capped_pass_with(
        &self,
        op: &dyn MergeOperator,
        commit: impl FnOnce(),
    ) -> (Vec<Memtable>, bool) {
        let mut pass = self.pass.write();
        assert_ne!(pass.kind, PassKind::Idle, "no pass active");
        // Fold outside the publish window. The exclusive pass lock keeps
        // inserts and drains out, so the snapshot is consistent. `None`
        // marks a clean shard (empty `current`): it must keep its tables
        // in place until the odd-epoch install below, so the fold clones
        // only dirty shards.
        let merged: Vec<Option<Memtable>> = self
            .shards
            .iter()
            .map(|shard| {
                let t = shard.tables.read();
                if t.current.is_empty() {
                    return None;
                }
                let mut m = t.behind.clone();
                for (k, v) in t.current.iter() {
                    m.insert_older(k.clone(), v.clone(), op);
                }
                Some(m)
            })
            .collect();
        self.epoch.fetch_add(1, Ordering::Release); // odd: publish begins
        commit();
        let mut displaced = Vec::with_capacity(3 * C0_SHARDS);
        let mut current_total = 0;
        for (shard, m) in self.shards.iter().zip(merged) {
            let mut t = shard.tables.write();
            match m {
                Some(m) => {
                    current_total += m.approx_bytes();
                    displaced.push(std::mem::replace(&mut t.current, m));
                    displaced.push(t.behind.take());
                }
                None => {
                    t.current = t.behind.take();
                    current_total += t.current.approx_bytes();
                }
            }
            displaced.push(t.retained.take());
        }
        self.finish_pass_counters(&mut pass, current_total);
        self.epoch.fetch_add(1, Ordering::Release); // even: publish done
        drop(pass);
        (displaced, current_total > 0)
    }

    fn finish_pass_counters(&self, pass: &mut PassState, current_total: usize) {
        // ordering: Release — pass-end resets under the exclusive pass
        // lock; pair with the Acquire loads in the lock-free getters.
        self.bytes_current.store(current_total, Ordering::Release);
        self.bytes_behind.store(0, Ordering::Release);
        self.bytes_retained.store(0, Ordering::Release);
        self.drained_bytes.store(0, Ordering::Release);
        self.pass_start_bytes.store(0, Ordering::Release);
        pass.kind = PassKind::Idle;
        self.mode.store(MODE_IDLE, Ordering::Release);
    }
}

/// Exclusive drain handle: holds the pass lock, so the peek → compare →
/// drain window of the merge loop is atomic with respect to inserts
/// (an insert between peek and pop could otherwise slip a smaller key
/// under an equal-key merge decision).
pub struct DrainGuard<'a> {
    c0: &'a ConcurrentC0,
    pass: RwLockWriteGuard<'a, PassState>,
}

impl std::fmt::Debug for DrainGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrainGuard")
            .field("pass", &self.pass.kind)
            .finish()
    }
}

impl DrainGuard<'_> {
    /// The smallest key the pass would drain next, if any. Shards are
    /// scanned in index order; under range sharding the first non-empty
    /// `current` holds the global minimum.
    pub fn peek_drain(&self) -> Option<Bytes> {
        if self.pass.kind == PassKind::Idle {
            return None;
        }
        self.c0
            .shards
            .iter()
            .find_map(|s| s.tables.read().current.first_key().cloned())
    }

    /// Removes and returns the smallest remaining entry of the pass,
    /// advancing the cursor and retaining a copy for concurrent readers.
    ///
    /// Panics if no pass is active.
    pub fn drain_next(&mut self) -> Option<(Bytes, Versioned)> {
        assert_ne!(self.pass.kind, PassKind::Idle, "no pass active");
        for shard in &self.c0.shards {
            let mut t = shard.tables.write();
            let Some((key, v)) = t.current.pop_first() else {
                continue;
            };
            let cost = ENTRY_OVERHEAD + key.len() + v.entry.payload_len();
            // ordering: AcqRel — watermark/progress adjustments; see the
            // counter field docs.
            self.c0.bytes_current.fetch_sub(cost, Ordering::AcqRel);
            self.c0.drained_bytes.fetch_add(cost, Ordering::AcqRel);
            if let PassKind::Snowshovel { last_drained } = &mut self.pass.kind {
                *last_drained = Some(key.clone());
            }
            // Keep a copy visible to concurrent readers until the merge
            // output is published. The cursor is now ≥ `key`, so a
            // re-insert lands in `behind` — each key drains at most once
            // per pass, so the retained table never sees a duplicate.
            t.retained.insert_unmerged(key.clone(), v.clone());
            self.c0.bytes_retained.fetch_add(cost, Ordering::AcqRel);
            return Some((key, v));
        }
        None
    }

    /// Advances the drain cursor to at least `key` without draining —
    /// called when the merge emits a `C1`-side key (§4.2: the cursor
    /// tracks the last key written to the *merge output*).
    pub fn advance_cursor(&mut self, key: &Bytes) {
        if let PassKind::Snowshovel { last_drained } = &mut self.pass.kind {
            if last_drained.as_ref().is_none_or(|c| key > c) {
                *last_drained = Some(key.clone());
            }
        }
    }

    /// True when the active pass has consumed every entry.
    pub fn pass_exhausted(&self) -> bool {
        self.pass.kind != PassKind::Idle
            && self
                .c0
                .shards
                .iter()
                .all(|s| s.tables.read().current.is_empty())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::types::AppendOperator;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn put(buf: &ConcurrentC0, key: &str, seq: u64) {
        buf.insert(b(key), Versioned::put(seq, b("v")), &AppendOperator);
    }

    fn drain_all(buf: &ConcurrentC0) -> Vec<Bytes> {
        let mut g = buf.drain_guard();
        let mut keys = Vec::new();
        while let Some((k, _)) = g.drain_next() {
            keys.push(k);
        }
        keys
    }

    #[test]
    fn keys_spread_across_shards_drain_in_key_order() {
        let buf = ConcurrentC0::new();
        // First bytes 0x10, 0x80, 0xF0 → shards 1, 8, 15.
        for k in ["\u{10}b", "\u{7f}x", "0a"] {
            put(&buf, k, 1);
        }
        buf.begin_pass(true);
        let drained = drain_all(&buf);
        assert_eq!(drained, vec![b("\u{10}b"), b("0a"), b("\u{7f}x")]);
        buf.end_pass();
        assert!(buf.is_empty());
    }

    #[test]
    fn snowshovel_insert_ahead_joins_pass() {
        let buf = ConcurrentC0::new();
        for k in ["b", "d", "f"] {
            put(&buf, k, 1);
        }
        buf.begin_pass(true);
        let (k, _) = buf.drain_guard().drain_next().unwrap();
        assert_eq!(k, b("b"));
        put(&buf, "c", 2); // ahead of cursor: joins this pass
        put(&buf, "a", 3); // behind: deferred
        let drained = drain_all(&buf);
        assert_eq!(drained, vec![b("c"), b("d"), b("f")]);
        buf.end_pass();
        assert_eq!(buf.get(b"a").unwrap().seqno, 3);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn insert_equal_to_cursor_is_deferred() {
        let buf = ConcurrentC0::new();
        put(&buf, "m", 1);
        buf.begin_pass(true);
        buf.drain_guard().drain_next().unwrap();
        put(&buf, "m", 2); // re-insert of the drained key: must defer
        assert!(buf.pass_exhausted());
        buf.end_pass();
        assert_eq!(buf.get(b"m").unwrap().seqno, 2);
    }

    #[test]
    fn frozen_pass_partitions_c0() {
        let buf = ConcurrentC0::new();
        put(&buf, "a", 1);
        put(&buf, "z", 1);
        buf.begin_pass(false);
        put(&buf, "z", 2);
        assert_eq!(buf.get(b"z").unwrap().seqno, 2);
        let drained = drain_all(&buf);
        assert_eq!(drained, vec![b("a"), b("z")]);
        buf.end_pass();
        assert_eq!(buf.get(b"z").unwrap().seqno, 2);
    }

    #[test]
    fn drained_entries_stay_readable_until_publish() {
        let buf = ConcurrentC0::new();
        put(&buf, "a", 1);
        put(&buf, "b", 2);
        buf.begin_pass(true);
        buf.drain_guard().drain_next().unwrap();
        assert_eq!(buf.get(b"a").unwrap().seqno, 1, "retained copy visible");
        assert!(buf.retained_bytes() > 0);
        buf.drain_guard().drain_next().unwrap();
        let before = buf.publish_epoch();
        buf.end_pass_with(|| ());
        assert_eq!(buf.publish_epoch(), before + 2, "publish bumps twice");
        assert!(buf.get(b"a").is_none(), "retained copies dropped");
        assert_eq!(buf.retained_bytes(), 0);
    }

    #[test]
    fn version_chain_exposes_delta_over_retained_base() {
        let buf = ConcurrentC0::new();
        buf.insert(b("k"), Versioned::put(1, b("base")), &AppendOperator);
        buf.begin_pass(true);
        buf.drain_guard().drain_next().unwrap();
        buf.insert(b("k"), Versioned::delta(2, b("+d")), &AppendOperator);
        let chain: Vec<u64> = buf.version_chain(b"k").iter().map(|v| v.seqno).collect();
        assert_eq!(chain, vec![2, 1], "fresh delta then retained base");
    }

    #[test]
    fn range_rows_spans_shards_and_keeps_tied_versions() {
        let buf = ConcurrentC0::new();
        buf.insert(b("a"), Versioned::put(1, b("v")), &AppendOperator);
        buf.insert(b("k"), Versioned::put(1, b("base")), &AppendOperator);
        buf.insert(b("z"), Versioned::put(1, b("v")), &AppendOperator);
        buf.begin_pass(true);
        {
            let mut g = buf.drain_guard();
            g.drain_next().unwrap(); // "a" retained
            g.drain_next().unwrap(); // "k" retained
        }
        buf.insert(b("k"), Versioned::delta(2, b("+d")), &AppendOperator);
        let rows: Vec<(Bytes, u64)> = buf
            .range_rows(b"", None)
            .into_iter()
            .map(|(k, v)| (k, v.seqno))
            .collect();
        assert_eq!(
            rows,
            vec![(b("a"), 1), (b("k"), 2), (b("k"), 1), (b("z"), 1)],
            "all versions, newest first on ties"
        );
        let bounded = buf.range_rows(b"k", Some(b"z"));
        assert_eq!(bounded.len(), 2, "delta + shadowed base, `z` excluded");
    }

    #[test]
    fn capped_pass_folds_remainder() {
        let buf = ConcurrentC0::new();
        buf.insert(b("a"), Versioned::put(1, b("a1")), &AppendOperator);
        buf.insert(b("k"), Versioned::put(2, b("base")), &AppendOperator);
        buf.begin_pass(true);
        buf.drain_guard().drain_next().unwrap(); // "a" → retained
        buf.insert(b("k"), Versioned::delta(3, b("+d")), &AppendOperator);
        // Cap fires with "k" undrained: fold + install + publish.
        let (displaced, leftover) = buf.end_capped_pass_with(&AppendOperator, || ());
        drop(displaced);
        assert!(leftover, "undrained entry must be reported as leftover");
        assert_eq!(buf.pass_mode(), PassMode::Idle);
        let v = buf.get(b"k").unwrap();
        assert_eq!(v.seqno, 3);
        assert_eq!(v.entry, crate::types::Entry::Put(b("base+d")));
        assert!(buf.get(b"a").is_none());
        assert_eq!(buf.retained_bytes(), 0);
        assert_eq!(buf.drained_bytes(), 0);
    }

    #[test]
    fn drain_progress_accounting() {
        let buf = ConcurrentC0::new();
        put(&buf, "a", 1);
        put(&buf, "b", 1);
        let total = buf.approx_bytes();
        buf.begin_pass(true);
        assert_eq!(buf.pass_start_bytes(), total);
        buf.drain_guard().drain_next().unwrap();
        assert!(buf.drained_bytes() > 0 && buf.drained_bytes() < total);
        buf.drain_guard().drain_next().unwrap();
        assert_eq!(buf.drained_bytes(), total);
        buf.end_pass();
    }

    #[test]
    fn parallel_inserts_from_many_threads_all_land() {
        let buf = std::sync::Arc::new(ConcurrentC0::new());
        let threads: Vec<_> = (0..4u8)
            .map(|t| {
                let buf = std::sync::Arc::clone(&buf);
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        let key = Bytes::from(vec![t * 0x40, (i >> 8) as u8, i as u8]);
                        buf.insert(
                            key,
                            Versioned::put(u64::from(i) + 1, b("v")),
                            &AppendOperator,
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(buf.len(), 800);
        buf.begin_pass(true);
        let drained = drain_all(&buf);
        assert_eq!(drained.len(), 800);
        assert!(drained.windows(2).all(|w| w[0] < w[1]), "key-order drain");
        buf.end_pass();
    }

    // A writer claims its seqno ticket before inserting, so an older
    // ticket can arrive after a newer version of the same key was drained
    // to `retained` — it then routes to `behind`. Reads must stay
    // seqno-monotone regardless of which table holds which version.
    #[test]
    fn older_ticket_behind_newer_retained_reads_stay_monotone() {
        let buf = ConcurrentC0::new();
        buf.insert(b("k"), Versioned::put(6, b("new")), &AppendOperator);
        buf.begin_pass(true);
        buf.drain_guard().drain_next().unwrap(); // k@6 to retained, cursor >= "k"
                                                 // The slow writer with the older ticket lands now: routes behind.
        buf.insert(b("k"), Versioned::put(5, b("old")), &AppendOperator);
        assert_eq!(buf.get(b"k").unwrap().seqno, 6, "newest seqno wins");
        let chain: Vec<u64> = buf.version_chain(b"k").iter().map(|v| v.seqno).collect();
        assert_eq!(chain, vec![6, 5], "chain is seqno-descending");
        let rows: Vec<u64> = buf
            .range_rows(b"", None)
            .into_iter()
            .map(|(_, v)| v.seqno)
            .collect();
        assert_eq!(rows, vec![6, 5], "range ties are seqno-descending");
    }

    // Same inversion, capped-pass shape: the cursor moved past "k" via a
    // C1-side emission while k@6 stayed undrained in `current`, then the
    // older ticket k@5 landed in `behind`. The end-of-pass fold must pick
    // the newer version, not whichever table it presumes fresher.
    #[test]
    fn capped_pass_fold_picks_newest_seqno() {
        let buf = ConcurrentC0::new();
        buf.insert(b("k"), Versioned::put(6, b("new")), &AppendOperator);
        buf.begin_pass(true);
        buf.drain_guard().advance_cursor(&b("k")); // merge emitted a C1 key ≥ "k"
        buf.insert(b("k"), Versioned::put(5, b("old")), &AppendOperator); // → behind
        let (displaced, leftover) = buf.end_capped_pass_with(&AppendOperator, || ());
        drop(displaced);
        assert!(leftover);
        let v = buf.get(b"k").unwrap();
        assert_eq!(v.seqno, 6);
        assert_eq!(v.entry, crate::types::Entry::Put(b("new")));
    }

    #[test]
    #[should_panic(expected = "pass already active")]
    fn double_begin_pass_panics() {
        let buf = ConcurrentC0::new();
        buf.begin_pass(true);
        buf.begin_pass(true);
    }

    #[test]
    #[should_panic(expected = "undrained")]
    fn end_pass_with_remaining_panics() {
        let buf = ConcurrentC0::new();
        put(&buf, "a", 1);
        buf.begin_pass(true);
        buf.end_pass();
    }
}
