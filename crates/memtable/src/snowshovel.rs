//! Snowshoveling (replacement-selection) support for `C0`.
//!
//! §4.2: "Snowshoveling fills RAM, writes back the lowest valued item, and
//! then reads a value from the input. It proceeds by writing out the lowest
//! key that comes after the last value written." For random input this
//! doubles the effective run length; combined with eliminating the
//! `C0`/`C0'` partition it gives the paper's "factor of four" claim.
//!
//! [`SnowshovelBuffer`] models `C0` in all three regimes:
//!
//! * **Idle** — no merge running; inserts land in the current table.
//! * **Snowshovel pass** — the `C0:C1` merge drains the current table in
//!   key order. Inserts *after* the drain cursor join the current pass
//!   (they will be consumed this sweep); inserts at or *behind* the cursor
//!   are deferred to a `behind` table for the next pass.
//! * **Frozen pass** — the classic non-snowshovel mode: the current table
//!   is sealed as `C0'` and every insert goes to the next table. This is
//!   the configuration the paper's ×4 claim is measured against.

use bytes::Bytes;

use crate::memtable::Memtable;
use crate::types::{MergeOperator, Versioned};

/// How the active merge pass consumes `C0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassKind {
    /// No pass active.
    Idle,
    /// Replacement-selection: inserts ahead of the cursor join the pass.
    Snowshovel {
        /// Last key handed to the merge; inserts ≤ this key are deferred.
        last_drained: Option<Bytes>,
    },
    /// `C0` frozen as `C0'`; all inserts deferred to the next table.
    Frozen,
}

/// The `C0` buffer: one or two memtables plus a drain cursor.
#[derive(Debug)]
pub struct SnowshovelBuffer {
    /// Entries the active pass will consume (all entries when idle).
    current: Memtable,
    /// Entries deferred to the next pass.
    behind: Memtable,
    /// Copies of entries already drained by the active pass. They are not
    /// yet visible in the published `C1` (the merge output is under
    /// construction), so readers must still find them here; the table is
    /// dropped when the pass ends and the new `C1` is published. Excluded
    /// from [`SnowshovelBuffer::approx_bytes`]: retained bytes are
    /// already accounted to the merge output for pacing purposes.
    retained: Memtable,
    pass: PassKind,
    /// Bytes in `current` when the pass began (the `|C0'|` of the
    /// inprogress estimator).
    pass_start_bytes: usize,
    /// Bytes drained so far in this pass.
    drained_bytes: usize,
}

impl Default for SnowshovelBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl SnowshovelBuffer {
    /// Creates an empty buffer.
    pub fn new() -> SnowshovelBuffer {
        SnowshovelBuffer {
            current: Memtable::new(),
            behind: Memtable::new(),
            retained: Memtable::new(),
            pass: PassKind::Idle,
            pass_start_bytes: 0,
            drained_bytes: 0,
        }
    }

    /// Total bytes across both tables — the quantity the spring-and-gear
    /// scheduler watermarks.
    pub fn approx_bytes(&self) -> usize {
        self.current.approx_bytes() + self.behind.approx_bytes()
    }

    /// Total distinct keys resident (keys may appear in both tables during
    /// a frozen pass; they are counted twice, matching memory use).
    pub fn len(&self) -> usize {
        self.current.len() + self.behind.len()
    }

    /// True when both tables are empty.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty() && self.behind.is_empty()
    }

    /// The active pass state.
    pub fn pass(&self) -> &PassKind {
        &self.pass
    }

    /// Inserts a write, routing by the pass state.
    pub fn insert(&mut self, key: Bytes, write: Versioned, op: &dyn MergeOperator) {
        match &self.pass {
            PassKind::Idle => self.current.insert(key, write, op),
            PassKind::Frozen => self.behind.insert(key, write, op),
            PassKind::Snowshovel { last_drained } => {
                let ahead = match last_drained {
                    None => true, // nothing drained yet: everything is ahead
                    Some(cursor) => key.as_ref() > cursor.as_ref(),
                };
                if ahead {
                    self.current.insert(key, write, op);
                } else {
                    self.behind.insert(key, write, op);
                }
            }
        }
    }

    /// Looks up `key`. During a pass the `behind` table is never older than
    /// `current` for the same key, so it is consulted first; entries
    /// already drained by the pass (retained for concurrent readers) come
    /// last.
    pub fn get(&self, key: &[u8]) -> Option<&Versioned> {
        self.behind
            .get(key)
            .or_else(|| self.current.get(key))
            .or_else(|| self.retained.get(key))
    }

    /// All resident versions of `key`, newest first (`behind` → `current`
    /// → `retained`). Unlike [`SnowshovelBuffer::get`], this exposes a
    /// fresher `Delta` *and* the older base it shadows, so the read path
    /// can fold them like any other component chain.
    pub fn version_chain<'a>(&'a self, key: &[u8]) -> impl Iterator<Item = &'a Versioned> {
        self.behind
            .get(key)
            .into_iter()
            .chain(self.current.get(key))
            .chain(self.retained.get(key))
    }

    /// Begins a merge pass. `snowshovel=true` starts a replacement-selection
    /// sweep; `false` freezes the current table as `C0'`.
    ///
    /// Panics if a pass is already active.
    pub fn begin_pass(&mut self, snowshovel: bool) {
        assert_eq!(self.pass, PassKind::Idle, "pass already active");
        assert!(
            self.behind.is_empty(),
            "behind table must be empty between passes"
        );
        debug_assert!(
            self.retained.is_empty(),
            "retained table must be empty between passes"
        );
        self.pass = if snowshovel {
            PassKind::Snowshovel { last_drained: None }
        } else {
            PassKind::Frozen
        };
        self.pass_start_bytes = self.current.approx_bytes();
        self.drained_bytes = 0;
    }

    /// The smallest key the pass would drain next, if any.
    pub fn peek_drain(&self) -> Option<&Bytes> {
        match self.pass {
            PassKind::Idle => None,
            _ => self.current.first_key(),
        }
    }

    /// Removes and returns the smallest remaining entry of the pass,
    /// advancing the cursor.
    ///
    /// Panics if no pass is active.
    pub fn drain_next(&mut self) -> Option<(Bytes, Versioned)> {
        assert_ne!(self.pass, PassKind::Idle, "no pass active");
        let (key, v) = self.current.pop_first()?;
        self.drained_bytes += crate::memtable::ENTRY_OVERHEAD + key.len() + v.entry.payload_len();
        if let PassKind::Snowshovel { last_drained } = &mut self.pass {
            *last_drained = Some(key.clone());
        }
        // Keep a copy visible to concurrent readers until the merge output
        // is published. The cursor is now ≥ `key`, so a re-insert of the
        // same key lands in `behind`, never back in `current` — each key
        // is drained at most once per pass.
        self.retained.insert_unmerged(key.clone(), v.clone());
        Some((key, v))
    }

    /// Advances the drain cursor to at least `key` without draining.
    ///
    /// §4.2: snowshoveling "proceeds by writing out the lowest key that
    /// comes after the last value written" — the last value *written to
    /// the merge output*, which may have come from `C1` rather than `C0`.
    /// The merge calls this when it emits a `C1`-side key, so that an
    /// insert landing between the last `C0` drain and the merge output
    /// cursor is correctly deferred to the next pass.
    pub fn advance_cursor(&mut self, key: &Bytes) {
        if let PassKind::Snowshovel { last_drained } = &mut self.pass {
            if last_drained.as_ref().is_none_or(|c| key > c) {
                *last_drained = Some(key.clone());
            }
        }
    }

    /// True when the active pass has consumed every entry.
    pub fn pass_exhausted(&self) -> bool {
        !matches!(self.pass, PassKind::Idle) && self.current.is_empty()
    }

    /// Ends the pass: the deferred table becomes current.
    ///
    /// Panics if entries remain undrained or no pass is active.
    pub fn end_pass(&mut self) {
        assert_ne!(self.pass, PassKind::Idle, "no pass active");
        assert!(
            self.current.is_empty(),
            "pass ended with {} entries undrained",
            self.current.len()
        );
        self.current = self.behind.take();
        self.retained.clear();
        self.pass = PassKind::Idle;
        self.pass_start_bytes = 0;
        self.drained_bytes = 0;
    }

    /// Pre-computes the table a capped pass will leave behind: the
    /// deferred (`behind`) entries with every undrained `current` entry
    /// folded in as the *older* version (a run-length cap stopped the
    /// merge early, §4.2 discussion of adversarial inputs).
    ///
    /// `&self` so the O(|C0|) operator folding can run under a read lock
    /// (concurrent readers proceed); the result is then installed by
    /// [`SnowshovelBuffer::end_pass_installing`] in an O(1) critical
    /// section. The buffer must not change between the two calls —
    /// callers hold the unique write handle across both.
    pub fn fold_remainder(&self, op: &dyn MergeOperator) -> Memtable {
        assert_ne!(self.pass, PassKind::Idle, "no pass active");
        let mut merged = self.behind.clone();
        for (key, v) in self.current.iter() {
            merged.insert_older(key.clone(), v.clone(), op);
        }
        merged
    }

    /// Ends a capped pass by installing `merged` (built by
    /// [`SnowshovelBuffer::fold_remainder`]) as the new current table.
    /// The displaced tables are returned so the caller can drop them
    /// outside its critical section.
    ///
    /// Panics if no pass is active.
    #[must_use = "drop the displaced tables outside the critical section"]
    pub fn end_pass_installing(&mut self, merged: Memtable) -> [Memtable; 3] {
        assert_ne!(self.pass, PassKind::Idle, "no pass active");
        let leftover = self.current.take();
        let behind = self.behind.take();
        let retained = self.retained.take();
        self.current = merged;
        self.pass = PassKind::Idle;
        self.pass_start_bytes = 0;
        self.drained_bytes = 0;
        [leftover, behind, retained]
    }

    /// Bytes in the `current` (pass input) table.
    pub fn current_bytes(&self) -> usize {
        self.current.approx_bytes()
    }

    /// Bytes in the `behind` (deferred) table — what accumulates toward the
    /// next pass while one is active.
    pub fn behind_bytes(&self) -> usize {
        self.behind.approx_bytes()
    }

    /// Bytes in the pass's input when it began.
    pub fn pass_start_bytes(&self) -> usize {
        self.pass_start_bytes
    }

    /// Bytes drained so far in this pass.
    pub fn drained_bytes(&self) -> usize {
        self.drained_bytes
    }

    /// Bytes held for concurrent readers on behalf of the active pass
    /// (already drained, not yet published in the merge output).
    pub fn retained_bytes(&self) -> usize {
        self.retained.approx_bytes()
    }

    /// Iterates every resident entry in key order. When a key appears in
    /// more than one table, *all* of its versions are yielded, newest
    /// first (`behind` → `current` → `retained`) — the streaming analogue
    /// of [`SnowshovelBuffer::version_chain`]. Consumers must fold tied
    /// versions (e.g. via a merge iterator); collapsing to the first
    /// would lose the base under a fresher `Delta`.
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Versioned)> {
        DualIter {
            a: self.behind.iter().peekable(),
            b: DualIter {
                a: self.current.iter().peekable(),
                b: self.retained.iter().peekable(),
            }
            .peekable(),
        }
    }

    /// Iterates entries with key ≥ `from`, with the same all-versions
    /// newest-first tie semantics as [`SnowshovelBuffer::iter`].
    pub fn range_from<'a>(
        &'a self,
        from: &[u8],
    ) -> impl Iterator<Item = (&'a Bytes, &'a Versioned)> {
        DualIter {
            a: self.behind.range_from(from).peekable(),
            b: DualIter {
                a: self.current.range_from(from).peekable(),
                b: self.retained.range_from(from).peekable(),
            }
            .peekable(),
        }
    }
}

/// Merge of two key-ordered iterators. On ties, `a` (the fresher stream)
/// is yielded first and `b`'s copy follows — no version is dropped.
/// Shared with [`crate::concurrent`], whose per-shard iteration needs the
/// identical all-versions newest-first tie semantics.
pub(crate) struct DualIter<'a, A, B>
where
    A: Iterator<Item = (&'a Bytes, &'a Versioned)>,
    B: Iterator<Item = (&'a Bytes, &'a Versioned)>,
{
    pub(crate) a: std::iter::Peekable<A>,
    pub(crate) b: std::iter::Peekable<B>,
}

impl<'a, A, B> Iterator for DualIter<'a, A, B>
where
    A: Iterator<Item = (&'a Bytes, &'a Versioned)>,
    B: Iterator<Item = (&'a Bytes, &'a Versioned)>,
{
    type Item = (&'a Bytes, &'a Versioned);

    fn next(&mut self) -> Option<Self::Item> {
        match (self.a.peek(), self.b.peek()) {
            (Some((ka, _)), Some((kb, _))) => {
                if ka < kb {
                    self.a.next()
                } else if kb < ka {
                    self.b.next()
                } else {
                    // Same key: a (fresher) goes first, but b's copy is
                    // *kept* — it surfaces on the next call, so consumers
                    // see every version newest-first and can fold them.
                    // Dropping the shadowed copy would be lossy for
                    // deltas: a fresh `behind` Delta can shadow a base
                    // that lives only in `retained`/`current` mid-pass.
                    self.a.next()
                }
            }
            (Some(_), None) => self.a.next(),
            (None, _) => self.b.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::types::AppendOperator;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn put(buf: &mut SnowshovelBuffer, key: &str, seq: u64) {
        buf.insert(b(key), Versioned::put(seq, b("v")), &AppendOperator);
    }

    #[test]
    fn idle_inserts_and_reads() {
        let mut buf = SnowshovelBuffer::new();
        put(&mut buf, "k", 1);
        assert_eq!(buf.get(b"k").unwrap().seqno, 1);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn snowshovel_insert_ahead_joins_pass() {
        let mut buf = SnowshovelBuffer::new();
        for k in ["b", "d", "f"] {
            put(&mut buf, k, 1);
        }
        buf.begin_pass(true);
        let (k, _) = buf.drain_next().unwrap();
        assert_eq!(k, b("b"));
        // "c" is ahead of the cursor ("b"): joins this pass.
        put(&mut buf, "c", 2);
        // "a" is behind: deferred.
        put(&mut buf, "a", 3);
        let mut drained = vec![];
        while let Some((k, _)) = buf.drain_next() {
            drained.push(k);
        }
        assert_eq!(drained, vec![b("c"), b("d"), b("f")]);
        buf.end_pass();
        // The deferred entry is now current.
        assert_eq!(buf.get(b"a").unwrap().seqno, 3);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn snowshovel_insert_equal_to_cursor_is_deferred() {
        let mut buf = SnowshovelBuffer::new();
        put(&mut buf, "m", 1);
        buf.begin_pass(true);
        buf.drain_next().unwrap(); // drains "m"
        put(&mut buf, "m", 2); // re-insert the drained key: must defer
        assert!(buf.pass_exhausted());
        buf.end_pass();
        assert_eq!(buf.get(b"m").unwrap().seqno, 2);
    }

    #[test]
    fn sorted_input_streams_through_one_pass() {
        // §4.2: "if the input is already sorted ... snowshoveling produces a
        // run containing the entire input."
        let mut buf = SnowshovelBuffer::new();
        for i in 0..10 {
            put(&mut buf, &format!("k{i:02}"), i);
        }
        buf.begin_pass(true);
        let mut drained = 0;
        for i in 10..100u64 {
            // Keep inserting sorted keys while draining: every insert is
            // ahead of the cursor, so the pass never ends.
            while buf
                .peek_drain()
                .is_some_and(|k| k < &b(&format!("k{i:02}")))
            {
                buf.drain_next().unwrap();
                drained += 1;
            }
            put(&mut buf, &format!("k{i:02}"), i);
        }
        while buf.drain_next().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 100, "entire sorted input fits one run");
        buf.end_pass();
        assert!(buf.is_empty());
    }

    #[test]
    fn reverse_input_defers_everything() {
        // §4.2: "in the worst case, updates are in reverse sorted order,
        // and the run is the size of RAM."
        let mut buf = SnowshovelBuffer::new();
        for i in (50..60).rev() {
            put(&mut buf, &format!("k{i}"), 1);
        }
        buf.begin_pass(true);
        buf.drain_next().unwrap(); // cursor at "k50"
        for i in (40..50).rev() {
            put(&mut buf, &format!("k{i}"), 2); // all behind the cursor
        }
        let mut n = 1;
        while buf.drain_next().is_some() {
            n += 1;
        }
        assert_eq!(n, 10, "only the original RAM-full is in the run");
        buf.end_pass();
        assert_eq!(buf.len(), 10, "reverse inserts all deferred");
    }

    #[test]
    fn frozen_pass_partitions_c0() {
        let mut buf = SnowshovelBuffer::new();
        put(&mut buf, "a", 1);
        put(&mut buf, "z", 1);
        buf.begin_pass(false);
        // Inserting "z" again while frozen goes to the next table even
        // though it is ahead of any cursor.
        put(&mut buf, "z", 2);
        // Read sees the fresher copy.
        assert_eq!(buf.get(b"z").unwrap().seqno, 2);
        let mut drained = vec![];
        while let Some((k, v)) = buf.drain_next() {
            drained.push((k, v.seqno));
        }
        assert_eq!(drained, vec![(b("a"), 1), (b("z"), 1)]);
        buf.end_pass();
        assert_eq!(buf.get(b"z").unwrap().seqno, 2);
    }

    #[test]
    fn iter_yields_all_versions_newest_first() {
        let mut buf = SnowshovelBuffer::new();
        put(&mut buf, "a", 1);
        put(&mut buf, "b", 1);
        buf.begin_pass(false);
        put(&mut buf, "b", 2);
        put(&mut buf, "c", 2);
        // Both copies of "b" surface, fresher first — consumers fold.
        let items: Vec<_> = buf.iter().map(|(k, v)| (k.clone(), v.seqno)).collect();
        assert_eq!(
            items,
            vec![(b("a"), 1), (b("b"), 2), (b("b"), 1), (b("c"), 2)]
        );
    }

    #[test]
    fn range_from_exposes_delta_over_retained_base() {
        // The scan-path shape of `version_chain_exposes_delta_over_
        // retained_base`: mid-pass, a key's base lives only in `retained`
        // while a fresher Delta sits in `behind`. The range iterator must
        // yield both (newest first) or the scan would fold the delta over
        // an absent base.
        let mut buf = SnowshovelBuffer::new();
        buf.insert(b("k"), Versioned::put(1, b("base")), &AppendOperator);
        buf.begin_pass(true);
        buf.drain_next().unwrap(); // base now retained
        buf.insert(b("k"), Versioned::delta(2, b("+d")), &AppendOperator);
        let versions: Vec<_> = buf.range_from(b"k").map(|(_, v)| v.seqno).collect();
        assert_eq!(versions, vec![2, 1], "delta then shadowed base");
    }

    #[test]
    fn range_from_exposes_delta_over_frozen_base() {
        // Frozen-pass variant: the base is still in `current` (undrained)
        // when the delta lands in `behind`.
        let mut buf = SnowshovelBuffer::new();
        buf.insert(b("k"), Versioned::put(1, b("base")), &AppendOperator);
        buf.begin_pass(false);
        buf.insert(b("k"), Versioned::delta(2, b("+d")), &AppendOperator);
        let versions: Vec<_> = buf.range_from(b"k").map(|(_, v)| v.seqno).collect();
        assert_eq!(versions, vec![2, 1], "delta then shadowed base");
    }

    #[test]
    fn range_from_spans_both_tables() {
        let mut buf = SnowshovelBuffer::new();
        put(&mut buf, "a", 1);
        put(&mut buf, "c", 1);
        buf.begin_pass(false);
        put(&mut buf, "b", 2);
        let keys: Vec<_> = buf.range_from(b"b").map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("b"), b("c")]);
    }

    #[test]
    fn drain_progress_accounting() {
        let mut buf = SnowshovelBuffer::new();
        put(&mut buf, "a", 1);
        put(&mut buf, "b", 1);
        let total = buf.approx_bytes();
        buf.begin_pass(true);
        assert_eq!(buf.pass_start_bytes(), total);
        buf.drain_next().unwrap();
        assert!(buf.drained_bytes() > 0 && buf.drained_bytes() < total);
        buf.drain_next().unwrap();
        assert_eq!(buf.drained_bytes(), total);
        buf.end_pass();
    }

    #[test]
    #[should_panic(expected = "pass already active")]
    fn double_begin_pass_panics() {
        let mut buf = SnowshovelBuffer::new();
        buf.begin_pass(true);
        buf.begin_pass(true);
    }

    #[test]
    #[should_panic(expected = "undrained")]
    fn end_pass_with_remaining_panics() {
        let mut buf = SnowshovelBuffer::new();
        put(&mut buf, "a", 1);
        buf.begin_pass(true);
        buf.end_pass();
    }

    #[test]
    fn drained_entries_stay_readable_until_pass_ends() {
        let mut buf = SnowshovelBuffer::new();
        put(&mut buf, "a", 1);
        put(&mut buf, "b", 2);
        buf.begin_pass(true);
        buf.drain_next().unwrap(); // drains "a"
                                   // "a" is gone from `current` but must still be readable: the merge
                                   // output containing it has not been published yet.
        assert_eq!(buf.get(b"a").unwrap().seqno, 1);
        assert!(buf.retained_bytes() > 0);
        buf.drain_next().unwrap();
        buf.end_pass();
        assert!(buf.get(b"a").is_none(), "retained copies dropped at end");
        assert_eq!(buf.retained_bytes(), 0);
    }

    #[test]
    fn reinsert_of_drained_key_shadows_retained_copy() {
        let mut buf = SnowshovelBuffer::new();
        put(&mut buf, "k", 1);
        buf.begin_pass(true);
        buf.drain_next().unwrap();
        put(&mut buf, "k", 5); // behind the cursor → deferred
        assert_eq!(buf.get(b"k").unwrap().seqno, 5, "behind wins over retained");
        let chain: Vec<u64> = buf.version_chain(b"k").map(|v| v.seqno).collect();
        assert_eq!(chain, vec![5, 1], "newest first: behind then retained");
    }

    #[test]
    fn version_chain_exposes_delta_over_retained_base() {
        let mut buf = SnowshovelBuffer::new();
        buf.insert(b("k"), Versioned::put(1, b("base")), &AppendOperator);
        buf.begin_pass(true);
        buf.drain_next().unwrap(); // base now retained
        buf.insert(b("k"), Versioned::delta(2, b("+d")), &AppendOperator);
        let chain: Vec<_> = buf.version_chain(b"k").collect();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].seqno, 2, "fresh delta first");
        assert_eq!(chain[1].seqno, 1, "retained base second");
    }

    #[test]
    fn capped_pass_folds_remainder_outside_install() {
        let mut buf = SnowshovelBuffer::new();
        buf.insert(b("a"), Versioned::put(1, b("a1")), &AppendOperator);
        buf.insert(b("k"), Versioned::put(2, b("base")), &AppendOperator);
        buf.begin_pass(true);
        // Drain "a" → retained, then defer a fresher delta for the
        // still-undrained "k".
        buf.drain_next().unwrap();
        buf.insert(b("k"), Versioned::delta(3, b("+d")), &AppendOperator);
        // Cap fires with "k" undrained: fold, then install.
        let merged = buf.fold_remainder(&AppendOperator);
        let displaced = buf.end_pass_installing(merged);
        drop(displaced);
        assert_eq!(buf.pass(), &PassKind::Idle);
        // The undrained base folded under the deferred delta.
        let v = buf.get(b"k").unwrap();
        assert_eq!(v.seqno, 3);
        assert_eq!(v.entry, crate::types::Entry::Put(b("base+d")));
        // Drained-and-retained copies are gone.
        assert!(buf.get(b"a").is_none());
        assert_eq!(buf.retained_bytes(), 0);
        assert_eq!(buf.drained_bytes(), 0);
    }

    #[test]
    fn iter_spans_retained_entries() {
        let mut buf = SnowshovelBuffer::new();
        put(&mut buf, "a", 1);
        put(&mut buf, "c", 1);
        buf.begin_pass(true);
        buf.drain_next().unwrap(); // "a" retained
        put(&mut buf, "b", 2); // joins pass (ahead of cursor "a")
        let keys: Vec<_> = buf.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("a"), b("b"), b("c")]);
        let from_b: Vec<_> = buf.range_from(b"b").map(|(k, _)| k.clone()).collect();
        assert_eq!(from_b, vec![b("b"), b("c")]);
    }
}
