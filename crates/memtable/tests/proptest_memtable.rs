//! Property-based tests for `C0`: folding semantics and snowshoveling
//! invariants under arbitrary interleavings.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    missing_debug_implementations
)]

use bytes::Bytes;
use proptest::prelude::*;

use blsm_memtable::{
    merge_versions, AddOperator, AppendOperator, Entry, Memtable, SnowshovelBuffer, Versioned,
};

fn key(k: u8) -> Bytes {
    Bytes::from(format!("k{k:03}"))
}

#[derive(Debug, Clone)]
enum Write {
    Put(u8, u8),
    Delta(u8, u8),
    Tombstone(u8),
}

fn write_strategy() -> impl Strategy<Value = Write> {
    prop_oneof![
        3 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Write::Put(k % 32, v)),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Write::Delta(k % 32, v)),
        1 => any::<u8>().prop_map(|k| Write::Tombstone(k % 32)),
    ]
}

/// Model of what a key should resolve to given its full write history.
fn model_resolve(history: &[Write]) -> Option<Vec<u8>> {
    let mut state: Option<Vec<u8>> = None;
    let mut exists = false;
    for w in history {
        match w {
            Write::Put(_, v) => {
                state = Some(vec![*v]);
                exists = true;
            }
            Write::Delta(_, d) => {
                let mut s = state.take().unwrap_or_default();
                s.push(*d);
                state = Some(s);
                exists = true;
            }
            Write::Tombstone(_) => {
                state = None;
                exists = false;
            }
        }
    }
    if exists {
        Some(state.unwrap_or_default())
    } else {
        None
    }
}

proptest! {
    /// Folding writes into the memtable one at a time gives the same
    /// resolution as applying the whole history at once.
    #[test]
    fn memtable_folding_matches_history(ops in proptest::collection::vec(write_strategy(), 1..120)) {
        let op = AppendOperator;
        let mut m = Memtable::new();
        for (seq, w) in ops.iter().enumerate() {
            let (k, v) = match w {
                Write::Put(k, v) => (*k, Versioned::put(seq as u64, Bytes::from(vec![*v]))),
                Write::Delta(k, v) => (*k, Versioned::delta(seq as u64, Bytes::from(vec![*v]))),
                Write::Tombstone(k) => (*k, Versioned::tombstone(seq as u64)),
            };
            m.insert(key(k), v, &op);
        }
        for k in 0..32u8 {
            let history: Vec<Write> = ops
                .iter()
                .filter(|w| matches!(w, Write::Put(kk, _) | Write::Delta(kk, _) | Write::Tombstone(kk) if *kk == k))
                .cloned()
                .collect();
            if history.is_empty() {
                prop_assert!(m.get(&key(k)).is_none());
                continue;
            }
            let want = model_resolve(&history);
            // The memtable entry, resolved at the bottom (no disk below).
            let resolved = m
                .get(&key(k))
                .and_then(|v| merge_versions(&op, std::slice::from_ref(v), true));
            let got = resolved.map(|v| match v.entry {
                Entry::Put(b) => b.to_vec(),
                other => panic!("bottom resolution must be a base record, got {other:?}"),
            });
            prop_assert_eq!(got, want, "key {}", k);
        }
    }

    /// Byte accounting never goes negative and reaches exactly zero when
    /// the table is drained.
    #[test]
    fn byte_accounting_is_exact(ops in proptest::collection::vec(write_strategy(), 1..100)) {
        let op = AppendOperator;
        let mut m = Memtable::new();
        for (seq, w) in ops.iter().enumerate() {
            let (k, v) = match w {
                Write::Put(k, v) => (*k, Versioned::put(seq as u64, Bytes::from(vec![*v; 5]))),
                Write::Delta(k, v) => (*k, Versioned::delta(seq as u64, Bytes::from(vec![*v]))),
                Write::Tombstone(k) => (*k, Versioned::tombstone(seq as u64)),
            };
            m.insert(key(k), v, &op);
        }
        prop_assert!(m.approx_bytes() > 0);
        while m.pop_first().is_some() {}
        prop_assert_eq!(m.approx_bytes(), 0);
        prop_assert_eq!(m.len(), 0);
    }

    /// Snowshovel invariant: across any interleaving of drains and
    /// inserts, (a) drained keys are strictly increasing within a pass,
    /// (b) no write is ever lost — every key ends up either drained or
    /// still resident, with the resident version at least as new.
    #[test]
    fn snowshovel_never_loses_or_reorders(
        preload in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40),
        interleave in proptest::collection::vec((any::<bool>(), any::<u8>(), any::<u8>()), 0..80),
    ) {
        let op = AppendOperator;
        let mut buf = SnowshovelBuffer::new();
        let mut seq = 0u64;
        let mut latest_seq = std::collections::HashMap::new();
        for (k, v) in &preload {
            buf.insert(key(k % 32), Versioned::put(seq, Bytes::from(vec![*v])), &op);
            latest_seq.insert(k % 32, seq);
            seq += 1;
        }
        buf.begin_pass(true);
        let mut drained: Vec<(Bytes, u64)> = Vec::new();
        let mut last_drained_key: Option<Bytes> = None;
        for (do_drain, k, v) in &interleave {
            if *do_drain {
                if let Some((dk, dv)) = buf.drain_next() {
                    if let Some(last) = &last_drained_key {
                        prop_assert!(dk > last, "drain went backwards");
                    }
                    last_drained_key = Some(dk.clone());
                    drained.push((dk, dv.seqno));
                }
            } else {
                buf.insert(key(k % 32), Versioned::put(seq, Bytes::from(vec![*v])), &op);
                latest_seq.insert(k % 32, seq);
                seq += 1;
            }
        }
        while let Some((dk, dv)) = buf.drain_next() {
            if let Some(last) = &last_drained_key {
                prop_assert!(dk > last, "final drain went backwards");
            }
            last_drained_key = Some(dk.clone());
            drained.push((dk, dv.seqno));
        }
        buf.end_pass();
        // Every key with a write must be resident (the pass output is
        // modelled as merged away; residual keys must carry their newest
        // seqno unless that version was drained).
        for (k, want_seq) in &latest_seq {
            let resident = buf.get(&key(*k)).map(|v| v.seqno);
            let drained_newest = drained
                .iter()
                .filter(|(dk, _)| dk == &key(*k))
                .map(|(_, s)| *s)
                .max();
            let newest = resident.into_iter().chain(drained_newest).max();
            prop_assert_eq!(newest, Some(*want_seq), "key {} lost its newest write", k);
        }
    }

    /// merge_versions agrees with sequential application for the counter
    /// operator, in any mix of puts/deltas/tombstones.
    #[test]
    fn merge_versions_matches_sequential_counter(ops in proptest::collection::vec(write_strategy(), 1..12)) {
        let op = AddOperator;
        // Build newest-first version stack for a single key.
        let versions: Vec<Versioned> = ops
            .iter()
            .enumerate()
            .rev()
            .map(|(seq, w)| match w {
                Write::Put(_, v) => Versioned::put(seq as u64, Bytes::copy_from_slice(&(*v as i64).to_le_bytes())),
                Write::Delta(_, v) => Versioned::delta(seq as u64, Bytes::copy_from_slice(&(*v as i64).to_le_bytes())),
                Write::Tombstone(_) => Versioned::tombstone(seq as u64),
            })
            .collect();
        // Sequential model.
        let mut state: Option<i64> = None;
        for w in &ops {
            match w {
                Write::Put(_, v) => state = Some(*v as i64),
                Write::Delta(_, v) => state = Some(state.unwrap_or(0) + *v as i64),
                Write::Tombstone(_) => state = None,
            }
        }
        let got = merge_versions(&op, &versions, true).map(|v| match v.entry {
            Entry::Put(b) => i64::from_le_bytes(b[..8].try_into().unwrap()),
            other => panic!("bottom must yield base records, got {other:?}"),
        });
        prop_assert_eq!(got, state);
    }
}
