//! Equivalence property: `ConcurrentC0` driven from a single thread is
//! observationally identical to the `SnowshovelBuffer` oracle — same
//! resolutions, same drain sequence, same byte accounting — under
//! arbitrary interleavings of inserts, passes, drains, cursor
//! advancement, and both clean and capped pass endings. The concurrent
//! structure's extra machinery (shards, atomics, epoch) must be
//! invisible at this level; its thread-safety is covered separately by
//! the hammer tests and the model checker.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    missing_debug_implementations
)]

use bytes::Bytes;
use proptest::prelude::*;

use blsm_memtable::{AppendOperator, ConcurrentC0, SnowshovelBuffer, Versioned};

const KEYS: u8 = 32;

/// Keys whose first byte sweeps the full top-nibble range, so the
/// concurrent side exercises all sixteen shards (the oracle is
/// oblivious; equivalence must hold regardless of routing).
fn key(k: u8) -> Bytes {
    let k = k % KEYS;
    Bytes::from(vec![k.wrapping_mul(8), k])
}

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delta(u8, u8),
    Tombstone(u8),
    /// Begin a pass (`true` = snowshovel, `false` = frozen).
    BeginPass(bool),
    Drain,
    AdvanceCursor(u8),
    /// End the pass: clean `end_pass` when exhausted, else the capped
    /// fold-remainder path.
    EndPass,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Delta(k, v)),
        1 => any::<u8>().prop_map(Op::Tombstone),
        1 => any::<bool>().prop_map(Op::BeginPass),
        4 => Just(Op::Drain),
        1 => any::<u8>().prop_map(Op::AdvanceCursor),
        1 => Just(Op::EndPass),
    ]
}

/// Asserts every observer the two structures share agrees.
/// (`prop_assert*` panics in the vendored proptest shim, so this is a
/// plain function rather than one returning `TestCaseError`.)
fn assert_observers_match(oracle: &SnowshovelBuffer, conc: &ConcurrentC0) {
    prop_assert_eq!(oracle.len(), conc.len(), "len diverged");
    prop_assert_eq!(oracle.is_empty(), conc.is_empty());
    prop_assert_eq!(oracle.approx_bytes(), conc.approx_bytes(), "approx_bytes");
    prop_assert_eq!(oracle.current_bytes(), conc.current_bytes(), "current");
    prop_assert_eq!(oracle.behind_bytes(), conc.behind_bytes(), "behind");
    prop_assert_eq!(oracle.retained_bytes(), conc.retained_bytes(), "retained");
    prop_assert_eq!(oracle.drained_bytes(), conc.drained_bytes(), "drained");
    prop_assert_eq!(
        oracle.pass_start_bytes(),
        conc.pass_start_bytes(),
        "pass_start"
    );
    for k in 0..KEYS {
        let kb = key(k);
        prop_assert_eq!(
            oracle.get(&kb).cloned(),
            conc.get(&kb),
            "get({}) diverged",
            k
        );
        let oracle_chain: Vec<Versioned> = oracle.version_chain(&kb).cloned().collect();
        prop_assert_eq!(oracle_chain, conc.version_chain(&kb), "chain({})", k);
    }
    // Full-range scan, all versions, newest-first ties.
    let oracle_rows: Vec<(Bytes, Versioned)> = oracle
        .range_from(&[])
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    prop_assert_eq!(oracle_rows, conc.range_rows(&[], None), "range scan");
}

proptest! {
    /// Drives the identical operation sequence through both structures
    /// and checks every shared observer after each step.
    #[test]
    fn concurrent_c0_matches_snowshovel_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let op = AppendOperator;
        let mut oracle = SnowshovelBuffer::new();
        let conc = ConcurrentC0::new();
        let mut seq = 0u64;
        let mut in_pass = false;
        let mut snowshovel_pass = false;
        // The merge-order cursor, tracked to honor the drain contract:
        // the engine interleaves `drain_next` and `advance_cursor` in
        // globally ascending key order, so it never drains a key at or
        // below the cursor (`drain_next` would move the cursor backward
        // and break the behind-is-newer invariant both structures rely
        // on). Keys that fall at/below the cursor undrained are exactly
        // what the capped pass ending folds back in.
        let mut cursor: Option<Bytes> = None;

        for o in &ops {
            match o {
                Op::Put(k, v) => {
                    let w = Versioned::put(seq, Bytes::from(vec![*v]));
                    oracle.insert(key(*k), w.clone(), &op);
                    conc.insert(key(*k), w, &op);
                    seq += 1;
                }
                Op::Delta(k, v) => {
                    let w = Versioned::delta(seq, Bytes::from(vec![*v]));
                    oracle.insert(key(*k), w.clone(), &op);
                    conc.insert(key(*k), w, &op);
                    seq += 1;
                }
                Op::Tombstone(k) => {
                    let w = Versioned::tombstone(seq);
                    oracle.insert(key(*k), w.clone(), &op);
                    conc.insert(key(*k), w, &op);
                    seq += 1;
                }
                Op::BeginPass(snowshovel) => {
                    if !in_pass {
                        oracle.begin_pass(*snowshovel);
                        conc.begin_pass(*snowshovel);
                        in_pass = true;
                        snowshovel_pass = *snowshovel;
                        cursor = None;
                    }
                }
                Op::Drain => {
                    let peek = oracle.peek_drain().cloned();
                    let in_merge_order = !snowshovel_pass
                        || match (&peek, &cursor) {
                            (Some(k), Some(c)) => k > c,
                            _ => true,
                        };
                    if in_pass && in_merge_order {
                        prop_assert_eq!(
                            peek,
                            conc.drain_guard().peek_drain(),
                            "peek diverged"
                        );
                        let a = oracle.drain_next();
                        let b = conc.drain_guard().drain_next();
                        prop_assert_eq!(&a, &b, "drain sequence diverged");
                        prop_assert_eq!(oracle.pass_exhausted(), conc.pass_exhausted());
                        if let Some((dk, _)) = a {
                            cursor = Some(dk);
                        }
                    }
                }
                Op::AdvanceCursor(k) => {
                    if in_pass {
                        let kb = key(*k);
                        oracle.advance_cursor(&kb);
                        conc.drain_guard().advance_cursor(&kb);
                        if snowshovel_pass && cursor.as_ref().is_none_or(|c| kb > c) {
                            cursor = Some(kb);
                        }
                    }
                }
                Op::EndPass => {
                    if in_pass {
                        if oracle.pass_exhausted() {
                            oracle.end_pass();
                            conc.end_pass();
                        } else {
                            let merged = oracle.fold_remainder(&op);
                            let displaced = oracle.end_pass_installing(merged);
                            let (conc_displaced, leftover) =
                                conc.end_capped_pass_with(&op, || ());
                            prop_assert_eq!(leftover, !oracle.is_empty());
                            drop(displaced);
                            drop(conc_displaced);
                        }
                        in_pass = false;
                    }
                }
            }
            assert_observers_match(&oracle, &conc);
        }

        // Close any open pass the same way the engine would: drain the
        // keys still ahead of the cursor, then end clean if that emptied
        // the pass, capped otherwise (entries at/below the cursor are
        // folded back, exactly like a run-length-capped merge).
        if in_pass {
            loop {
                let peek = oracle.peek_drain().cloned();
                let in_merge_order = !snowshovel_pass
                    || match (&peek, &cursor) {
                        (Some(k), Some(c)) => k > c,
                        _ => true,
                    };
                if peek.is_none() || !in_merge_order {
                    break;
                }
                let a = oracle.drain_next();
                let b = conc.drain_guard().drain_next();
                prop_assert_eq!(&a, &b, "final drain diverged");
                if let Some((dk, _)) = a {
                    cursor = Some(dk);
                }
            }
            if oracle.pass_exhausted() {
                oracle.end_pass();
                conc.end_pass();
            } else {
                let merged = oracle.fold_remainder(&op);
                let displaced = oracle.end_pass_installing(merged);
                let (conc_displaced, leftover) = conc.end_capped_pass_with(&op, || ());
                prop_assert_eq!(leftover, !oracle.is_empty());
                drop(displaced);
                drop(conc_displaced);
            }
        }
        assert_observers_match(&oracle, &conc);
    }
}
